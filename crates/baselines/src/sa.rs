//! Simulated-annealing macro placer — the earliest-generation baseline
//! (the non-deterministic family the paper's Sec. I-A opens with).
//!
//! Anneals over grid assignments of macro groups with move/swap
//! perturbations, scored by the coarse weighted HPWL, then legalizes the
//! best assignment found.

use crate::placer::MacroPlacer;
use mmp_cluster::{ClusterParams, CoarseHpwlCache, Coarsener};
use mmp_geom::{Grid, GridIndex, Point};
use mmp_legal::MacroLegalizer;
use mmp_netlist::{Design, Placement};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Annealing schedule parameters.
#[derive(Debug, Clone)]
pub struct SaPlacer {
    /// Moves attempted.
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Grid resolution ζ.
    pub zeta: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SaPlacer {
    /// A schedule with sensible defaults for `iterations` moves.
    pub fn new(iterations: usize, zeta: usize, seed: u64) -> Self {
        SaPlacer {
            iterations,
            initial_temp: 0.1,
            cooling: 0.999,
            zeta,
            seed,
        }
    }
}

impl MacroPlacer for SaPlacer {
    fn name(&self) -> &str {
        "SA"
    }

    fn place_macros(&self, design: &Design) -> Placement {
        let grid = Grid::new(*design.region(), self.zeta);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(design, &Placement::initial(design));
        let groups = coarse.macro_groups().len();
        if groups == 0 {
            return Placement::initial(design);
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5a);
        let mut assignment: Vec<GridIndex> = (0..groups)
            .map(|_| grid.unflatten(rng.gen_range(0..grid.cell_count())))
            .collect();
        // The delta evaluator mirrors the incumbent assignment's centers;
        // candidate moves re-score only the touched groups' nets, and its
        // totals match the full `coarse.hpwl` pass bit for bit, so the
        // anneal trajectory is unchanged by the migration.
        let centers: Vec<Point> = assignment
            .iter()
            .map(|&idx| grid.cell_at(idx).center())
            .collect();
        let mut cache = CoarseHpwlCache::new(&coarse, centers, coarse.cell_group_centers());
        let mut cost = cache.total();
        let mut best = (assignment.clone(), cost);
        let mut temp = cost * self.initial_temp;

        for _ in 0..self.iterations {
            // Perturb: move one group, or swap two.
            let mut candidate = assignment.clone();
            if groups >= 2 && rng.gen::<f64>() < 0.3 {
                let a = rng.gen_range(0..groups);
                let b = rng.gen_range(0..groups);
                candidate.swap(a, b);
                cache.set_group(&coarse, a, grid.cell_at(candidate[a]).center());
                cache.set_group(&coarse, b, grid.cell_at(candidate[b]).center());
            } else {
                let g = rng.gen_range(0..groups);
                candidate[g] = grid.unflatten(rng.gen_range(0..grid.cell_count()));
                cache.set_group(&coarse, g, grid.cell_at(candidate[g]).center());
            }
            let c = cache.total();
            let accept = c < cost || {
                let delta = c - cost;
                temp > 0.0 && rng.gen::<f64>() < (-delta / temp).exp()
            };
            if accept {
                cache.commit();
                assignment = candidate;
                cost = c;
                if cost < best.1 {
                    best = (assignment.clone(), cost);
                }
            } else {
                cache.revert();
            }
            temp *= self.cooling;
        }

        MacroLegalizer::new()
            .legalize(design, &coarse, &best.0, &grid)
            .expect("assignment matches group count")
            .placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::{score_hpwl, RandomPlacer};
    use mmp_netlist::SyntheticSpec;

    #[test]
    fn sa_improves_over_random_start() {
        let mut wins = 0;
        for seed in 0..3 {
            let d = SyntheticSpec::small("sa", 8, 0, 10, 80, 140, false, seed).generate();
            let sa = score_hpwl(&d, &SaPlacer::new(800, 8, seed).place_macros(&d));
            let random = score_hpwl(&d, &RandomPlacer::new(seed, 8).place_macros(&d));
            if sa < random {
                wins += 1;
            }
        }
        assert!(wins >= 2, "SA won only {wins}/3 against random");
    }

    #[test]
    fn sa_output_is_legal_and_deterministic() {
        let d = SyntheticSpec::small("sad", 7, 2, 8, 60, 110, true, 9).generate();
        let p = SaPlacer::new(200, 8, 3);
        let a = p.place_macros(&d);
        assert_eq!(a, p.place_macros(&d));
        assert!(a.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn zero_macro_design_is_a_noop() {
        let d = SyntheticSpec::small("saz", 0, 0, 8, 40, 60, false, 1).generate();
        let pl = SaPlacer::new(50, 8, 0).place_macros(&d);
        assert_eq!(pl, Placement::initial(&d));
    }
}
