//! Cross-crate equivalence regression for the incremental HPWL
//! evaluators: under arbitrary seeded move/swap/orient/revert sequences,
//! the delta-maintained totals must equal a from-scratch recompute **to
//! the bit** — the property every migrated consumer (legalizer flip,
//! boundary refine, SA/SE baselines, the coarse RL evaluator, the swap
//! refiner) relies on.

use mmp_cluster::{ClusterParams, CoarseHpwlCache, Coarsener};
use mmp_geom::{Grid, Point};
use mmp_legal::{SwapRefineConfig, SwapRefiner};
use mmp_netlist::{IncrementalHpwl, MacroId, Orientation, Placement, SyntheticSpec};
use proptest::prelude::*;

fn design_for(seed: u64) -> mmp_netlist::Design {
    SyntheticSpec::small(format!("inc{seed}"), 8, 2, 12, 60, 110, true, seed).generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Netlist level: random single-macro moves, pair swaps, orientation
    /// flips and reverts leave the incremental total bitwise-equal to
    /// `Placement::hpwl` on the same placement.
    #[test]
    fn incremental_hpwl_matches_full_recompute(
        seed in 0u64..40,
        ops in proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 1..40),
    ) {
        let d = design_for(seed);
        let n = d.macros().len();
        let r = *d.region();
        let mut inc = IncrementalHpwl::new(&d, Placement::initial(&d));
        for (i, &(op, x, y)) in ops.iter().enumerate() {
            let a = MacroId::from_index(x % n);
            let b = MacroId::from_index(y % n);
            match op {
                0 => {
                    let to = Point::new(
                        r.x + (x as f64 + 0.5) / 64.0 * r.width,
                        r.y + (y as f64 + 0.5) / 64.0 * r.height,
                    );
                    inc.move_macro(a, to);
                }
                1 => { inc.swap_macro_centers(a, b); }
                2 => { inc.set_macro_orientation(a, Orientation::ALL[y % 4]); }
                _ => { inc.revert(); }
            }
            if i % 3 == 0 {
                inc.commit();
            }
            let full = inc.placement().hpwl(&d);
            prop_assert_eq!(
                inc.total().to_bits(),
                full.to_bits(),
                "drift after op {} ({})", i, op
            );
        }
    }

    /// Coarse level: random group moves against the cache match the full
    /// `CoarsenedNetlist::hpwl` pass bit for bit.
    #[test]
    fn coarse_cache_matches_full_recompute(
        seed in 0u64..40,
        ops in proptest::collection::vec((0usize..64, 0usize..64, 0u8..2), 1..40),
    ) {
        let d = design_for(seed);
        let grid = Grid::new(*d.region(), 8);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(&d, &Placement::initial(&d));
        let groups = coarse.macro_groups().len();
        prop_assume!(groups > 0);
        let centers: Vec<Point> = (0..groups)
            .map(|g| grid.cell_at(grid.unflatten(g % grid.cell_count())).center())
            .collect();
        let cc = coarse.cell_group_centers();
        let mut cache = CoarseHpwlCache::new(&coarse, centers, cc.clone());
        for &(g, cell, keep) in &ops {
            cache.set_group(
                &coarse,
                g % groups,
                grid.cell_at(grid.unflatten(cell % grid.cell_count())).center(),
            );
            if keep == 1 {
                cache.commit();
            } else {
                cache.revert();
            }
            let full = coarse.hpwl(cache.macro_centers(), &cc);
            prop_assert_eq!(cache.total().to_bits(), full.to_bits());
        }
    }

    /// The swap refiner built on the evaluator never worsens the committed
    /// wirelength and keeps the placement legal.
    #[test]
    fn swap_refiner_never_regresses(seed in 0u64..12) {
        let d = design_for(seed);
        let grid = Grid::new(*d.region(), 8);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(&d, &Placement::initial(&d));
        let assignment: Vec<_> = (0..coarse.macro_groups().len())
            .map(|g| grid.unflatten((g * 7 + seed as usize) % grid.cell_count()))
            .collect();
        let legal = mmp_legal::MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap()
            .placement;
        let before = legal.hpwl(&d);
        let out = SwapRefiner::new(SwapRefineConfig { moves: 64, seed })
            .refine(&d, &legal, None);
        prop_assert_eq!(out.hpwl_before.to_bits(), before.to_bits());
        prop_assert!(out.hpwl_after <= before);
        prop_assert_eq!(out.hpwl_after.to_bits(), out.placement.hpwl(&d).to_bits());
        prop_assert!(out.placement.macro_overlap_area(&d) < 1e-6);
        prop_assert!(out.placement.macros_inside_region(&d));
    }
}
