//! Classic multi-file Bookshelf layout (.aux + .nodes/.nets/.pl/.scl).
//!
//! The single-stream format of [`crate::bookshelf`] is convenient for this
//! workspace; real GSRC/ICCAD04 distributions ship one file per section
//! listed in a `.aux` manifest. This module maps between a [`Design`] and
//! that layout so externally-sourced benchmarks can be dropped in:
//!
//! * `.aux`   — `RowBasedPlacement : <file.nodes> <file.nets> <file.pl>`
//! * `.nodes` — `name width height [terminal]`
//! * `.nets`  — `NetDegree : k` followed by `name I/O : dx dy` pin lines
//! * `.pl`    — `name x y : N [/FIXED]`
//!
//! Only the subset the placer consumes is read; headers, comments and
//! unknown directives are skipped. The region is inferred from the `.pl`
//! coordinates when no `.scl` is present (the ICCAD04 mixed-size flow does
//! the same).

use crate::builder::{BuildDesignError, DesignBuilder};
use crate::design::Design;
use crate::ids::NodeRef;
use crate::Placement;
use mmp_geom::{Point, Rect};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Error reading an `.aux` bundle.
#[derive(Debug)]
pub enum ReadAuxError {
    /// Underlying I/O failure (file named in the message).
    Io(String, std::io::Error),
    /// A line failed to parse.
    Parse {
        /// File the line came from.
        file: String,
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The `.aux` manifest names fewer than the three required files.
    IncompleteManifest,
    /// The parsed design failed validation.
    Build(BuildDesignError),
}

impl fmt::Display for ReadAuxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadAuxError::Io(file, e) => write!(f, "i/o error on {file}: {e}"),
            ReadAuxError::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "parse error at {file}:{line}: {message}")
            }
            ReadAuxError::IncompleteManifest => {
                write!(f, "aux manifest must list .nodes, .nets and .pl files")
            }
            ReadAuxError::Build(e) => write!(f, "invalid design in aux bundle: {e}"),
        }
    }
}

impl std::error::Error for ReadAuxError {}

impl From<BuildDesignError> for ReadAuxError {
    fn from(e: BuildDesignError) -> Self {
        ReadAuxError::Build(e)
    }
}

fn read_file(path: &Path) -> Result<String, ReadAuxError> {
    fs::read_to_string(path).map_err(|e| ReadAuxError::Io(path.display().to_string(), e))
}

/// Reads a `.aux` bundle rooted at `aux_path`.
///
/// Terminals with fixed positions become pads; `/FIXED` non-terminal nodes
/// become preplaced macros; movable nodes larger than `macro_threshold`
/// times the median node area are classified as macros, the rest as cells
/// (Bookshelf does not distinguish them).
///
/// # Errors
///
/// See [`ReadAuxError`].
pub fn read_aux(
    aux_path: &Path,
    macro_threshold: f64,
) -> Result<(Design, Placement), ReadAuxError> {
    let aux_dir = aux_path.parent().unwrap_or_else(|| Path::new("."));
    let manifest = read_file(aux_path)?;
    let mut nodes_file = None;
    let mut nets_file = None;
    let mut pl_file = None;
    for token in manifest.split_whitespace() {
        let lower = token.to_ascii_lowercase();
        if lower.ends_with(".nodes") {
            nodes_file = Some(aux_dir.join(token));
        } else if lower.ends_with(".nets") {
            nets_file = Some(aux_dir.join(token));
        } else if lower.ends_with(".pl") {
            pl_file = Some(aux_dir.join(token));
        }
    }
    let (nodes_file, nets_file, pl_file) = match (nodes_file, nets_file, pl_file) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => return Err(ReadAuxError::IncompleteManifest),
    };

    // --- .nodes -------------------------------------------------------
    #[derive(Debug)]
    struct RawNode {
        width: f64,
        height: f64,
        terminal: bool,
    }
    let mut raw: Vec<(String, RawNode)> = Vec::new();
    let nodes_src = read_file(&nodes_file)?;
    for (lineno, line) in nodes_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty()
            || line.starts_with('#')
            || line.starts_with("UCLA")
            || line.starts_with("NumNodes")
            || line.starts_with("NumTerminals")
        {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 3 {
            return Err(ReadAuxError::Parse {
                file: nodes_file.display().to_string(),
                line: lineno + 1,
                message: "node line needs name width height".into(),
            });
        }
        let parse = |s: &str| -> Result<f64, ReadAuxError> {
            s.parse().map_err(|_| ReadAuxError::Parse {
                file: nodes_file.display().to_string(),
                line: lineno + 1,
                message: format!("bad number {s}"),
            })
        };
        raw.push((
            toks[0].to_owned(),
            RawNode {
                width: parse(toks[1])?,
                height: parse(toks[2])?,
                terminal: toks.get(3).is_some_and(|t| *t == "terminal"),
            },
        ));
    }

    // --- .pl ------------------------------------------------------------
    let mut positions: BTreeMap<String, (Point, bool)> = BTreeMap::new();
    let pl_src = read_file(&pl_file)?;
    for (lineno, line) in pl_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("UCLA") {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 3 {
            return Err(ReadAuxError::Parse {
                file: pl_file.display().to_string(),
                line: lineno + 1,
                message: "pl line needs name x y".into(),
            });
        }
        let parse = |s: &str| -> Result<f64, ReadAuxError> {
            s.parse().map_err(|_| ReadAuxError::Parse {
                file: pl_file.display().to_string(),
                line: lineno + 1,
                message: format!("bad number {s}"),
            })
        };
        let fixed = line.contains("/FIXED");
        positions.insert(
            toks[0].to_owned(),
            (Point::new(parse(toks[1])?, parse(toks[2])?), fixed),
        );
    }

    // --- classify + region ------------------------------------------------
    let mut areas: Vec<f64> = raw
        .iter()
        .filter(|(_, n)| !n.terminal)
        .map(|(_, n)| n.width * n.height)
        .collect();
    areas.sort_by(|a, b| a.total_cmp(b));
    let median_area = areas
        .get(areas.len() / 2)
        .copied()
        .unwrap_or(1.0)
        .max(1e-12);

    let mut min = Point::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for (name, node) in &raw {
        // Bookshelf .pl coordinates are lower-left corners.
        let (ll, _) = positions
            .get(name)
            .copied()
            .unwrap_or((Point::ORIGIN, false));
        min = min.min(ll);
        max = max.max(ll + Point::new(node.width, node.height));
    }
    if !min.is_finite() || !max.is_finite() {
        min = Point::ORIGIN;
        max = Point::new(1.0, 1.0);
    }
    let region = Rect::from_corners(min, max);

    let mut b = DesignBuilder::new(
        aux_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "aux".into()),
        region,
    );
    let mut refs: BTreeMap<String, NodeRef> = BTreeMap::new();
    for (name, node) in &raw {
        let (ll, fixed) = positions
            .get(name)
            .copied()
            .unwrap_or((region.center(), false));
        let center = ll + Point::new(node.width / 2.0, node.height / 2.0);
        let r: NodeRef = if node.terminal && (node.width == 0.0 || node.height == 0.0) {
            b.add_pad(name.clone(), ll).into()
        } else if node.terminal || fixed {
            b.add_preplaced_macro(name.clone(), node.width, node.height, "", center)
                .into()
        } else if node.width * node.height >= macro_threshold * median_area {
            b.add_macro(name.clone(), node.width, node.height, "")
                .into()
        } else {
            b.add_cell(name.clone(), node.width, node.height, "").into()
        };
        refs.insert(name.clone(), r);
    }

    // --- .nets ---------------------------------------------------------
    let nets_src = read_file(&nets_file)?;
    let mut pending: Vec<(NodeRef, Point)> = Vec::new();
    let mut net_no = 0usize;
    let flush = |pending: &mut Vec<(NodeRef, Point)>,
                 b: &mut DesignBuilder,
                 net_no: &mut usize|
     -> Result<(), BuildDesignError> {
        if pending.len() >= 2 {
            b.add_net(format!("net{net_no}"), pending.drain(..), 1.0)?;
            *net_no += 1;
        } else {
            pending.clear();
        }
        Ok(())
    };
    for (lineno, line) in nets_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty()
            || line.starts_with('#')
            || line.starts_with("UCLA")
            || line.starts_with("NumNets")
            || line.starts_with("NumPins")
        {
            continue;
        }
        if line.starts_with("NetDegree") {
            flush(&mut pending, &mut b, &mut net_no)?;
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let Some(&node) = refs.get(toks[0]) else {
            return Err(ReadAuxError::Parse {
                file: nets_file.display().to_string(),
                line: lineno + 1,
                message: format!("unknown node {}", toks[0]),
            });
        };
        // Optional trailing ": dx dy" pin offset.
        let offset = if toks.len() >= 5 && toks[2] == ":" {
            let parse = |s: &str| -> Result<f64, ReadAuxError> {
                s.parse().map_err(|_| ReadAuxError::Parse {
                    file: nets_file.display().to_string(),
                    line: lineno + 1,
                    message: format!("bad pin offset {s}"),
                })
            };
            Point::new(parse(toks[3])?, parse(toks[4])?)
        } else {
            Point::ORIGIN
        };
        pending.push((node, offset));
    }
    flush(&mut pending, &mut b, &mut net_no)?;

    let design = b.build()?;
    let mut placement = Placement::initial(&design);
    for (name, &node) in &refs {
        if let Some(&(ll, _)) = positions.get(name) {
            match node {
                NodeRef::Macro(id) => {
                    let m = design.macro_(id);
                    if !m.is_preplaced() {
                        placement
                            .set_macro_center(id, ll + Point::new(m.width / 2.0, m.height / 2.0));
                    }
                }
                NodeRef::Cell(id) => {
                    let c = design.cell(id);
                    placement.set_cell_center(id, ll + Point::new(c.width / 2.0, c.height / 2.0));
                }
                NodeRef::Pad(_) => {}
            }
        }
    }
    Ok((design, placement))
}

/// Writes `design` (+ `placement`) as a `.aux` bundle next to `aux_path`
/// (`<stem>.nodes`, `<stem>.nets`, `<stem>.pl`).
///
/// # Errors
///
/// Propagates file-creation/write failures.
// why: bare `fs::write` is sanctioned here: `.aux` bundles are one-shot export
// artifacts, not resumable state, so the crash-safe checkpoint envelope
// (whose clippy ban this allow scopes out) does not apply.
#[allow(clippy::disallowed_methods)]
pub fn write_aux(
    design: &Design,
    placement: &Placement,
    aux_path: &Path,
) -> Result<Vec<PathBuf>, std::io::Error> {
    let stem = aux_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "design".into());
    let dir = aux_path.parent().unwrap_or_else(|| Path::new("."));
    let nodes_path = dir.join(format!("{stem}.nodes"));
    let nets_path = dir.join(format!("{stem}.nets"));
    let pl_path = dir.join(format!("{stem}.pl"));

    let mut nodes = String::from("UCLA nodes 1.0\n");
    nodes.push_str(&format!(
        "NumNodes : {}\nNumTerminals : {}\n",
        design.macros().len() + design.cells().len() + design.pads().len(),
        design.pads().len() + design.preplaced_macros().len()
    ));
    for m in design.macros() {
        let terminal = if m.is_preplaced() { " terminal" } else { "" };
        nodes.push_str(&format!(
            "{} {} {}{}\n",
            m.name, m.width, m.height, terminal
        ));
    }
    for c in design.cells() {
        nodes.push_str(&format!("{} {} {}\n", c.name, c.width, c.height));
    }
    for p in design.pads() {
        nodes.push_str(&format!("{} 0 0 terminal\n", p.name));
    }

    let total_pins: usize = design.nets().iter().map(|n| n.pins.len()).sum();
    let mut nets = String::from("UCLA nets 1.0\n");
    nets.push_str(&format!(
        "NumNets : {}\nNumPins : {}\n",
        design.nets().len(),
        total_pins
    ));
    for net in design.nets() {
        nets.push_str(&format!("NetDegree : {}\n", net.pins.len()));
        for pin in &net.pins {
            let name = match pin.node {
                NodeRef::Macro(id) => &design.macro_(id).name,
                NodeRef::Cell(id) => &design.cell(id).name,
                NodeRef::Pad(id) => &design.pad(id).name,
            };
            nets.push_str(&format!(
                "  {} B : {} {}\n",
                name, pin.offset.x, pin.offset.y
            ));
        }
    }

    let mut pl = String::from("UCLA pl 1.0\n");
    for (i, m) in design.macros().iter().enumerate() {
        let c = placement.macro_center(crate::MacroId::from_index(i));
        let fixed = if m.is_preplaced() { " /FIXED" } else { "" };
        pl.push_str(&format!(
            "{} {} {} : N{}\n",
            m.name,
            c.x - m.width / 2.0,
            c.y - m.height / 2.0,
            fixed
        ));
    }
    for (i, cell) in design.cells().iter().enumerate() {
        let c = placement.cell_center(crate::CellId::from_index(i));
        pl.push_str(&format!(
            "{} {} {} : N\n",
            cell.name,
            c.x - cell.width / 2.0,
            c.y - cell.height / 2.0
        ));
    }
    for p in design.pads() {
        pl.push_str(&format!(
            "{} {} {} : N /FIXED\n",
            p.name, p.position.x, p.position.y
        ));
    }

    fs::write(&nodes_path, nodes)?;
    fs::write(&nets_path, nets)?;
    fs::write(&pl_path, pl)?;
    fs::write(
        aux_path,
        format!("RowBasedPlacement : {stem}.nodes {stem}.nets {stem}.pl\n"),
    )?;
    Ok(vec![aux_path.to_path_buf(), nodes_path, nets_path, pl_path])
}

#[cfg(test)]
// why: tests write fixture files directly; the checkpoint-envelope ban on bare
// `fs::write` targets resumable production state only.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::SyntheticSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmp_aux_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn aux_roundtrip_preserves_structure_and_hpwl() {
        let design = SyntheticSpec::small("aux", 6, 1, 8, 60, 100, false, 9).generate();
        let placement = Placement::initial(&design);
        let dir = tmp_dir("rt");
        let aux = dir.join("aux.aux");
        write_aux(&design, &placement, &aux).unwrap();
        let (d2, pl2) = read_aux(&aux, 4.0).unwrap();
        assert_eq!(d2.nets().len(), design.nets().len());
        assert_eq!(
            d2.macros().len() + d2.cells().len(),
            design.macros().len() + design.cells().len()
        );
        assert_eq!(d2.pads().len(), design.pads().len());
        // Same coordinates ⇒ same HPWL (region inference may differ).
        assert!((pl2.hpwl(&d2) - placement.hpwl(&design)).abs() < 1e-6);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preplaced_macros_survive_roundtrip_as_fixed() {
        let design = SyntheticSpec::small("auxf", 4, 2, 8, 40, 70, false, 10).generate();
        let placement = Placement::initial(&design);
        let dir = tmp_dir("fx");
        let aux = dir.join("f.aux");
        write_aux(&design, &placement, &aux).unwrap();
        let (d2, _) = read_aux(&aux, 4.0).unwrap();
        assert_eq!(d2.preplaced_macros().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incomplete_manifest_is_rejected() {
        let dir = tmp_dir("bad");
        let aux = dir.join("bad.aux");
        fs::write(&aux, "RowBasedPlacement : only.nodes\n").unwrap();
        let err = read_aux(&aux, 4.0).unwrap_err();
        assert!(matches!(err, ReadAuxError::IncompleteManifest));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = read_aux(Path::new("/nonexistent/x.aux"), 4.0).unwrap_err();
        assert!(matches!(err, ReadAuxError::Io(..)));
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn unknown_net_node_is_reported_with_location() {
        let dir = tmp_dir("un");
        fs::write(
            dir.join("u.aux"),
            "RowBasedPlacement : u.nodes u.nets u.pl\n",
        )
        .unwrap();
        fs::write(dir.join("u.nodes"), "a 2 2\nb 2 2\n").unwrap();
        fs::write(
            dir.join("u.nets"),
            "NetDegree : 2\n a B : 0 0\n ghost B : 0 0\n",
        )
        .unwrap();
        fs::write(dir.join("u.pl"), "a 0 0 : N\nb 5 5 : N\n").unwrap();
        let err = read_aux(&dir.join("u.aux"), 4.0).unwrap_err();
        match err {
            ReadAuxError::Parse { message, .. } => assert!(message.contains("ghost")),
            other => panic!("unexpected {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbled_pin_offset_reports_file_and_line() {
        let dir = tmp_dir("po");
        fs::write(
            dir.join("p.aux"),
            "RowBasedPlacement : p.nodes p.nets p.pl\n",
        )
        .unwrap();
        fs::write(dir.join("p.nodes"), "a 2 2\nb 2 2\n").unwrap();
        fs::write(
            dir.join("p.nets"),
            "NetDegree : 2\n a B : 0 0\n b B : xyz 0\n",
        )
        .unwrap();
        fs::write(dir.join("p.pl"), "a 0 0 : N\nb 5 5 : N\n").unwrap();
        let err = read_aux(&dir.join("p.aux"), 4.0).unwrap_err();
        match err {
            ReadAuxError::Parse {
                file,
                line,
                message,
            } => {
                assert!(file.ends_with("p.nets"), "{file}");
                assert_eq!(line, 3);
                assert!(message.contains("xyz"));
            }
            other => panic!("unexpected {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn large_nodes_classify_as_macros() {
        let dir = tmp_dir("cls");
        fs::write(
            dir.join("c.aux"),
            "RowBasedPlacement : c.nodes c.nets c.pl\n",
        )
        .unwrap();
        // One big node, many small ones.
        let mut nodes = String::new();
        nodes.push_str("big 20 20\n");
        for i in 0..9 {
            nodes.push_str(&format!("s{i} 1 1\n"));
        }
        fs::write(dir.join("c.nodes"), nodes).unwrap();
        fs::write(
            dir.join("c.nets"),
            "NetDegree : 2\n big B : 0 0\n s0 B : 0 0\n",
        )
        .unwrap();
        let mut pl = String::from("big 0 0 : N\n");
        for i in 0..9 {
            pl.push_str(&format!("s{i} {} 30 : N\n", i * 2));
        }
        fs::write(dir.join("c.pl"), pl).unwrap();
        let (d, _) = read_aux(&dir.join("c.aux"), 4.0).unwrap();
        assert_eq!(d.movable_macros().len(), 1);
        assert_eq!(d.cells().len(), 9);
        fs::remove_dir_all(&dir).ok();
    }
}
