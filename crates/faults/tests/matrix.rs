//! The fault matrix: every scenario, under `catch_unwind`, asserting the
//! robustness contract — a typed error, a refused parse, or a legal
//! placement with a populated degradation report. Never a panic.

use mmp_faults::{run_all, run_scenario, Outcome, ScenarioKind, ScenarioReport};
use std::panic::catch_unwind;

const SEED: u64 = 2025;

fn run_caught(kind: ScenarioKind, seed: u64) -> ScenarioReport {
    match catch_unwind(move || run_scenario(kind, seed)) {
        Ok(report) => report,
        Err(_) => panic!("scenario {} panicked (seed {seed})", kind.name()),
    }
}

/// A `Placed` outcome must be legal and finite; degradation scenarios must
/// additionally name the expected stage.
fn assert_placed_and_degraded(report: &ScenarioReport, stages: &[&str]) {
    match &report.outcome {
        Outcome::Placed {
            degraded,
            legal,
            finite_hpwl,
        } => {
            assert!(legal, "{}: placement must stay legal", report.kind.name());
            assert!(finite_hpwl, "{}: HPWL must stay finite", report.kind.name());
            for stage in stages {
                assert!(
                    degraded.iter().any(|s| s == stage),
                    "{}: expected stage '{stage}' in degradation report, got {degraded:?}",
                    report.kind.name()
                );
            }
        }
        other => panic!(
            "{}: expected a placed outcome, got {other:?}",
            report.kind.name()
        ),
    }
}

fn assert_typed_error(report: &ScenarioReport, stage: &str, exit_code: u8) {
    match &report.outcome {
        Outcome::Error {
            stage: got_stage,
            exit_code: got_code,
            message,
        } => {
            assert_eq!(got_stage, stage, "{}", report.kind.name());
            assert_eq!(*got_code, exit_code, "{}", report.kind.name());
            assert!(!message.is_empty());
        }
        other => panic!(
            "{}: expected a typed {stage} error, got {other:?}",
            report.kind.name()
        ),
    }
}

fn assert_parse_error(report: &ScenarioReport) {
    match &report.outcome {
        Outcome::ParseError { message } => {
            assert!(
                message.contains("line"),
                "{}: parse errors must carry a line number, got '{message}'",
                report.kind.name()
            );
        }
        other => panic!(
            "{}: expected a parse error, got {other:?}",
            report.kind.name()
        ),
    }
}

#[test]
fn corrupt_inputs_are_refused_with_line_numbers() {
    assert_parse_error(&run_caught(ScenarioKind::TruncatedBookshelf, SEED));
    assert_parse_error(&run_caught(ScenarioKind::GarbledNumber, SEED));
    assert_parse_error(&run_caught(ScenarioKind::UnknownNetNode, SEED));
}

#[test]
fn numerical_faults_degrade_but_complete_legally() {
    assert_placed_and_degraded(
        &run_caught(ScenarioKind::PoisonedGradients, SEED),
        &["train"],
    );
    assert_placed_and_degraded(&run_caught(ScenarioKind::NanPriors, SEED), &["search"]);
    assert_placed_and_degraded(
        &run_caught(ScenarioKind::SequencePairFailure, SEED),
        &["legalize"],
    );
}

#[test]
fn exhausted_budgets_degrade_but_complete_legally() {
    assert_placed_and_degraded(
        &run_caught(ScenarioKind::ZeroTotalBudget, SEED),
        &["train", "search", "legalize"],
    );
    assert_placed_and_degraded(&run_caught(ScenarioKind::ZeroTrainBudget, SEED), &["train"]);
    assert_placed_and_degraded(
        &run_caught(ScenarioKind::ZeroSearchBudget, SEED),
        &["search"],
    );
    assert_placed_and_degraded(
        &run_caught(ScenarioKind::ZeroLegalizeBudget, SEED),
        &["legalize"],
    );
    assert_placed_and_degraded(
        &run_caught(ScenarioKind::ZeroRefineBudget, SEED),
        &["refine"],
    );
}

#[test]
fn unusable_configs_get_typed_stage_errors() {
    assert_typed_error(
        &run_caught(ScenarioKind::InfeasibleDesign, SEED),
        "preprocess",
        10,
    );
    assert_typed_error(&run_caught(ScenarioKind::ZetaMismatch, SEED), "train", 11);
    assert_typed_error(
        &run_caught(ScenarioKind::ZeroEnsembleRuns, SEED),
        "search",
        12,
    );
}

#[test]
fn poisoned_pool_workers_are_typed_search_errors() {
    // A panicking compute-pool worker inside the ensemble fan-out must
    // surface as a transient (retryable) search error, never an unwind.
    assert_typed_error(
        &run_caught(ScenarioKind::PoolWorkerPanic, SEED),
        "search",
        12,
    );
}

#[test]
fn zero_spread_calibration_keeps_rewards_finite() {
    let report = run_caught(ScenarioKind::ZeroSpreadCalibration, SEED);
    match &report.outcome {
        Outcome::Check { ok, detail } => assert!(ok, "guard failed: {detail}"),
        other => panic!("expected a check outcome, got {other:?}"),
    }
}

#[test]
fn killed_runs_resume_bitwise_identically() {
    for kind in [ScenarioKind::KillMidTrain, ScenarioKind::KillMidSearch] {
        let report = run_caught(kind, SEED);
        match &report.outcome {
            Outcome::Check { ok, detail } => {
                assert!(ok, "{}: {detail}", kind.name());
            }
            other => panic!("{}: expected a check outcome, got {other:?}", kind.name()),
        }
    }
}

#[test]
fn damaged_checkpoints_are_typed_errors_not_panics() {
    assert_typed_error(
        &run_caught(ScenarioKind::TruncatedCheckpoint, SEED),
        "checkpoint",
        16,
    );
    assert_typed_error(
        &run_caught(ScenarioKind::CorruptCheckpoint, SEED),
        "checkpoint",
        16,
    );
    assert_typed_error(
        &run_caught(ScenarioKind::StaleCheckpointVersion, SEED),
        "checkpoint",
        16,
    );
}

#[test]
fn serving_faults_reject_or_recover_without_losing_jobs() {
    // The daemon-facing quadrant of the matrix: adversarial request
    // lines, queue overflow, client hangups, and a daemon life ending
    // mid-job. Each scenario encodes its own invariant and reports it as
    // a `Check`.
    for kind in [
        ScenarioKind::MalformedRequest,
        ScenarioKind::QueueFullBurst,
        ScenarioKind::ClientDisconnectMidJob,
        ScenarioKind::KillDaemonMidJob,
    ] {
        let report = run_caught(kind, SEED);
        match &report.outcome {
            Outcome::Check { ok, detail } => assert!(ok, "{}: {detail}", kind.name()),
            other => panic!("{}: expected a check outcome, got {other:?}", kind.name()),
        }
    }
}

#[test]
fn disk_faults_degrade_quarantine_or_self_heal() {
    // The disk-fault quadrant: torn writes, failed fsyncs, stranded
    // temp files and mid-run disk exhaustion — against both the direct
    // flow (graceful checkpoint degradation, bitwise-neutral results)
    // and the daemon journal (typed rejection, quarantine, orphan
    // sweep). Each scenario encodes its own invariant as a `Check`.
    for kind in [
        ScenarioKind::DiskFullMidTrainCkpt,
        ScenarioKind::EioOnFsync,
        ScenarioKind::TornRename,
        ScenarioKind::PartialJournalWrite,
        ScenarioKind::DiskFullMidJob,
    ] {
        let report = run_caught(kind, SEED);
        match &report.outcome {
            Outcome::Check { ok, detail } => assert!(ok, "{}: {detail}", kind.name()),
            other => panic!("{}: expected a check outcome, got {other:?}", kind.name()),
        }
    }
}

#[test]
fn no_scenario_panics_across_seeds() {
    for seed in [0, 1, SEED] {
        for kind in ScenarioKind::ALL {
            // run_caught converts an unwind into a named assertion failure.
            let _ = run_caught(kind, seed);
        }
    }
}

#[test]
fn the_matrix_is_deterministic() {
    let a = catch_unwind(|| run_all(SEED)).expect("matrix must not panic");
    let b = catch_unwind(|| run_all(SEED)).expect("matrix must not panic");
    assert_eq!(a, b, "same seed must reproduce the exact same reports");
}
