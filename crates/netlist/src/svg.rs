//! SVG rendering of placements — the quickest way to eyeball a result.
//!
//! Produces a self-contained SVG: region outline, preplaced macros (gray),
//! movable macros (blue), cells (small green dots, optionally subsampled),
//! pads (orange ticks). Purely `std`; no drawing dependencies.

use crate::design::Design;
use crate::ids::MacroId;
use crate::placement::Placement;
use std::io::{self, Write};

/// Rendering options.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Output canvas width in pixels (height follows the aspect ratio).
    pub width_px: f64,
    /// Draw at most this many cells (subsampled uniformly); 0 = none.
    pub max_cells: usize,
    /// Label macros with their names.
    pub macro_labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width_px: 800.0,
            max_cells: 2_000,
            macro_labels: false,
        }
    }
}

/// Writes an SVG rendering of `placement` to `w`. A mut reference can be
/// passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Example
///
/// ```
/// use mmp_netlist::{svg, Placement, SyntheticSpec};
///
/// # fn main() -> std::io::Result<()> {
/// let design = SyntheticSpec::small("v", 4, 0, 8, 40, 60, false, 1).generate();
/// let placement = Placement::initial(&design);
/// let mut out = Vec::new();
/// svg::write(&design, &placement, &svg::SvgOptions::default(), &mut out)?;
/// assert!(String::from_utf8_lossy(&out).starts_with("<svg"));
/// # Ok(())
/// # }
/// ```
pub fn write<W: Write>(
    design: &Design,
    placement: &Placement,
    options: &SvgOptions,
    mut w: W,
) -> io::Result<()> {
    let region = design.region();
    let scale = options.width_px / region.width;
    let height_px = region.height * scale;
    // SVG y grows downward; flip so the placement's +y is up.
    let tx = |x: f64| (x - region.x) * scale;
    let ty = |y: f64| height_px - (y - region.y) * scale;

    writeln!(
        w,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"##,
        options.width_px, height_px, options.width_px, height_px
    )?;
    writeln!(
        w,
        r##"<rect x="0" y="0" width="{:.1}" height="{:.1}" fill="#fbfbf8" stroke="#333" stroke-width="1"/>"##,
        options.width_px, height_px
    )?;

    // Cells first (underneath).
    if options.max_cells > 0 && !design.cells().is_empty() {
        let n = design.cells().len();
        let step = (n / options.max_cells.max(1)).max(1);
        for i in (0..n).step_by(step) {
            let c = placement.cell_center(crate::CellId::from_index(i));
            writeln!(
                w,
                r##"<circle cx="{:.1}" cy="{:.1}" r="1.2" fill="#2e8b57" fill-opacity="0.5"/>"##,
                tx(c.x),
                ty(c.y)
            )?;
        }
    }

    // Macros.
    for (i, m) in design.macros().iter().enumerate() {
        let r = placement.macro_rect(design, MacroId::from_index(i));
        let (fill, stroke) = if m.is_preplaced() {
            ("#b0b0b0", "#606060")
        } else {
            ("#6fa8dc", "#1f4e79")
        };
        writeln!(
            w,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{fill}" fill-opacity="0.75" stroke="{stroke}" stroke-width="1"/>"##,
            tx(r.x),
            ty(r.top()),
            r.width * scale,
            r.height * scale
        )?;
        if options.macro_labels {
            let c = r.center();
            writeln!(
                w,
                r##"<text x="{:.1}" y="{:.1}" font-size="9" text-anchor="middle" fill="#1a1a1a">{}</text>"##,
                tx(c.x),
                ty(c.y),
                m.name
            )?;
        }
    }

    // Pads.
    for p in design.pads() {
        writeln!(
            w,
            r##"<rect x="{:.1}" y="{:.1}" width="4" height="4" fill="#e69138"/>"##,
            tx(p.position.x) - 2.0,
            ty(p.position.y) - 2.0
        )?;
    }
    writeln!(w, "</svg>")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticSpec;

    fn render(macro_labels: bool, max_cells: usize) -> String {
        let design = SyntheticSpec::small("svg", 5, 2, 6, 50, 80, true, 3).generate();
        let placement = Placement::initial(&design);
        let mut out = Vec::new();
        write(
            &design,
            &placement,
            &SvgOptions {
                width_px: 400.0,
                max_cells,
                macro_labels,
            },
            &mut out,
        )
        .unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn produces_well_formed_svg() {
        let svg = render(false, 100);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 7 macros → 7 macro rects (plus background rect and pad rects).
        assert_eq!(svg.matches("fill-opacity=\"0.75\"").count(), 7);
    }

    #[test]
    fn labels_appear_when_requested() {
        assert!(!render(false, 100).contains("<text"));
        let labeled = render(true, 100);
        assert!(labeled.contains("<text"));
        assert!(labeled.contains(">m0<"));
    }

    #[test]
    fn cells_can_be_omitted() {
        let no_cells = render(false, 0);
        assert!(!no_cells.contains("<circle"));
        let with_cells = render(false, 10);
        assert!(with_cells.contains("<circle"));
    }

    #[test]
    fn preplaced_macros_render_gray() {
        let svg = render(false, 0);
        assert!(svg.contains("#b0b0b0"));
        assert!(svg.contains("#6fa8dc"));
    }
}
