//! End-to-end crash/resume integration: an interrupted-then-resumed run
//! must be bitwise identical to an uninterrupted one, across clean,
//! fault-injected and budget-starved variants, and damaged checkpoints
//! must surface as typed errors (exit code 16) — never panics.

use mmp_core::{
    CheckpointPlan, CrashPoint, MacroPlacer, PlaceError, PlacementResult, PlacerConfig, RunBudget,
    Stage, SyntheticSpec,
};
use mmp_netlist::Design;
use std::path::PathBuf;
use std::time::Duration;

fn ckpt_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmp-it-ckpt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_config() -> PlacerConfig {
    let mut cfg = PlacerConfig::fast(4);
    cfg.trainer.episodes = 6;
    cfg.trainer.update_every = 2;
    cfg.mcts.explorations = 6;
    cfg
}

fn small_design(name: &str, seed: u64) -> Design {
    SyntheticSpec::small(name, 5, 0, 8, 40, 70, false, seed).generate()
}

/// Runs to the typed crash error, then resumes and returns the result.
fn crash_then_resume(
    design: &Design,
    cfg: &PlacerConfig,
    dir: &PathBuf,
    crash: CrashPoint,
) -> PlacementResult {
    let mut crash_cfg = cfg.clone();
    crash_cfg.fault_crash = Some(crash);
    let err = MacroPlacer::new(crash_cfg)
        .with_checkpoints(CheckpointPlan::new(dir))
        .place(design)
        .unwrap_err();
    assert!(
        matches!(err, PlaceError::Checkpoint(_)),
        "injected crash must be a typed checkpoint error, got {err}"
    );
    assert_eq!(err.exit_code(), 16);
    MacroPlacer::new(cfg.clone())
        .with_checkpoints(CheckpointPlan::resume(dir))
        .place(design)
        .unwrap()
}

#[test]
fn clean_interrupted_run_resumes_bitwise_identically() {
    let design = small_design("it_ck_clean", 21);
    let cfg = small_config();
    let baseline = MacroPlacer::new(cfg.clone()).place(&design).unwrap();

    for (label, crash) in [
        ("train", CrashPoint::after_train_writes(1)),
        ("search", CrashPoint::after_search_writes(1)),
    ] {
        let dir = ckpt_dir(label);
        let resumed = crash_then_resume(&design, &cfg, &dir, crash);
        assert_eq!(resumed.hpwl, baseline.hpwl, "kill-mid-{label}");
        assert_eq!(resumed.assignment, baseline.assignment, "kill-mid-{label}");
        assert_eq!(resumed.placement, baseline.placement, "kill-mid-{label}");
        assert_eq!(resumed.training, baseline.training, "kill-mid-{label}");
        assert!(
            !resumed.checkpoint.resumes.is_empty(),
            "kill-mid-{label}: resume must be recorded"
        );
        assert!(
            resumed.degradation.affects(Stage::Checkpoint),
            "kill-mid-{label}: resume must appear in the degradation report"
        );
    }
}

#[test]
fn fault_injected_variant_survives_repeated_crashes() {
    // Crash on the *second* stage write too: a later partial checkpoint
    // must supersede the earlier one and still resume bitwise.
    let design = small_design("it_ck_late", 22);
    let cfg = small_config();
    let baseline = MacroPlacer::new(cfg.clone()).place(&design).unwrap();
    let dir = ckpt_dir("late");
    let resumed = crash_then_resume(&design, &cfg, &dir, CrashPoint::after_train_writes(2));
    assert_eq!(resumed.hpwl, baseline.hpwl);
    assert_eq!(resumed.assignment, baseline.assignment);
}

#[test]
fn zero_budget_crash_resumes_under_a_generous_budget() {
    // Budgets are deliberately excluded from the checkpoint fingerprint: a
    // run killed under a starved budget may be resumed with a bigger
    // allowance. The resumed run must match a baseline that ran under the
    // *same starved train budget* (the checkpointed stage), because resume
    // replays the recorded training, not the new budget's.
    let design = small_design("it_ck_budget", 23);
    let mut starved = small_config();
    starved.budget.train = Some(Duration::ZERO);
    let baseline = MacroPlacer::new(starved.clone()).place(&design).unwrap();
    assert!(baseline.degradation.affects(Stage::Train));

    let dir = ckpt_dir("budget");
    let mut crash_cfg = starved.clone();
    crash_cfg.fault_crash = Some(CrashPoint::after_search_writes(1));
    let err = MacroPlacer::new(crash_cfg)
        .with_checkpoints(CheckpointPlan::new(&dir))
        .place(&design)
        .unwrap_err();
    assert_eq!(err.exit_code(), 16, "{err}");

    let mut generous = starved;
    generous.budget = RunBudget::default();
    let resumed = MacroPlacer::new(generous)
        .with_checkpoints(CheckpointPlan::resume(&dir))
        .place(&design)
        .unwrap();
    assert_eq!(resumed.hpwl, baseline.hpwl);
    assert_eq!(resumed.assignment, baseline.assignment);
    assert_eq!(resumed.training, baseline.training);
}

#[test]
fn resume_on_an_empty_directory_runs_fresh() {
    let design = small_design("it_ck_fresh", 24);
    let cfg = small_config();
    let baseline = MacroPlacer::new(cfg.clone()).place(&design).unwrap();
    let dir = ckpt_dir("fresh");
    let result = MacroPlacer::new(cfg)
        .with_checkpoints(CheckpointPlan::resume(&dir))
        .place(&design)
        .unwrap();
    assert_eq!(result.hpwl, baseline.hpwl);
    assert!(result.checkpoint.resumes.is_empty());
    assert!(result.checkpoint.writes > 0);
}

#[test]
fn damaged_checkpoints_are_typed_errors_never_panics() {
    let design = small_design("it_ck_damage", 25);
    let cfg = small_config();
    let dir = ckpt_dir("damage");
    MacroPlacer::new(cfg.clone())
        .with_checkpoints(CheckpointPlan::new(&dir))
        .place(&design)
        .unwrap();
    let target = dir.join("train-done.ckpt");
    let pristine = std::fs::read(&target).unwrap();

    // Torn write: every strict prefix must be refused with exit code 16.
    for cut in [0, 1, pristine.len() / 2, pristine.len() - 1] {
        tamper(&target, &pristine[..cut]);
        expect_checkpoint_error(&design, &cfg, &dir, &format!("truncated to {cut} bytes"));
    }

    // Bit rot in the payload: the checksum must catch it.
    let mut rotten = pristine.clone();
    let last = rotten.len() - 1;
    rotten[last] ^= 0x40;
    tamper(&target, &rotten);
    expect_checkpoint_error(&design, &cfg, &dir, "payload bit flip");

    // A damaged magic number must be refused too.
    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    tamper(&target, &bad_magic);
    expect_checkpoint_error(&design, &cfg, &dir, "bad magic");

    // Restoring the pristine bytes makes the resume work again.
    tamper(&target, &pristine);
    let resumed = MacroPlacer::new(cfg)
        .with_checkpoints(CheckpointPlan::resume(&dir))
        .place(&design)
        .unwrap();
    assert!(!resumed.checkpoint.resumes.is_empty());
}

// Simulating on-disk damage is the point of this test; the atomic
// `mmp_ckpt::write` envelope would refuse to produce these byte patterns.
#[allow(clippy::disallowed_methods)]
fn tamper(path: &std::path::Path, bytes: &[u8]) {
    std::fs::write(path, bytes).unwrap();
}

fn expect_checkpoint_error(design: &Design, cfg: &PlacerConfig, dir: &PathBuf, what: &str) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        MacroPlacer::new(cfg.clone())
            .with_checkpoints(CheckpointPlan::resume(dir))
            .place(design)
    }));
    let err = outcome
        .unwrap_or_else(|_| panic!("{what}: resume panicked instead of returning a typed error"))
        .unwrap_err();
    assert_eq!(err.exit_code(), 16, "{what}: {err}");
    assert_eq!(err.stage(), Stage::Checkpoint, "{what}");
}
