//! 2-D convolution (stride 1, "same" padding) via im2col + GEMM.

use crate::infer::InferenceCtx;
use crate::layer::{Layer, Param};
use crate::matmul::{matmul, matmul_a_bt, matmul_at_b};
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A `Conv2d` layer: `in_channels → out_channels`, square odd kernel,
/// stride 1, same padding — the convolution used throughout Table I
/// (3×3 in the trunk, 1×1 in the heads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Weights shaped `[out_channels, in_channels·k·k]`.
    weight: Param,
    /// Bias shaped `[out_channels]`.
    bias: Param,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-normal initialised weights
    /// (deterministic in `seed`).
    ///
    /// # Panics
    ///
    /// Panics for an even kernel size (same padding needs odd kernels).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Self {
        assert!(kernel % 2 == 1, "same padding requires an odd kernel");
        let fan_in = in_channels * kernel * kernel;
        let std = (2.0 / fan_in as f32).sqrt();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC04);
        let weight: Vec<f32> = (0..out_channels * fan_in)
            .map(|_| gaussian(&mut rng) * std)
            .collect();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            weight: Param::new(Tensor::from_vec(&[out_channels, fan_in], weight)),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            cached_input: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// im2col for one sample: `[C·k·k, H·W]`.
    fn im2col(&self, sample: &[f32], h: usize, w: usize) -> Vec<f32> {
        let ckk = self.in_channels * self.kernel * self.kernel;
        let mut cols = vec![0.0f32; ckk * h * w];
        self.im2col_into(sample, h, w, &mut cols);
        cols
    }

    /// [`Conv2d::im2col`] into a caller-provided buffer.
    ///
    /// Padding positions are never written, so the buffer must start
    /// zeroed; in-bounds positions are fully overwritten, so the same
    /// buffer can be reused across samples without re-zeroing.
    fn im2col_into(&self, sample: &[f32], h: usize, w: usize, cols: &mut [f32]) {
        let k = self.kernel;
        let pad = k / 2;
        let hw = h * w;
        for c in 0..self.in_channels {
            let plane = &sample[c * hw..(c + 1) * hw];
            for ky in 0..k {
                for kx in 0..k {
                    let row = (c * k + ky) * k + kx;
                    let out_row = &mut cols[row * hw..(row + 1) * hw];
                    for y in 0..h {
                        let sy = y as isize + ky as isize - pad as isize;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        for x in 0..w {
                            let sx = x as isize + kx as isize - pad as isize;
                            if sx < 0 || sx >= w as isize {
                                continue;
                            }
                            out_row[y * w + x] = plane[sy as usize * w + sx as usize];
                        }
                    }
                }
            }
        }
    }

    /// Scatter-add of column gradients back to an input-shaped buffer.
    fn col2im(&self, cols_grad: &[f32], h: usize, w: usize, out: &mut [f32]) {
        let k = self.kernel;
        let pad = k / 2;
        let hw = h * w;
        for c in 0..self.in_channels {
            let plane = &mut out[c * hw..(c + 1) * hw];
            for ky in 0..k {
                for kx in 0..k {
                    let row = (c * k + ky) * k + kx;
                    let col_row = &cols_grad[row * hw..(row + 1) * hw];
                    for y in 0..h {
                        let sy = y as isize + ky as isize - pad as isize;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        for x in 0..w {
                            let sx = x as isize + kx as isize - pad as isize;
                            if sx < 0 || sx >= w as isize {
                                continue;
                            }
                            plane[sy as usize * w + sx as usize] += col_row[y * w + x];
                        }
                    }
                }
            }
        }
    }
}

fn gaussian(rng: &mut SmallRng) -> f32 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = input.shape().try_into().expect("conv input is NCHW");
        assert_eq!(c, self.in_channels, "channel mismatch");
        let hw = h * w;
        let ckk = self.in_channels * self.kernel * self.kernel;
        let mut out = Tensor::zeros(&[n, self.out_channels, h, w]);
        for s in 0..n {
            let sample = &input.as_slice()[s * c * hw..(s + 1) * c * hw];
            let cols = self.im2col(sample, h, w);
            let out_s = &mut out.as_mut_slice()
                [s * self.out_channels * hw..(s + 1) * self.out_channels * hw];
            matmul(
                self.weight.value.as_slice(),
                &cols,
                out_s,
                self.out_channels,
                ckk,
                hw,
            );
            for f in 0..self.out_channels {
                let b = self.bias.value.as_slice()[f];
                for v in &mut out_s[f * hw..(f + 1) * hw] {
                    *v += b;
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.take().expect("backward without forward");
        let [n, c, h, w]: [usize; 4] = input.shape().try_into().expect("cached input is NCHW");
        let hw = h * w;
        let ckk = self.in_channels * self.kernel * self.kernel;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for s in 0..n {
            let sample = &input.as_slice()[s * c * hw..(s + 1) * c * hw];
            let cols = self.im2col(sample, h, w);
            let gout =
                &grad_out.as_slice()[s * self.out_channels * hw..(s + 1) * self.out_channels * hw];
            // dW += gout (F×HW) · colsᵀ (HW×CKK)
            matmul_a_bt(
                gout,
                &cols,
                self.weight.grad.as_mut_slice(),
                self.out_channels,
                hw,
                ckk,
            );
            // db += row sums of gout
            for f in 0..self.out_channels {
                let sum: f32 = gout[f * hw..(f + 1) * hw].iter().sum();
                self.bias.grad.as_mut_slice()[f] += sum;
            }
            // dcols = Wᵀ (CKK×F) · gout (F×HW)
            let mut dcols = vec![0.0f32; ckk * hw];
            matmul_at_b(
                self.weight.value.as_slice(),
                gout,
                &mut dcols,
                ckk,
                self.out_channels,
                hw,
            );
            let gi = &mut grad_in.as_mut_slice()[s * c * hw..(s + 1) * c * hw];
            self.col2im(&dcols, h, w, gi);
        }
        grad_in
    }

    fn infer(&self, input: &Tensor, ctx: &mut InferenceCtx) -> Tensor {
        let [n, c, h, w]: [usize; 4] = input.shape().try_into().expect("conv input is NCHW");
        assert_eq!(c, self.in_channels, "channel mismatch");
        let hw = h * w;
        let ckk = self.in_channels * self.kernel * self.kernel;
        let mut out = ctx.take_tensor(&[n, self.out_channels, h, w]);
        // One pooled column buffer serves every sample: padding slots stay
        // zero across iterations, data slots are fully overwritten.
        let mut cols = ctx.take(ckk * hw);
        // Kernel kinds are bitwise identical; Reference is the benchmark
        // baseline (see `matmul`'s summation-order contract).
        let gemm: crate::matmul::Gemm = match ctx.kernel() {
            crate::KernelKind::Tiled => matmul,
            crate::KernelKind::Reference => crate::matmul::reference::matmul,
        };
        for s in 0..n {
            let sample = &input.as_slice()[s * c * hw..(s + 1) * c * hw];
            self.im2col_into(sample, h, w, &mut cols);
            let out_s = &mut out.as_mut_slice()
                [s * self.out_channels * hw..(s + 1) * self.out_channels * hw];
            gemm(
                self.weight.value.as_slice(),
                &cols,
                out_s,
                self.out_channels,
                ckk,
                hw,
            );
            for f in 0..self.out_channels {
                let b = self.bias.value.as_slice()[f];
                for v in &mut out_s[f * hw..(f + 1) * hw] {
                    *v += b;
                }
            }
        }
        ctx.recycle(cols);
        out
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity 1×1 kernel reproduces the input.
    #[test]
    fn one_by_one_identity() {
        let mut conv = Conv2d::new(1, 1, 1, 0);
        conv.weight.value.as_mut_slice()[0] = 1.0;
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let out = conv.forward(&input, true);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    /// A 3×3 averaging kernel on a constant image keeps the interior value
    /// and attenuates the border (zero padding).
    #[test]
    fn same_padding_border_effect() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        for v in conv.weight.value.as_mut_slice() {
            *v = 1.0 / 9.0;
        }
        let input = Tensor::from_vec(&[1, 1, 3, 3], vec![9.0; 9]);
        let out = conv.forward(&input, true);
        // Center sees all 9 pixels; corners see 4.
        assert!((out.get(&[0, 0, 1, 1]) - 9.0).abs() < 1e-5);
        assert!((out.get(&[0, 0, 0, 0]) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn bias_is_added() {
        let mut conv = Conv2d::new(1, 2, 1, 0);
        conv.weight.value.fill_zero();
        conv.bias.value.as_mut_slice()[0] = 1.5;
        conv.bias.value.as_mut_slice()[1] = -2.0;
        let out = conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), true);
        assert_eq!(out.get(&[0, 0, 0, 0]), 1.5);
        assert_eq!(out.get(&[0, 1, 1, 1]), -2.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Conv2d::new(2, 3, 3, 9);
        let b = Conv2d::new(2, 3, 3, 9);
        assert_eq!(a, b);
        let c = Conv2d::new(2, 3, 3, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_rejected() {
        let _ = Conv2d::new(1, 1, 2, 0);
    }

    /// Finite-difference gradient check on weights, bias and input.
    #[test]
    fn gradient_check() {
        let mut conv = Conv2d::new(2, 2, 3, 3);
        let input = {
            let mut rng = SmallRng::seed_from_u64(5);
            Tensor::from_vec(
                &[1, 2, 4, 4],
                (0..32).map(|_| rng.gen::<f32>() - 0.5).collect(),
            )
        };
        // Loss = Σ coef · out (fixed random coefficients).
        let coefs: Vec<f32> = {
            let mut rng = SmallRng::seed_from_u64(6);
            (0..32).map(|_| rng.gen::<f32>() - 0.5).collect()
        };
        let loss = |conv: &mut Conv2d, input: &Tensor| -> f32 {
            let out = conv.forward(input, true);
            out.as_slice().iter().zip(&coefs).map(|(o, c)| o * c).sum()
        };
        // Analytic gradients.
        conv.zero_grad();
        let out = conv.forward(&input, true);
        assert_eq!(out.len(), 32);
        let grad_out = Tensor::from_vec(&[1, 2, 4, 4], coefs.clone());
        let grad_in = conv.backward(&grad_out);
        // Weight gradient check (a few entries).
        let eps = 1e-3;
        for idx in [0usize, 7, 17, 35] {
            let analytic = conv.weight.grad.as_slice()[idx];
            let orig = conv.weight.value.as_slice()[idx];
            conv.weight.value.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&mut conv, &input);
            conv.weight.value.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&mut conv, &input);
            conv.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "weight[{idx}]: analytic {analytic}, numeric {numeric}"
            );
        }
        // Input gradient check.
        for idx in [0usize, 9, 31] {
            let analytic = grad_in.as_slice()[idx];
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let lp = loss(&mut conv, &ip);
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut conv, &im);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "input[{idx}]: analytic {analytic}, numeric {numeric}"
            );
        }
        // Bias gradient: d loss / d b_f = Σ coefs over that channel.
        let expect_b0: f32 = coefs[0..16].iter().sum();
        assert!((conv.bias.grad.as_slice()[0] - expect_b0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "backward without forward")]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(1, 1, 1, 0);
        let _ = conv.backward(&Tensor::zeros(&[1, 1, 2, 2]));
    }
}
