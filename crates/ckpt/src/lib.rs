#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Crash-safe checkpoint envelope: versioned, checksummed, atomic.
//!
//! A checkpoint file is a fixed 28-byte header followed by an opaque
//! payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MMPC"
//! 4       4     format version (u32 LE)
//! 8       8     payload length (u64 LE)
//! 16      4     payload CRC-32 (IEEE, u32 LE)
//! 20      8     FNV-1a 64 over bytes 0..20 (u64 LE)
//! 28      —     payload bytes
//! ```
//!
//! Both checksums are hand-rolled (this crate pulls in nothing but
//! `mmp-vfs`, itself dependency-free: checkpointing must not be able to
//! fail because of an optional dependency). The header FNV detects a
//! corrupted *header* before any length field is trusted; the payload CRC
//! detects flipped payload bytes; the length field detects truncation (a
//! partially-written or cut file).
//!
//! [`write`] is atomic on POSIX rename semantics: the payload goes to a
//! sibling temp file, is flushed with `fsync`, and is renamed over the
//! final path, so a crash mid-write leaves either the old checkpoint or
//! none — never a half-written one. Readers classify every failure as a
//! typed [`CkptError`], which the flow maps to
//! `PlaceError::Checkpoint` (exit code 16); no corruption path panics.
//!
//! Every filesystem touch goes through an injectable [`Vfs`] chokepoint:
//! the `*_with` variants take an explicit handle so the disk-fault
//! torture harness can fail any single create/write/fsync/rename
//! deterministically; the plain functions use the zero-overhead real
//! backend.

use mmp_vfs::Vfs;
use std::path::Path;

/// Envelope magic bytes.
pub const MAGIC: [u8; 4] = *b"MMPC";

/// Current envelope format version. Readers refuse newer (and older)
/// versions with [`CkptError::UnsupportedVersion`] rather than guessing at
/// a layout.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;

/// Why a checkpoint could not be written or read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Filesystem trouble (create, write, fsync, rename, read).
    Io {
        /// Path involved.
        path: String,
        /// OS error text.
        detail: String,
    },
    /// The file does not start with the envelope magic — not a checkpoint.
    BadMagic {
        /// Path involved.
        path: String,
    },
    /// The envelope was written by an incompatible format version.
    UnsupportedVersion {
        /// Path involved.
        path: String,
        /// Version found in the header.
        found: u32,
        /// The only version this reader understands.
        supported: u32,
    },
    /// The file is shorter than its header claims (cut mid-write or
    /// truncated afterwards).
    Truncated {
        /// Path involved.
        path: String,
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A checksum failed: the bytes present are not the bytes written.
    Corrupt {
        /// Path involved.
        path: String,
        /// Which check failed.
        detail: String,
    },
    /// The envelope was intact but its payload is not usable (wrong
    /// fingerprint, undecodable state, injected crash).
    Invalid {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io { path, detail } => write!(f, "checkpoint I/O on {path}: {detail}"),
            CkptError::BadMagic { path } => {
                write!(f, "{path} is not a checkpoint (bad magic)")
            }
            CkptError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{path} uses checkpoint format v{found}, this build supports only v{supported}"
            ),
            CkptError::Truncated {
                path,
                expected,
                got,
            } => write!(
                f,
                "{path} is truncated: header promises {expected} bytes, file has {got}"
            ),
            CkptError::Corrupt { path, detail } => {
                write!(f, "{path} is corrupt: {detail}")
            }
            CkptError::Invalid { detail } => write!(f, "checkpoint unusable: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {}

fn io_err(path: &Path, e: std::io::Error) -> CkptError {
    CkptError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
///
/// Bitwise, table-free: checkpoints are small enough that simplicity and
/// zero static data beat throughput.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit hash of `bytes` (the header self-check and the flow's
/// design/config fingerprint).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode(payload: &[u8], version: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_fnv = fnv1a64(&buf[..20]);
    buf.extend_from_slice(&header_fnv.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// What a successful write additionally observed. The data file itself is
/// durable whenever a write returns `Ok`; `dir_fsync_failed` reports that
/// the *directory entry* fsync after the rename failed, which callers
/// surface to operators (flaky storage) instead of the old silent
/// `let _ = d.sync_all()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteReceipt {
    /// The best-effort directory fsync after the rename failed.
    pub dir_fsync_failed: bool,
}

/// Writes `payload` to `path` atomically under the current
/// [`FORMAT_VERSION`].
///
/// The bytes go to `path` + `.tmp` first, are flushed to disk with
/// `fsync`, and the temp file is renamed over `path`. On POSIX rename
/// atomicity this means a reader (including a resuming run after a crash
/// here) sees either the previous checkpoint or the new one, never a
/// partial write.
///
/// # Errors
///
/// [`CkptError::Io`] on any filesystem failure.
pub fn write(path: &Path, payload: &[u8]) -> Result<(), CkptError> {
    write_at_version(path, payload, FORMAT_VERSION)
}

/// [`write`] through an explicit [`Vfs`] handle, reporting the
/// directory-fsync outcome.
///
/// # Errors
///
/// [`CkptError::Io`] on any filesystem failure.
pub fn write_with(vfs: &Vfs, path: &Path, payload: &[u8]) -> Result<WriteReceipt, CkptError> {
    write_at_version_with(vfs, path, payload, FORMAT_VERSION)
}

/// [`write`] with an explicit format version.
///
/// Production code always writes [`FORMAT_VERSION`]; the fault harness
/// uses this to manufacture validly-checksummed envelopes from a *future*
/// version and prove readers refuse them.
///
/// # Errors
///
/// [`CkptError::Io`] on any filesystem failure.
pub fn write_at_version(path: &Path, payload: &[u8], version: u32) -> Result<(), CkptError> {
    write_at_version_with(&Vfs::real(), path, payload, version).map(|_| ())
}

/// [`write_at_version`] through an explicit [`Vfs`] handle.
///
/// The write protocol exposes five independently faultable boundaries:
/// temp-file create, payload write, file fsync, rename, directory fsync.
/// A failed directory fsync does not fail the write (the data file is
/// already durable) unless it is crash-marked — it is reported in the
/// [`WriteReceipt`] so callers can count it.
///
/// # Errors
///
/// [`CkptError::Io`] on any filesystem failure.
pub fn write_at_version_with(
    vfs: &Vfs,
    path: &Path,
    payload: &[u8],
    version: u32,
) -> Result<WriteReceipt, CkptError> {
    let tmp = match path.file_name() {
        Some(name) => {
            let mut tmp_name = name.to_os_string();
            tmp_name.push(".tmp");
            path.with_file_name(tmp_name)
        }
        None => {
            return Err(CkptError::Io {
                path: path.display().to_string(),
                detail: "path has no file name".to_owned(),
            })
        }
    };
    let buf = encode(payload, version);
    // Create + write + fsync before rename: the rename must never land
    // before the data.
    vfs.write_file(&tmp, &buf).map_err(|e| io_err(&tmp, e))?;
    vfs.rename(&tmp, path).map_err(|e| io_err(path, e))?;
    // Best-effort directory fsync so the rename itself is durable; not all
    // platforms allow opening a directory for sync, so a failure does not
    // fail the write (the data file is already safe either way) — but it
    // is no longer silent: the receipt reports it, and a crash-marked
    // injection still aborts like the power loss it models.
    let mut receipt = WriteReceipt::default();
    if let Some(dir) = path.parent() {
        if let Err(e) = vfs.sync_dir(dir) {
            if mmp_vfs::is_crash(&e) {
                return Err(io_err(dir, e));
            }
            receipt.dir_fsync_failed = true;
        }
    }
    Ok(receipt)
}

fn decode(path: &Path, bytes: &[u8]) -> Result<Vec<u8>, CkptError> {
    let display = || path.display().to_string();
    if bytes.len() < HEADER_LEN {
        return Err(CkptError::Truncated {
            path: display(),
            expected: HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[..4] != MAGIC {
        return Err(CkptError::BadMagic { path: display() });
    }
    // The header carries its own FNV so a flipped *length* byte is caught
    // before it is trusted (otherwise a corrupt length reads as a
    // misleading truncation).
    let stored_fnv = u64::from_le_bytes(bytes[20..28].try_into().unwrap_or([0; 8]));
    if fnv1a64(&bytes[..20]) != stored_fnv {
        return Err(CkptError::Corrupt {
            path: display(),
            detail: "header checksum (FNV-1a) mismatch".to_owned(),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap_or([0; 4]));
    if version != FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion {
            path: display(),
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap_or([0; 8]));
    let expected = HEADER_LEN as u64 + payload_len;
    if (bytes.len() as u64) < expected {
        return Err(CkptError::Truncated {
            path: display(),
            expected,
            got: bytes.len() as u64,
        });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap_or([0; 4]));
    if crc32(payload) != stored_crc {
        return Err(CkptError::Corrupt {
            path: display(),
            detail: "payload checksum (CRC-32) mismatch".to_owned(),
        });
    }
    Ok(payload.to_vec())
}

/// Reads and verifies the checkpoint at `path`, returning its payload.
///
/// Verification order: size → magic → header FNV → version → declared
/// length (truncation) → payload CRC.
///
/// # Errors
///
/// A [`CkptError`] naming exactly which check failed.
pub fn read(path: &Path) -> Result<Vec<u8>, CkptError> {
    read_with(&Vfs::real(), path)
}

/// [`read`] through an explicit [`Vfs`] handle.
///
/// # Errors
///
/// A [`CkptError`] naming exactly which check failed.
pub fn read_with(vfs: &Vfs, path: &Path) -> Result<Vec<u8>, CkptError> {
    let bytes = vfs.read_file(path).map_err(|e| io_err(path, e))?;
    decode(path, &bytes)
}

/// [`read`] that maps a missing file to `Ok(None)` — the natural shape for
/// "resume if a checkpoint exists".
///
/// # Errors
///
/// Every failure except `NotFound` is still a [`CkptError`]: an *existing*
/// but unreadable checkpoint must surface, not silently restart the run.
pub fn read_opt(path: &Path) -> Result<Option<Vec<u8>>, CkptError> {
    read_opt_with(&Vfs::real(), path)
}

/// [`read_opt`] through an explicit [`Vfs`] handle.
///
/// # Errors
///
/// Every failure except `NotFound` is still a [`CkptError`].
pub fn read_opt_with(vfs: &Vfs, path: &Path) -> Result<Option<Vec<u8>>, CkptError> {
    match vfs.read_file(path) {
        Ok(bytes) => decode(path, &bytes).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err(path, e)),
    }
}

#[cfg(test)]
// why: tests tamper with checkpoint bytes on purpose; the workspace-wide ban on
// bare `std::fs::write` exists to route *production* state through the
// atomic writer above.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mmp_ckpt_{}_{name}", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Published IEEE CRC-32 check values: a refactor of the bitwise
        // loop (e.g. to a table) must reproduce these exactly.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fnv1a64_matches_known_vectors() {
        // Vectors from the reference FNV test suite (Noll's fnv64a).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"abc"), 0xe71f_a219_0541_574b);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a64(b"chongo was here!\n"), 0x4681_0940_eff5_f915);
    }

    #[test]
    fn round_trip_preserves_payload() {
        let path = tmp("roundtrip.ckpt");
        let payload = b"the quick brown fox \x00\xff\x7f jumps".to_vec();
        write(&path, &payload).unwrap();
        assert_eq!(read(&path).unwrap(), payload);
        assert_eq!(read_opt(&path).unwrap(), Some(payload));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_payload_round_trips() {
        let path = tmp("empty.ckpt");
        write(&path, &[]).unwrap();
        assert_eq!(read(&path).unwrap(), Vec::<u8>::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_none_for_read_opt_and_io_for_read() {
        let path = tmp("missing.ckpt");
        std::fs::remove_file(&path).ok();
        assert_eq!(read_opt(&path).unwrap(), None);
        assert!(matches!(read(&path), Err(CkptError::Io { .. })));
    }

    #[test]
    fn truncation_is_detected_at_every_cut_point() {
        let path = tmp("trunc.ckpt");
        let payload: Vec<u8> = (0..200u8).collect();
        write(&path, &payload).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                matches!(read(&path), Err(CkptError::Truncated { .. })),
                "cut at {cut} must read as truncation"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_is_corrupt() {
        let path = tmp("corrupt.ckpt");
        write(&path, b"important state").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match read(&path) {
            Err(CkptError::Corrupt { detail, .. }) => assert!(detail.contains("CRC")),
            other => panic!("expected payload corruption, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_header_byte_is_corrupt_not_a_wild_read() {
        let path = tmp("hdr.ckpt");
        write(&path, b"payload").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x40; // a length byte — must be caught by the header FNV
        std::fs::write(&path, &bytes).unwrap();
        match read(&path) {
            Err(CkptError::Corrupt { detail, .. }) => assert!(detail.contains("FNV")),
            other => panic!("expected header corruption, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_not_a_checkpoint() {
        let path = tmp("magic.ckpt");
        std::fs::write(&path, b"JSON{not a checkpoint at all, but long enough}").unwrap();
        assert!(matches!(read(&path), Err(CkptError::BadMagic { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_is_refused_with_both_versions_named() {
        let path = tmp("version.ckpt");
        write_at_version(&path, b"from the future", FORMAT_VERSION + 1).unwrap();
        match read(&path) {
            Err(CkptError::UnsupportedVersion {
                found, supported, ..
            }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version refusal, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_replaces_atomically_and_leaves_no_temp_file() {
        let path = tmp("rewrite.ckpt");
        write(&path, b"first").unwrap();
        write(&path, b"second").unwrap();
        assert_eq!(read(&path).unwrap(), b"second");
        let tmp_sibling = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(!tmp_sibling.exists(), "temp file must not survive a write");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_dir_fsync_failure_is_reported_not_fatal() {
        use mmp_vfs::{FailPlan, FaultKind, OpKind, Vfs};
        let path = tmp("dirfsync.ckpt");
        std::fs::remove_file(&path).ok();
        // Fsync op 1 is the temp file, op 2 is the directory.
        let vfs = Vfs::with_plan(FailPlan::new(FaultKind::Eio, 2).on(OpKind::Fsync));
        let receipt = write_with(&vfs, &path, b"payload").unwrap();
        assert!(receipt.dir_fsync_failed);
        // The data file is durable and readable regardless.
        assert_eq!(read(&path).unwrap(), b"payload");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_rename_failure_leaves_the_temp_orphan() {
        use mmp_vfs::{FailPlan, FaultKind, OpKind, Vfs};
        let path = tmp("torn.ckpt");
        std::fs::remove_file(&path).ok();
        let vfs = Vfs::with_plan(FailPlan::new(FaultKind::Eio, 1).on(OpKind::Rename));
        match write_with(&vfs, &path, b"payload") {
            Err(CkptError::Io { detail, .. }) => assert!(detail.contains("EIO"), "{detail}"),
            other => panic!("expected an I/O error, got {other:?}"),
        }
        let orphan = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(orphan.exists(), "a torn rename leaves the .tmp orphan");
        assert!(!path.exists());
        std::fs::remove_file(&orphan).ok();
    }

    #[test]
    fn crash_marked_write_fault_is_an_io_error_with_the_marker() {
        use mmp_vfs::{FailPlan, FaultKind, OpKind, Vfs};
        let path = tmp("crashmark.ckpt");
        std::fs::remove_file(&path).ok();
        let vfs = Vfs::with_plan(FailPlan::new(FaultKind::CrashAfter, 1).on(OpKind::Rename));
        match write_with(&vfs, &path, b"payload") {
            Err(CkptError::Io { detail, .. }) => assert!(mmp_vfs::is_crash_detail(&detail)),
            other => panic!("expected a crash-marked I/O error, got {other:?}"),
        }
        // CrashAfter models power loss *after* the syscall: the rename
        // landed, so a resuming reader sees the complete envelope.
        assert_eq!(read(&path).unwrap(), b"payload");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_render_the_failing_check() {
        let e = CkptError::Truncated {
            path: "x.ckpt".into(),
            expected: 100,
            got: 40,
        };
        assert!(e.to_string().contains("truncated"));
        let e = CkptError::UnsupportedVersion {
            path: "x.ckpt".into(),
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains("v1"));
    }
}
