//! Episode scoring: from a grid assignment to a wirelength.
//!
//! The paper scores every finished episode with the full pipeline —
//! legalize macros, place cells with the mixed-size placer, measure HPWL
//! (Sec. II-B/C). That is [`FullEvaluator`]. For fast experimentation (and
//! cheap unit tests) [`CoarseEvaluator`] scores the coarsened netlist
//! directly with groups at their assigned cells.

use crate::env::PlacementEnv;
use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
use mmp_cluster::CoarseHpwlCache;
use mmp_legal::MacroLegalizer;
use mmp_netlist::Placement;
use std::sync::Mutex;

/// Maps a finished episode to the wirelength W of Eq. 9 (lower is better).
pub trait WirelengthEvaluator {
    /// Scores the terminal state of `env`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when the episode is not terminal.
    fn wirelength(&self, env: &PlacementEnv<'_>) -> f64;
}

/// The paper's pipeline: 3-step legalization + analytical cell placement +
/// full-netlist HPWL.
#[derive(Debug, Clone)]
pub struct FullEvaluator {
    legalizer: MacroLegalizer,
    placer: GlobalPlacer,
}

impl FullEvaluator {
    /// Full evaluation with the given cell-placer preset.
    pub fn new(placer_config: GlobalPlacerConfig) -> Self {
        FullEvaluator {
            legalizer: MacroLegalizer::new(),
            placer: GlobalPlacer::new(placer_config),
        }
    }

    /// Full evaluation with the fast cell-placer preset (the default for
    /// training loops).
    pub fn fast() -> Self {
        FullEvaluator::new(GlobalPlacerConfig::fast())
    }

    /// Runs the pipeline and returns the final placement alongside HPWL.
    pub fn place(&self, env: &PlacementEnv<'_>) -> (Placement, f64) {
        // why: invariant, not input: the env only reaches a terminal state once
        // every group has an assignment, so legalize cannot see a length
        // mismatch.
        #[allow(clippy::expect_used)]
        let outcome = self
            .legalizer
            .legalize(env.design(), env.coarse(), env.assignment(), env.grid())
            .expect("assignment length matches group count");
        let cells = self.placer.place_cells(env.design(), &outcome.placement);
        (cells.placement, cells.hpwl)
    }
}

impl WirelengthEvaluator for FullEvaluator {
    fn wirelength(&self, env: &PlacementEnv<'_>) -> f64 {
        assert!(env.is_terminal(), "evaluate only terminal episodes");
        self.place(env).1
    }
}

/// Cheap proxy: weighted HPWL of the coarsened netlist with macro groups at
/// their assigned cells and cell groups at their clustering centroids.
///
/// Terminal states of consecutive episodes differ in only a few group
/// placements, so the evaluator keeps a [`CoarseHpwlCache`] and re-scores
/// only the nets of groups whose center changed since the previous call.
/// The cached per-net values are computed by the same arithmetic as
/// [`mmp_cluster::CoarsenedNetlist::hpwl`] and re-summed in net order, so
/// every result is bitwise-equal to the full recompute — regardless of
/// which state the cache was left in (the cache is behind a [`Mutex`]
/// because the ensemble shares one `Trainer` across worker threads, and
/// any interleaving yields the same exact values).
#[derive(Debug, Default)]
pub struct CoarseEvaluator {
    cache: Mutex<Option<CoarseHpwlCache>>,
}

impl CoarseEvaluator {
    /// Creates the coarse evaluator (empty cache; built on first use).
    pub fn new() -> Self {
        CoarseEvaluator::default()
    }
}

impl Clone for CoarseEvaluator {
    /// Clones start with an empty cache: the cache is a pure accelerator,
    /// never observable state.
    fn clone(&self) -> Self {
        CoarseEvaluator::new()
    }
}

impl WirelengthEvaluator for CoarseEvaluator {
    fn wirelength(&self, env: &PlacementEnv<'_>) -> f64 {
        assert!(env.is_terminal(), "evaluate only terminal episodes");
        let macro_centers = env.group_centers();
        let coarse = env.coarse();
        // A poisoned lock only means another worker panicked mid-update
        // with the journal non-empty; the state is still a valid cache and
        // the diff below re-scores anything stale.
        let mut guard = self
            .cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match guard.as_mut() {
            Some(cache) if cache.matches(coarse) => {
                cache.revert();
                for (g, &p) in macro_centers.iter().enumerate() {
                    if cache.macro_centers()[g] != p {
                        cache.set_group(coarse, g, p);
                    }
                }
                cache.commit();
                cache.total()
            }
            _ => {
                let cache =
                    CoarseHpwlCache::new(coarse, macro_centers, coarse.cell_group_centers());
                let total = cache.total();
                *guard = Some(cache);
                total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_cluster::{ClusterParams, Coarsener};
    use mmp_geom::Grid;
    use mmp_netlist::SyntheticSpec;

    fn terminal_env_score<E: WirelengthEvaluator>(eval: &E, action: usize, seed: u64) -> f64 {
        let d = SyntheticSpec::small("ev", 6, 0, 8, 50, 90, false, seed).generate();
        let grid = Grid::new(*d.region(), 8);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(&d, &Placement::initial(&d));
        let mut env = PlacementEnv::new(&d, &coarse, grid);
        while !env.is_terminal() {
            env.step(action);
        }
        eval.wirelength(&env)
    }

    #[test]
    fn coarse_evaluator_is_bitwise_equal_to_full_recompute_across_calls() {
        // One evaluator, many assignments: every call must match the
        // uncached full pass bit for bit, whatever state the cache holds.
        let e = CoarseEvaluator::new();
        for action in [0usize, 17, 63, 5, 17, 0] {
            let d = SyntheticSpec::small("ev", 6, 0, 8, 50, 90, false, 1).generate();
            let grid = Grid::new(*d.region(), 8);
            let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
                .coarsen(&d, &Placement::initial(&d));
            let mut env = PlacementEnv::new(&d, &coarse, grid);
            while !env.is_terminal() {
                env.step(action);
            }
            let full = env
                .coarse()
                .hpwl(&env.group_centers(), &env.coarse().cell_group_centers());
            assert_eq!(e.wirelength(&env).to_bits(), full.to_bits());
        }
    }

    #[test]
    fn coarse_evaluator_scores_and_differs_by_assignment() {
        let e = CoarseEvaluator::new();
        let a = terminal_env_score(&e, 0, 1);
        let b = terminal_env_score(&e, 63, 1);
        assert!(a > 0.0 && b > 0.0);
        assert_ne!(a, b);
    }

    #[test]
    fn full_evaluator_scores_legal_placements() {
        let d = SyntheticSpec::small("fe", 6, 0, 8, 50, 90, false, 2).generate();
        let grid = Grid::new(*d.region(), 8);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(&d, &Placement::initial(&d));
        let mut env = PlacementEnv::new(&d, &coarse, grid);
        let mut k = 0usize;
        while !env.is_terminal() {
            env.step((k * 13 + 5) % 64);
            k += 1;
        }
        let eval = FullEvaluator::fast();
        let (placement, hpwl) = eval.place(&env);
        assert!(hpwl > 0.0);
        assert!(
            placement.macro_overlap_area(&d) < 1e-6,
            "macros must be legal"
        );
        assert!((eval.wirelength(&env) - hpwl).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "terminal")]
    fn evaluating_unfinished_episode_panics() {
        let d = SyntheticSpec::small("uf", 6, 0, 8, 50, 90, false, 3).generate();
        let grid = Grid::new(*d.region(), 8);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(&d, &Placement::initial(&d));
        let env = PlacementEnv::new(&d, &coarse, grid);
        let _ = CoarseEvaluator::new().wirelength(&env);
    }
}
