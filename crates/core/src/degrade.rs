//! Degradation accounting: which stages fell back, and why.
//!
//! Every graceful-degradation path in the flow (deadline expiry, rejected
//! gradient updates, NaN network evaluations, row-greedy legalization)
//! records one [`Degradation`] event here. An empty report means the run
//! took the full-quality path end to end; a populated report is *not* an
//! error — the placement is still complete and legal — but tells the
//! caller exactly which stages ran degraded and how.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five stages of Algorithm 1, in flow order, plus the
/// post-placement reporting step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Prototyping placement, grouping, coarsening, feasibility checks.
    Preprocess,
    /// RL pre-training.
    Train,
    /// MCTS placement optimization.
    Search,
    /// Macro legalization.
    Legalize,
    /// Final analytical cell placement.
    FinalPlace,
    /// Optional post-MCTS swap/relocate refinement.
    Refine,
    /// Result aggregation and report emission (after placement).
    Report,
    /// Checkpoint persistence and resume (orthogonal to the flow stages;
    /// ordered last so stage sorting keeps Algorithm 1's order intact).
    Checkpoint,
}

impl Stage {
    /// Stable lower-case name (used in reports and CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Preprocess => "preprocess",
            Stage::Train => "train",
            Stage::Search => "search",
            Stage::Legalize => "legalize",
            Stage::FinalPlace => "final-place",
            Stage::Refine => "refine",
            Stage::Report => "report",
            Stage::Checkpoint => "checkpoint",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded fallback.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degradation {
    /// The stage that degraded.
    pub stage: Stage,
    /// Human-readable description of what was given up and what replaced
    /// it.
    pub detail: String,
}

/// All fallbacks taken during one run of [`crate::MacroPlacer::place`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Events in the order they occurred.
    pub events: Vec<Degradation>,
}

impl DegradationReport {
    /// Records one event.
    pub fn record(&mut self, stage: Stage, detail: impl Into<String>) {
        self.events.push(Degradation {
            stage,
            detail: detail.into(),
        });
    }

    /// `true` when the run took the full-quality path everywhere.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `true` when at least one event touched `stage`.
    pub fn affects(&self, stage: Stage) -> bool {
        self.events.iter().any(|e| e.stage == stage)
    }

    /// The distinct degraded stages, in flow order.
    pub fn degraded_stages(&self) -> Vec<Stage> {
        let mut stages: Vec<Stage> = self.events.iter().map(|e| e.stage).collect();
        stages.sort();
        stages.dedup();
        stages
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no degradation");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}: {}", e.stage, e.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_reads_clean() {
        let r = DegradationReport::default();
        assert!(r.is_empty());
        assert!(!r.affects(Stage::Train));
        assert_eq!(r.to_string(), "no degradation");
    }

    #[test]
    fn stages_are_deduped_and_flow_ordered() {
        let mut r = DegradationReport::default();
        r.record(Stage::Legalize, "row-greedy fallback in 2 cells");
        r.record(Stage::Train, "deadline expired after 12 episodes");
        r.record(Stage::Legalize, "global row-greedy pass");
        assert_eq!(r.degraded_stages(), vec![Stage::Train, Stage::Legalize]);
        assert!(r.affects(Stage::Legalize));
        assert!(!r.affects(Stage::Search));
        let text = r.to_string();
        assert!(text.contains("train: deadline expired"));
        assert!(text.contains("legalize: row-greedy"));
    }
}
