//! The `--format json` output must stay machine-parseable with a stable
//! shape: downstream CI tooling consumes it. These tests parse the
//! hand-rolled emitter's output with the vendored JSON reader.
//!
//! Schema v2 (this PR) added `item`, `kind`, `call_chain`, `baselined`
//! per finding and the top-level `new` count.

use mmp_lint::{baseline, lint_source, render_json, Finding, LintConfig};
use serde::{map_get, Value};
use serde_json::parse_value;

fn findings_for(src: &str) -> Vec<Finding> {
    lint_source("crates/mcts/src/fixture.rs", src, &LintConfig::default())
}

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    map_get(v, key).unwrap_or_else(|| panic!("missing key `{key}`"))
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

#[test]
fn json_output_matches_the_documented_schema() {
    let src = "fn f() {\n    let t = Instant::now();\n    // mmp-lint: allow(hash-order) why: probe only\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    let findings = findings_for(src);
    let doc = parse_value(&render_json(&findings)).expect("valid JSON");

    assert_eq!(get(&doc, "version").as_u64(), Some(2));
    assert_eq!(get(&doc, "total").as_u64(), Some(findings.len() as u64));
    let live = findings.iter().filter(|f| !f.suppressed).count();
    assert_eq!(get(&doc, "unsuppressed").as_u64(), Some(live as u64));
    // Nothing is baselined here, so new == unsuppressed.
    assert_eq!(get(&doc, "new").as_u64(), Some(live as u64));

    let arr = match get(&doc, "findings") {
        Value::Seq(items) => items,
        other => panic!("expected findings array, got {other:?}"),
    };
    assert_eq!(arr.len(), findings.len());
    for (j, f) in arr.iter().zip(&findings) {
        assert_eq!(as_str(get(j, "rule")), f.rule);
        assert_eq!(as_str(get(j, "path")), f.path);
        assert_eq!(get(j, "line").as_u64(), Some(f.line as u64));
        assert_eq!(get(j, "col").as_u64(), Some(f.col as u64));
        assert!(matches!(get(j, "message"), Value::Str(_)));
        assert_eq!(as_str(get(j, "item")), f.item);
        assert_eq!(as_str(get(j, "kind")), f.kind);
        match get(j, "call_chain") {
            Value::Seq(hops) => {
                assert_eq!(hops.len(), f.call_chain.len());
                for (h, expect) in hops.iter().zip(&f.call_chain) {
                    assert_eq!(as_str(h), expect);
                }
            }
            other => panic!("expected call_chain array, got {other:?}"),
        }
        assert_eq!(get(j, "suppressed"), &Value::Bool(f.suppressed));
        assert_eq!(get(j, "baselined"), &Value::Bool(f.baselined));
        match &f.why {
            Some(w) => assert_eq!(as_str(get(j, "why")), w),
            None => assert_eq!(get(j, "why"), &Value::Null),
        }
    }

    // The fixture covers both states: one live wallclock finding and one
    // suppressed hash-order finding carrying its why text.
    assert!(arr.iter().any(|j| as_str(get(j, "rule")) == "wallclock"
        && get(j, "suppressed") == &Value::Bool(false)
        && as_str(get(j, "item")) == "mmp_mcts::fixture::f"));
    assert!(arr.iter().any(|j| as_str(get(j, "rule")) == "hash-order"
        && get(j, "suppressed") == &Value::Bool(true)
        && as_str(get(j, "why")) == "probe only"));
}

#[test]
fn panic_path_chain_from_daemon_serve_survives_the_json_roundtrip() {
    // Golden capture of the pre-sweep daemon shape: a request-path
    // helper unwraps, and the JSON report carries the full chain from
    // `Daemon::serve` so CI consumers can rank by reachability.
    let src = "impl Daemon {\n\
               \x20   pub fn serve(&self) { self.handle_request(); }\n\
               \x20   fn handle_request(&self) { parse_len(b\"x\"); }\n\
               }\n\
               fn parse_len(b: &[u8]) -> u8 {\n\
               \x20   b.first().copied().unwrap()\n\
               }\n";
    let findings = lint_source("crates/serve/src/fixture.rs", src, &LintConfig::default());
    let doc = parse_value(&render_json(&findings)).expect("valid JSON");
    let arr = match get(&doc, "findings") {
        Value::Seq(items) => items,
        other => panic!("expected findings array, got {other:?}"),
    };
    let unwrap_site = arr
        .iter()
        .find(|j| as_str(get(j, "rule")) == "panic-path" && as_str(get(j, "kind")) == "unwrap")
        .expect("unwrap finding present");
    let chain = match get(unwrap_site, "call_chain") {
        Value::Seq(hops) => hops
            .iter()
            .map(|h| as_str(h).to_owned())
            .collect::<Vec<_>>(),
        other => panic!("expected call_chain array, got {other:?}"),
    };
    assert_eq!(
        chain,
        vec![
            "mmp_serve::fixture::Daemon::serve",
            "mmp_serve::fixture::Daemon::handle_request",
            "mmp_serve::fixture::parse_len",
        ]
    );
}

#[test]
fn baselined_findings_are_marked_in_json() {
    let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let mut findings = lint_source("crates/serve/src/fixture.rs", src, &LintConfig::default());
    let base = baseline::compute(&findings);
    baseline::mark(&mut findings, &base);
    let doc = parse_value(&render_json(&findings)).expect("valid JSON");
    assert_eq!(get(&doc, "new").as_u64(), Some(0));
    let arr = match get(&doc, "findings") {
        Value::Seq(items) => items,
        other => panic!("expected findings array, got {other:?}"),
    };
    assert!(arr
        .iter()
        .all(|j| get(j, "baselined") == &Value::Bool(true)));
}

#[test]
fn json_output_escapes_special_characters() {
    // A suppression why containing quotes and backslashes must survive the
    // round-trip through the hand-rolled emitter.
    let src = "fn f() {\n    // mmp-lint: allow(wallclock) why: probe \"quoted\" and back\\slash\n    let t = Instant::now();\n}\n";
    let doc = parse_value(&render_json(&findings_for(src))).expect("valid JSON");
    let arr = match get(&doc, "findings") {
        Value::Seq(items) => items,
        other => panic!("expected findings array, got {other:?}"),
    };
    assert!(arr
        .iter()
        .any(|j| as_str(get(j, "why")) == "probe \"quoted\" and back\\slash"));
}

#[test]
fn empty_findings_render_as_an_empty_report() {
    let doc = parse_value(&render_json(&[])).expect("valid JSON");
    assert_eq!(get(&doc, "version").as_u64(), Some(2));
    assert_eq!(get(&doc, "total").as_u64(), Some(0));
    assert_eq!(get(&doc, "unsuppressed").as_u64(), Some(0));
    assert_eq!(get(&doc, "new").as_u64(), Some(0));
    assert_eq!(get(&doc, "findings"), &Value::Seq(Vec::new()));
}
