//! Two-run bitwise determinism regression: the invariant `mmp-lint`'s
//! rules exist to protect. The full flow, run twice in one process on the
//! same design and config, must produce bit-identical placements, HPWL,
//! and run-report counters/gauges — any drift means unordered iteration,
//! OS-seeded randomness, or wall-clock leakage reached a decision.

use mmp_core::{
    MacroPlacer, PlacementResult, PlacerConfig, RunReport, SwapRefineConfig, SyntheticSpec,
};
use mmp_netlist::MacroId;
use mmp_obs::Obs;

fn small_config() -> PlacerConfig {
    let mut cfg = PlacerConfig::fast(6);
    cfg.trainer.episodes = 8;
    cfg.trainer.calibration_episodes = 4;
    cfg.mcts.explorations = 12;
    cfg
}

fn run_config(design: &mmp_netlist::Design, cfg: PlacerConfig) -> (PlacementResult, RunReport) {
    // A fresh Obs per run: shared metrics would hide per-run drift.
    let obs = Obs::metrics_only();
    let result = MacroPlacer::new(cfg)
        .with_obs(obs.clone())
        .place(design)
        .unwrap();
    let report = RunReport::new(design.name(), &result, &obs.snapshot());
    (result, report)
}

fn run_once(design: &mmp_netlist::Design) -> (PlacementResult, RunReport) {
    run_config(design, small_config())
}

#[test]
fn full_flow_is_bitwise_deterministic_across_two_runs() {
    let design = SyntheticSpec::small("det_reg", 10, 2, 14, 120, 200, true, 21).generate();
    let (ra, pa) = run_once(&design);
    let (rb, pb) = run_once(&design);

    // HPWL to the last bit — not an epsilon comparison.
    assert_eq!(ra.hpwl.to_bits(), rb.hpwl.to_bits(), "HPWL drifted");

    // The grid assignment (the MCTS/RL decision output) must be identical.
    assert_eq!(ra.assignment, rb.assignment, "grid assignment drifted");

    // Every macro coordinate, bit for bit.
    for i in 0..design.macros().len() {
        let ca = ra.placement.macro_center(MacroId::from_index(i));
        let cb = rb.placement.macro_center(MacroId::from_index(i));
        assert_eq!(
            (ca.x.to_bits(), ca.y.to_bits()),
            (cb.x.to_bits(), cb.y.to_bits()),
            "macro {i} moved between runs"
        );
    }

    // Run-report counters and gauges capture per-stage work (solver
    // iterations, search visits, legalization rounds). Wall-clock fields
    // (`timings`, `span_ms`) are excluded: they legitimately vary.
    assert_eq!(pa.counters, pb.counters, "observability counters drifted");
    assert_eq!(
        pa.gauges.keys().collect::<Vec<_>>(),
        pb.gauges.keys().collect::<Vec<_>>(),
        "gauge set drifted"
    );
    for (k, va) in &pa.gauges {
        let vb = pb.gauges[k];
        assert_eq!(va.to_bits(), vb.to_bits(), "gauge {k} drifted");
    }

    // Deterministic report sections beyond the metrics registry.
    assert_eq!(pa.training, pb.training, "training summary drifted");
    assert_eq!(pa.search, pb.search, "search stats drifted");
}

#[test]
fn refine_enabled_flow_is_bitwise_deterministic_across_two_runs() {
    // Same regression with the post-MCTS swap-refinement stage on: the
    // seeded proposal stream and incremental-HPWL accept decisions must
    // replay exactly, including the refine counters in the report.
    let design = SyntheticSpec::small("det_ref", 10, 2, 14, 120, 200, true, 21).generate();
    let cfg = || {
        let mut c = small_config();
        c.refine = Some(SwapRefineConfig {
            moves: 200,
            seed: 11,
        });
        c
    };
    let (ra, pa) = run_config(&design, cfg());
    let (rb, pb) = run_config(&design, cfg());

    assert_eq!(ra.hpwl.to_bits(), rb.hpwl.to_bits(), "HPWL drifted");
    for i in 0..design.macros().len() {
        let ca = ra.placement.macro_center(MacroId::from_index(i));
        let cb = rb.placement.macro_center(MacroId::from_index(i));
        assert_eq!(
            (ca.x.to_bits(), ca.y.to_bits()),
            (cb.x.to_bits(), cb.y.to_bits()),
            "macro {i} moved between runs"
        );
    }
    let sa = ra.refine.unwrap();
    let sb = rb.refine.unwrap();
    assert_eq!(sa, sb, "refine summary drifted");
    assert!(sa.hpwl_after <= sa.hpwl_before, "refine raised HPWL");
    assert_eq!(
        pa.counters.get("refine.moves"),
        pb.counters.get("refine.moves")
    );
    assert_eq!(pa.counters, pb.counters, "observability counters drifted");
}

#[test]
fn pooled_flow_is_bitwise_deterministic_across_two_runs_and_worker_counts() {
    // The compute pool must be bitwise-neutral: with a fixed summation
    // order in every kernel and reduction, a multi-worker run replays
    // exactly against itself AND against the single-worker flow.
    let design = SyntheticSpec::small("det_pool", 10, 2, 14, 120, 200, true, 21).generate();
    let cfg = |workers: usize| {
        let mut c = small_config();
        c.workers = workers;
        c
    };
    let (ra, pa) = run_config(&design, cfg(4));
    let (rb, pb) = run_config(&design, cfg(4));
    let (rc, _) = run_config(&design, cfg(1));

    assert_eq!(ra.hpwl.to_bits(), rb.hpwl.to_bits(), "HPWL drifted");
    assert_eq!(
        ra.hpwl.to_bits(),
        rc.hpwl.to_bits(),
        "worker count changed the HPWL bits"
    );
    assert_eq!(ra.assignment, rb.assignment, "grid assignment drifted");
    assert_eq!(
        ra.assignment, rc.assignment,
        "worker count changed the assignment"
    );
    for i in 0..design.macros().len() {
        let ca = ra.placement.macro_center(MacroId::from_index(i));
        let cb = rb.placement.macro_center(MacroId::from_index(i));
        let cc = rc.placement.macro_center(MacroId::from_index(i));
        assert_eq!(
            (ca.x.to_bits(), ca.y.to_bits()),
            (cb.x.to_bits(), cb.y.to_bits()),
            "macro {i} moved between pooled runs"
        );
        assert_eq!(
            (ca.x.to_bits(), ca.y.to_bits()),
            (cc.x.to_bits(), cc.y.to_bits()),
            "macro {i} moved with the worker count"
        );
    }
    assert_eq!(pa.counters, pb.counters, "observability counters drifted");
}
