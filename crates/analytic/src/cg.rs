//! Jacobi-preconditioned conjugate gradient for the SPD placement systems.
//!
//! The solver is pool-aware: [`solve_pooled`] runs its reductions through
//! the deterministic chunked helpers of [`ThreadPool`] (fixed
//! [`SUM_CHUNK`](mmp_pool::SUM_CHUNK) partials, ascending fold) and its
//! sparse matrix-vector products through a fixed row partition, so the
//! solution is bitwise identical at every worker count.

use crate::sparse::CsrMatrix;
use mmp_pool::ThreadPool;
use serde::{Deserialize, Serialize};

/// Rows per parallel SpMV work unit. Fixed (never derived from the worker
/// count) so the row partition — and with it every accumulation — is
/// identical no matter how many workers execute it.
const SPMV_CHUNK: usize = 512;

/// `y = A·x` with rows computed in fixed [`SPMV_CHUNK`] blocks distributed
/// over the pool. Bitwise identical to the serial kernel at any worker
/// count: each output row is written exactly once, in the same per-row
/// accumulation order.
fn spmv(pool: &ThreadPool, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(y.len(), a.dim(), "output length mismatch");
    pool.for_each_chunk_mut(y, SPMV_CHUNK, |row0, block| {
        a.multiply_rows_into(x, row0, block);
    });
}

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// `true` when the residual target was met within the iteration budget.
    pub converged: bool,
    /// `true` when the iteration produced non-finite values even after a
    /// restart; `x` then holds the warm start (the last numerically sound
    /// state).
    #[serde(default)]
    pub diverged: bool,
    /// Health restarts performed (0 or 1): a restart re-seeds the Krylov
    /// directions from the warm start after a NaN/Inf was detected.
    #[serde(default)]
    pub restarts: usize,
}

/// Solves `A·x = b` for symmetric positive-definite `A` with
/// Jacobi-preconditioned CG, warm-started from `x0`.
///
/// Rows whose diagonal is zero (fully unconstrained variables) keep their
/// warm-start value — placement systems produce these for nodes with no
/// nets, and pinning them is the sensible physical answer.
///
/// # Numerical health
///
/// The iteration watches for NaN/Inf in the step size and residual. On the
/// first non-finite value the solver *restarts* once: the Krylov state is
/// re-seeded from a sanitised warm start (non-finite entries replaced by
/// zero). If the restarted iteration also blows up, the solve returns with
/// [`CgOutcome::diverged`] set and `x` equal to that sanitised warm start —
/// never NaN — so callers can keep the previous placement.
///
/// # Panics
///
/// Panics when `b.len()` or `x0.len()` differ from the matrix dimension.
pub fn solve(a: &CsrMatrix, b: &[f64], x0: &[f64], tol: f64, max_iters: usize) -> CgOutcome {
    solve_pooled(&ThreadPool::single(), a, b, x0, tol, max_iters)
}

/// [`solve`] with the dot products and sparse matrix-vector products
/// distributed over `pool`. The chunked reduction order and row partition
/// are fixed independently of the worker count, so the outcome is bitwise
/// identical to the single-worker solve.
///
/// # Panics
///
/// Panics when `b.len()` or `x0.len()` differ from the matrix dimension.
pub fn solve_pooled(
    pool: &ThreadPool,
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    tol: f64,
    max_iters: usize,
) -> CgOutcome {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x0.len(), n, "warm start length mismatch");

    let diag = a.diagonal();
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| {
            if d.abs() > 1e-300 && d.is_finite() {
                1.0 / d
            } else {
                0.0
            }
        })
        .collect();
    // The numerically sound fallback state: the warm start with any
    // non-finite entries pinned to zero.
    let safe_x0: Vec<f64> = x0
        .iter()
        .map(|&v| if v.is_finite() { v } else { 0.0 })
        .collect();
    let b_norm = b
        .iter()
        .filter(|v| v.is_finite())
        .map(|v| v * v)
        // mmp-lint: allow(float-reduction) why: sequential sum in source order; feeds the convergence tolerance only
        .sum::<f64>()
        .sqrt()
        .max(1e-30);
    let target = tol * b_norm;

    let mut restarts = 0usize;
    let mut total_iters = 0usize;
    let mut x = safe_x0.clone();
    let mut ax = vec![0.0; n];
    let mut ap = vec![0.0; n];
    'attempt: loop {
        spmv(pool, a, &x, &mut ax);
        let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        // Zero residual components of unconstrained rows so they stay put;
        // also sanitise NaN residual entries coming from a poisoned system.
        for i in 0..n {
            if inv_diag[i] == 0.0 || !r[i].is_finite() {
                r[i] = 0.0;
            }
        }
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz = pool.dot_f64(&r, &z);
        let mut residual = pool.dot_f64(&r, &r).sqrt();
        if !residual.is_finite() || !rz.is_finite() {
            if restarts == 0 {
                restarts = 1;
                x.copy_from_slice(&safe_x0);
                continue 'attempt;
            }
            return CgOutcome {
                x: safe_x0,
                iterations: total_iters,
                residual: f64::INFINITY,
                converged: false,
                diverged: true,
                restarts,
            };
        }
        if residual <= target {
            return CgOutcome {
                x,
                iterations: total_iters,
                residual,
                converged: true,
                diverged: false,
                restarts,
            };
        }

        while total_iters < max_iters {
            spmv(pool, a, &p, &mut ap);
            let pap = pool.dot_f64(&p, &ap);
            if pap.abs() < 1e-300 {
                return CgOutcome {
                    x,
                    iterations: total_iters,
                    residual,
                    converged: residual <= target,
                    diverged: false,
                    restarts,
                };
            }
            let alpha = rz / pap;
            if !alpha.is_finite() {
                if restarts == 0 {
                    restarts = 1;
                    x.copy_from_slice(&safe_x0);
                    continue 'attempt;
                }
                return CgOutcome {
                    x: safe_x0,
                    iterations: total_iters,
                    residual: f64::INFINITY,
                    converged: false,
                    diverged: true,
                    restarts,
                };
            }
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
                if inv_diag[i] == 0.0 {
                    r[i] = 0.0;
                }
            }
            residual = pool.dot_f64(&r, &r).sqrt();
            total_iters += 1;
            if !residual.is_finite() {
                if restarts == 0 {
                    restarts = 1;
                    x.copy_from_slice(&safe_x0);
                    continue 'attempt;
                }
                return CgOutcome {
                    x: safe_x0,
                    iterations: total_iters,
                    residual: f64::INFINITY,
                    converged: false,
                    diverged: true,
                    restarts,
                };
            }
            if residual <= target {
                return CgOutcome {
                    x,
                    iterations: total_iters,
                    residual,
                    converged: true,
                    diverged: false,
                    restarts,
                };
            }
            for i in 0..n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_next = pool.dot_f64(&r, &z);
            let beta = rz_next / rz;
            rz = rz_next;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        return CgOutcome {
            x,
            iterations: total_iters,
            residual,
            converged: false,
            diverged: false,
            restarts,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;
    use proptest::prelude::*;

    fn laplacian_2d(n: usize) -> CsrMatrix {
        // Tridiagonal SPD: 2 on diag (3 at ends via +1 boundary), -1 off.
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 2.0 + if i == 0 || i == n - 1 { 1.0 } else { 0.0 });
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_identity() {
        let mut t = Triplets::new(3);
        for i in 0..3 {
            t.add(i, i, 1.0);
        }
        let out = solve(&t.to_csr(), &[1.0, -2.0, 3.0], &[0.0; 3], 1e-12, 100);
        assert!(out.converged);
        for (got, want) in out.x.iter().zip([1.0, -2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_tridiagonal_system() {
        let a = laplacian_2d(50);
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.multiply(&x_true);
        let out = solve(&a, &b, &vec![0.0; 50], 1e-10, 500);
        assert!(out.converged, "residual {}", out.residual);
        for (got, want) in out.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = laplacian_2d(80);
        let x_true: Vec<f64> = (0..80).map(|i| (i as f64 * 0.11).cos()).collect();
        let b = a.multiply(&x_true);
        let cold = solve(&a, &b, &vec![0.0; 80], 1e-10, 1000);
        let warm = solve(&a, &b, &x_true, 1e-10, 1000);
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.iterations, 0, "exact warm start converges instantly");
    }

    #[test]
    fn unconstrained_rows_keep_warm_start() {
        // Row 1 has zero diagonal: variable 1 must stay at its warm start.
        let mut t = Triplets::new(2);
        t.add(0, 0, 4.0);
        let a = t.to_csr();
        let out = solve(&a, &[8.0, 123.0], &[0.0, 7.0], 1e-12, 50);
        assert!((out.x[0] - 2.0).abs() < 1e-10);
        assert_eq!(out.x[1], 7.0);
    }

    #[test]
    fn zero_rhs_converges_immediately_at_zero() {
        let a = laplacian_2d(5);
        let out = solve(&a, &[0.0; 5], &[0.0; 5], 1e-12, 50);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn nan_rhs_never_poisons_the_solution() {
        let a = laplacian_2d(6);
        let mut b = vec![1.0; 6];
        b[2] = f64::NAN;
        let out = solve(&a, &b, &[0.0; 6], 1e-10, 100);
        assert!(out.x.iter().all(|v| v.is_finite()), "{:?}", out.x);
    }

    #[test]
    fn nan_matrix_diverges_gracefully_to_warm_start() {
        let mut t = Triplets::new(3);
        t.add(0, 0, 2.0);
        t.add(1, 1, f64::NAN);
        t.add(2, 2, 2.0);
        t.add(0, 1, -1.0);
        t.add(1, 0, -1.0);
        let a = t.to_csr();
        let out = solve(&a, &[1.0, 1.0, 1.0], &[0.5, 0.5, 0.5], 1e-10, 100);
        assert!(out.x.iter().all(|v| v.is_finite()), "{:?}", out.x);
        assert!(!out.converged || !out.diverged);
        if out.diverged {
            assert_eq!(out.restarts, 1);
            assert_eq!(out.x, vec![0.5, 0.5, 0.5]);
        }
    }

    #[test]
    fn nan_warm_start_is_sanitised() {
        let a = laplacian_2d(4);
        let b = vec![1.0; 4];
        let out = solve(&a, &b, &[f64::NAN, 0.0, f64::INFINITY, 0.0], 1e-10, 200);
        assert!(out.x.iter().all(|v| v.is_finite()));
        assert!(out.converged);
    }

    #[test]
    fn healthy_solves_report_no_restarts() {
        let a = laplacian_2d(10);
        let b = vec![1.0; 10];
        let out = solve(&a, &b, &[0.0; 10], 1e-10, 200);
        assert!(out.converged);
        assert!(!out.diverged);
        assert_eq!(out.restarts, 0);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let a = laplacian_2d(200);
        let b = vec![1.0; 200];
        let out = solve(&a, &b, &vec![0.0; 200], 1e-14, 3);
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }

    #[test]
    fn pooled_solve_is_bitwise_invariant_in_worker_count() {
        // Big enough that the SpMV row partition (SPMV_CHUNK) and the
        // chunked dot reductions both actually split across workers.
        let n = 1500;
        let a = laplacian_2d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
        let b = a.multiply(&x_true);
        let baseline = solve(&a, &b, &vec![0.0; n], 1e-10, 400);
        for w in [2usize, 4, 8] {
            let pool = ThreadPool::try_new(w).unwrap();
            let out = solve_pooled(&pool, &a, &b, &vec![0.0; n], 1e-10, 400);
            assert_eq!(out.iterations, baseline.iterations, "w={w}");
            assert_eq!(out.residual.to_bits(), baseline.residual.to_bits(), "w={w}");
            let same = out
                .x
                .iter()
                .zip(&baseline.x)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "w={w}: solution bits drifted");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn cg_recovers_random_solutions(
            vals in proptest::collection::vec(-1.0f64..1.0, 12),
        ) {
            let a = laplacian_2d(12);
            let b = a.multiply(&vals);
            let out = solve(&a, &b, &[0.0; 12], 1e-12, 200);
            prop_assert!(out.converged);
            for (got, want) in out.x.iter().zip(&vals) {
                prop_assert!((got - want).abs() < 1e-7);
            }
        }
    }
}
