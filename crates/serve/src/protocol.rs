//! The `mmpd` wire protocol: newline-delimited JSON requests/responses.
//!
//! One request per line, one response line per request, over a plain TCP
//! stream. Requests are maps with an `"op"` discriminator:
//!
//! ```text
//! {"op":"place","id":"j1","design":{"spec":[6,1,8,50,90],"seed":1},
//!  "episodes":8,"explorations":16,"budget_ms":60000}     → blocks, returns the report
//! {"op":"submit", ...}                                   → returns immediately
//! {"op":"result","id":"j1"}                              → stored/pending state
//! {"op":"status"}                                        → daemon counters
//! {"op":"shutdown"}                                      → drain and exit
//! ```
//!
//! Responses are `{"ok":true,...}` or `{"ok":false,"error":{...}}` with a
//! typed [`crate::ServeError`] payload. A completed job's response embeds
//! the flow's [`mmp_core::RunReport`] JSON unchanged, a [`JobSummary`]
//! (attempts, queue wait, recovery events), and the exact macro
//! coordinates with their `f64::to_bits` images so bitwise identity is
//! checkable across processes.
//!
//! This module also pins down the *meaning* of a request:
//! [`JobRequest::placer_config`] is the single place a request maps to a
//! [`PlacerConfig`], so a journaled request replayed after a daemon
//! restart — or re-derived by the fault harness — denotes exactly the
//! same computation.

use crate::error::ServeError;
use mmp_core::{PlacerConfig, RunBudget, SyntheticSpec};
use mmp_netlist::{bookshelf, Design};
use serde::{map_get, Deserialize, Error, Serialize, Value};
use std::time::Duration;

/// Longest accepted request line in bytes (admission control: a client
/// cannot balloon daemon memory with an endless line).
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Longest accepted job id; ids are restricted to `[A-Za-z0-9._-]` (no
/// leading dot) so they are safe as journal directory names.
pub const MAX_ID_BYTES: usize = 64;

/// Renders a raw [`Value`] as a JSON string.
pub(crate) fn render(v: &Value) -> String {
    struct Raw<'a>(&'a Value);
    impl Serialize for Raw<'_> {
        fn serialize(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&Raw(v)).unwrap_or_else(|_| "null".to_owned())
}

/// The request operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Admit a job and block until its final response.
    Place,
    /// Admit a job and return immediately; poll with [`Op::Result`].
    Submit,
    /// Query a job's state / stored final response.
    Result,
    /// Daemon counters and queue depth.
    Status,
    /// Reject new work, drain admitted jobs, exit cleanly.
    Shutdown,
}

impl Op {
    fn parse(s: &str) -> Option<Op> {
        match s {
            "place" => Some(Op::Place),
            "submit" => Some(Op::Submit),
            "result" => Some(Op::Result),
            "status" => Some(Op::Status),
            "shutdown" => Some(Op::Shutdown),
            _ => None,
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Place => "place",
            Op::Submit => "submit",
            Op::Result => "result",
            Op::Status => "status",
            Op::Shutdown => "shutdown",
        }
    }
}

/// What to place: a named suite circuit, an inline synthetic spec, or
/// inline bookshelf text.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSpec {
    /// A circuit from the ICCAD04/industrial suites, optionally scaled.
    Circuit {
        /// Suite circuit name (e.g. `"ibm01"`), case-insensitive.
        name: String,
        /// Proportional shrink factor (1.0 = published size).
        scale: f64,
        /// Generator seed.
        seed: u64,
    },
    /// An inline synthetic spec: `[movable, preplaced, io, cells, nets]`.
    Synthetic {
        /// The five counts, in [`SyntheticSpec::small`] order.
        counts: [usize; 5],
        /// Whether nodes carry hierarchy paths.
        hierarchy: bool,
        /// Generator seed.
        seed: u64,
    },
    /// Inline bookshelf text (bounded by [`MAX_REQUEST_BYTES`]).
    Bookshelf {
        /// The file contents.
        text: String,
    },
}

impl DesignSpec {
    fn bad(detail: impl Into<String>) -> ServeError {
        ServeError::BadRequest {
            detail: detail.into(),
        }
    }

    fn from_value(v: &Value) -> Result<Self, ServeError> {
        let seed = match map_get(v, "seed") {
            None | Some(Value::Null) => 42,
            Some(s) => s
                .as_u64()
                .ok_or_else(|| Self::bad("design.seed must be a non-negative integer"))?,
        };
        if let Some(name) = map_get(v, "circuit") {
            let Value::Str(name) = name else {
                return Err(Self::bad("design.circuit must be a string"));
            };
            let scale = match map_get(v, "scale") {
                None | Some(Value::Null) => 1.0,
                Some(s) => s
                    .as_f64()
                    .filter(|f| f.is_finite() && *f > 0.0 && *f <= 1.0)
                    .ok_or_else(|| Self::bad("design.scale must be in (0, 1]"))?,
            };
            return Ok(DesignSpec::Circuit {
                name: name.clone(),
                scale,
                seed,
            });
        }
        if let Some(spec) = map_get(v, "spec") {
            let Value::Seq(items) = spec else {
                return Err(Self::bad("design.spec must be [M,P,IO,CELLS,NETS]"));
            };
            if items.len() != 5 {
                return Err(Self::bad("design.spec must be [M,P,IO,CELLS,NETS]"));
            }
            let mut counts = [0usize; 5];
            for (slot, item) in counts.iter_mut().zip(items) {
                *slot = item
                    .as_u64()
                    .and_then(|u| usize::try_from(u).ok())
                    .ok_or_else(|| Self::bad("design.spec entries must be integers"))?;
            }
            let hierarchy = matches!(map_get(v, "hierarchy"), Some(Value::Bool(true)));
            return Ok(DesignSpec::Synthetic {
                counts,
                hierarchy,
                seed,
            });
        }
        if let Some(text) = map_get(v, "bookshelf") {
            let Value::Str(text) = text else {
                return Err(Self::bad("design.bookshelf must be a string"));
            };
            return Ok(DesignSpec::Bookshelf { text: text.clone() });
        }
        Err(Self::bad("design needs one of: circuit, spec, bookshelf"))
    }

    fn to_value(&self) -> Value {
        match self {
            DesignSpec::Circuit { name, scale, seed } => Value::Map(vec![
                ("circuit".to_owned(), Value::Str(name.clone())),
                ("scale".to_owned(), Value::F64(*scale)),
                ("seed".to_owned(), Value::U64(*seed)),
            ]),
            DesignSpec::Synthetic {
                counts,
                hierarchy,
                seed,
            } => Value::Map(vec![
                (
                    "spec".to_owned(),
                    Value::Seq(counts.iter().map(|&c| Value::U64(c as u64)).collect()),
                ),
                ("hierarchy".to_owned(), Value::Bool(*hierarchy)),
                ("seed".to_owned(), Value::U64(*seed)),
            ]),
            DesignSpec::Bookshelf { text } => {
                Value::Map(vec![("bookshelf".to_owned(), Value::Str(text.clone()))])
            }
        }
    }

    /// The synthetic node count this spec declares, before generation —
    /// `None` for inline bookshelf (bounded by the request-line cap
    /// instead). Admission control refuses oversized declarations without
    /// materializing them.
    pub fn declared_nodes(&self) -> Option<usize> {
        match self {
            DesignSpec::Circuit { name, scale, seed } => {
                let spec = Self::find_suite(name)?;
                let spec = Self::scaled_spec(spec, *scale, *seed);
                Some(spec.movable_macros + spec.preplaced_macros + spec.io_pads + spec.std_cells)
            }
            // The first four entries are nodes; the fifth is nets.
            DesignSpec::Synthetic {
                counts: [movable, preplaced, io, cells, _nets],
                ..
            } => Some(movable + preplaced + io + cells),
            DesignSpec::Bookshelf { .. } => None,
        }
    }

    fn find_suite(name: &str) -> Option<SyntheticSpec> {
        mmp_core::iccad04_suite()
            .into_iter()
            .chain(mmp_core::industrial_suite())
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    fn scaled_spec(mut spec: SyntheticSpec, scale: f64, seed: u64) -> SyntheticSpec {
        spec.seed = seed;
        if scale < 1.0 {
            spec = spec.scaled(scale);
        }
        spec
    }

    /// Builds the design this spec denotes. Deterministic: the same spec
    /// always yields the same design, which is what makes journal replay
    /// after a daemon restart resume bitwise-identically.
    pub fn materialize(&self) -> Result<Design, ServeError> {
        match self {
            DesignSpec::Circuit { name, scale, seed } => {
                let spec = Self::find_suite(name)
                    .ok_or_else(|| Self::bad(format!("unknown circuit '{name}'")))?;
                Ok(Self::scaled_spec(spec, *scale, *seed).generate())
            }
            DesignSpec::Synthetic {
                counts: [movable, preplaced, io, cells, nets],
                hierarchy,
                seed,
            } => Ok(SyntheticSpec::small(
                "request", *movable, *preplaced, *io, *cells, *nets, *hierarchy, *seed,
            )
            .generate()),
            DesignSpec::Bookshelf { text } => bookshelf::read("request", text.as_bytes())
                .map(|(design, _)| design)
                .map_err(|e| Self::bad(format!("bookshelf: {e}"))),
        }
    }
}

/// Per-job defaults the daemon applies where a request is silent — the
/// serving twin of the CLI's `place` flag defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobDefaults {
    /// Grid resolution ζ ([`PlacerConfig::bench`] base).
    pub zeta: usize,
    /// RL episodes (`None` keeps the bench default).
    pub episodes: Option<usize>,
    /// MCTS explorations (`None` keeps the bench default).
    pub explorations: Option<usize>,
    /// Wall-clock budget applied when a request carries none.
    pub budget: Option<Duration>,
}

impl Default for JobDefaults {
    fn default() -> Self {
        JobDefaults {
            zeta: 8,
            episodes: None,
            explorations: None,
            budget: None,
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The operation.
    pub op: Op,
    /// Client-chosen job id ([`MAX_ID_BYTES`], `[A-Za-z0-9._-]`); the
    /// daemon assigns `job-<seq>` when absent.
    pub id: Option<String>,
    /// What to place (required for `place`/`submit`).
    pub design: Option<DesignSpec>,
    /// Grid resolution ζ override.
    pub zeta: Option<usize>,
    /// RL episode override.
    pub episodes: Option<usize>,
    /// Optimizer chunk length override (checkpoint granularity).
    pub update_every: Option<usize>,
    /// MCTS exploration override.
    pub explorations: Option<usize>,
    /// Ensemble run override.
    pub ensemble: Option<usize>,
    /// Training seed.
    pub seed: Option<u64>,
    /// Total wall-clock budget in milliseconds.
    pub budget_ms: Option<u64>,
    /// Fault-injection knob (test harness only): the daemon injects a
    /// transient checkpoint failure into the first N attempts, so retry
    /// and quarantine paths are exactly reproducible.
    pub fault_fail_attempts: Option<usize>,
}

fn get_usize(v: &Value, key: &str) -> Result<Option<usize>, ServeError> {
    match map_get(v, key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .and_then(|u| usize::try_from(u).ok())
            .map(Some)
            .ok_or_else(|| ServeError::BadRequest {
                detail: format!("{key} must be a non-negative integer"),
            }),
    }
}

fn get_u64(v: &Value, key: &str) -> Result<Option<u64>, ServeError> {
    match map_get(v, key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| ServeError::BadRequest {
            detail: format!("{key} must be a non-negative integer"),
        }),
    }
}

/// `true` when `id` is usable as a journal directory name.
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_BYTES
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl JobRequest {
    /// Parses one request line. Every failure is a typed
    /// [`ServeError::BadRequest`]; nothing here panics on adversarial
    /// input.
    pub fn parse(line: &str) -> Result<Self, ServeError> {
        if line.len() > MAX_REQUEST_BYTES {
            return Err(ServeError::BadRequest {
                detail: format!(
                    "request line of {} bytes exceeds the {} byte cap",
                    line.len(),
                    MAX_REQUEST_BYTES
                ),
            });
        }
        let v = serde_json::parse_value(line.trim()).map_err(|e| ServeError::BadRequest {
            detail: format!("not valid JSON: {e}"),
        })?;
        if !matches!(v, Value::Map(_)) {
            return Err(ServeError::BadRequest {
                detail: "request must be a JSON object".to_owned(),
            });
        }
        let op = match map_get(&v, "op") {
            Some(Value::Str(s)) => Op::parse(s).ok_or_else(|| ServeError::BadRequest {
                detail: format!("unknown op '{s}'"),
            })?,
            _ => {
                return Err(ServeError::BadRequest {
                    detail: "request needs a string 'op' field".to_owned(),
                })
            }
        };
        let id = match map_get(&v, "id") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => {
                if !valid_id(s) {
                    return Err(ServeError::BadRequest {
                        detail: format!(
                            "invalid id '{s}': 1..={MAX_ID_BYTES} chars of [A-Za-z0-9._-], \
                             no leading dot",
                            s = s.escape_default()
                        ),
                    });
                }
                Some(s.clone())
            }
            Some(_) => {
                return Err(ServeError::BadRequest {
                    detail: "id must be a string".to_owned(),
                })
            }
        };
        let design = match map_get(&v, "design") {
            None | Some(Value::Null) => None,
            Some(d) => Some(DesignSpec::from_value(d)?),
        };
        let req = JobRequest {
            op,
            id,
            design,
            zeta: get_usize(&v, "zeta")?,
            episodes: get_usize(&v, "episodes")?,
            update_every: get_usize(&v, "update_every")?,
            explorations: get_usize(&v, "explorations")?,
            ensemble: get_usize(&v, "ensemble")?,
            seed: get_u64(&v, "seed")?,
            budget_ms: get_u64(&v, "budget_ms")?,
            fault_fail_attempts: get_usize(&v, "fault_fail_attempts")?,
        };
        match req.op {
            Op::Place | Op::Submit if req.design.is_none() => Err(ServeError::BadRequest {
                detail: format!("op '{}' needs a design", req.op.name()),
            }),
            Op::Result if req.id.is_none() => Err(ServeError::BadRequest {
                detail: "op 'result' needs an id".to_owned(),
            }),
            _ => Ok(req),
        }
    }

    /// Canonical JSON for the journal: parsing it back yields an equal
    /// request, so a replayed job denotes the same computation.
    pub fn to_value(&self) -> Value {
        let mut m = vec![("op".to_owned(), Value::Str(self.op.name().to_owned()))];
        let mut push_usize = |key: &str, v: &Option<usize>| {
            if let Some(x) = v {
                m.push((key.to_owned(), Value::U64(*x as u64)));
            }
        };
        push_usize("zeta", &self.zeta);
        push_usize("episodes", &self.episodes);
        push_usize("update_every", &self.update_every);
        push_usize("explorations", &self.explorations);
        push_usize("ensemble", &self.ensemble);
        push_usize("fault_fail_attempts", &self.fault_fail_attempts);
        if let Some(id) = &self.id {
            m.push(("id".to_owned(), Value::Str(id.clone())));
        }
        if let Some(d) = &self.design {
            m.push(("design".to_owned(), d.to_value()));
        }
        if let Some(s) = self.seed {
            m.push(("seed".to_owned(), Value::U64(s)));
        }
        if let Some(b) = self.budget_ms {
            m.push(("budget_ms".to_owned(), Value::U64(b)));
        }
        Value::Map(m)
    }

    /// The [`PlacerConfig`] this request denotes under `defaults` — the
    /// single source of truth for request → configuration, shared by the
    /// live admission path, journal replay after a restart, and the
    /// fault harness's out-of-process kill simulation. The mapping
    /// mirrors the CLI: [`PlacerConfig::bench`] at the effective ζ, with
    /// per-field overrides.
    pub fn placer_config(&self, defaults: &JobDefaults) -> PlacerConfig {
        let zeta = self.zeta.unwrap_or(defaults.zeta);
        let mut cfg = PlacerConfig::bench(zeta);
        if let Some(e) = self.episodes.or(defaults.episodes) {
            cfg.trainer.episodes = e;
        }
        if let Some(u) = self.update_every {
            cfg.trainer.update_every = u.max(1);
        }
        if let Some(x) = self.explorations.or(defaults.explorations) {
            cfg.mcts.explorations = x;
        }
        cfg.trainer.seed = self.seed.unwrap_or(0);
        cfg.ensemble_runs = self.ensemble.unwrap_or(1);
        let budget = self
            .budget_ms
            .map(Duration::from_millis)
            .or(defaults.budget);
        if let Some(b) = budget {
            cfg.budget = RunBudget::with_total(b);
        }
        cfg
    }
}

/// What the daemon did for one job, attached to its final response next
/// to the [`mmp_core::RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// Wall-clock the job spent queued before its first attempt, in
    /// milliseconds (telemetry; excluded from determinism comparisons).
    pub queue_wait_ms: f64,
    /// `true` when the job was replayed from the journal after a daemon
    /// restart.
    pub recovered: bool,
    /// The checkpoint resumes the final attempt took (e.g. `"train"`,
    /// `"train-done"`), straight from the flow's `CheckpointSummary`.
    pub recovery_events: Vec<String>,
    /// `true` when the daemon seeded the job's checkpoint directory from
    /// its trained-policy cache (same design+config fingerprint).
    pub policy_reused: bool,
}

impl Serialize for JobSummary {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("attempts".to_owned(), Value::U64(self.attempts as u64)),
            ("queue_wait_ms".to_owned(), Value::F64(self.queue_wait_ms)),
            ("recovered".to_owned(), Value::Bool(self.recovered)),
            (
                "recovery_events".to_owned(),
                Value::Seq(
                    self.recovery_events
                        .iter()
                        .map(|s| Value::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("policy_reused".to_owned(), Value::Bool(self.policy_reused)),
        ])
    }
}

impl Deserialize for JobSummary {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let attempts = map_get(v, "attempts")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("attempts"))?;
        let queue_wait_ms = map_get(v, "queue_wait_ms")
            .and_then(Value::as_f64)
            .ok_or_else(|| Error::missing_field("queue_wait_ms"))?;
        let recovered = matches!(map_get(v, "recovered"), Some(Value::Bool(true)));
        let policy_reused = matches!(map_get(v, "policy_reused"), Some(Value::Bool(true)));
        let recovery_events = match map_get(v, "recovery_events") {
            Some(Value::Seq(items)) => items
                .iter()
                .map(|i| match i {
                    Value::Str(s) => Ok(s.clone()),
                    _ => Err(Error::custom("recovery_events entries must be strings")),
                })
                .collect::<Result<_, _>>()?,
            _ => Vec::new(),
        };
        Ok(JobSummary {
            attempts: attempts as usize,
            queue_wait_ms,
            recovered,
            recovery_events,
            policy_reused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_round_trip_canonically() {
        let line = r#"{"op":"submit","id":"j1","design":{"spec":[6,1,8,50,90],"hierarchy":true,"seed":1},"episodes":8,"seed":3,"budget_ms":5000}"#;
        let req = JobRequest::parse(line).unwrap();
        assert_eq!(req.op, Op::Submit);
        assert_eq!(req.id.as_deref(), Some("j1"));
        assert_eq!(req.episodes, Some(8));
        assert_eq!(req.seed, Some(3));
        assert_eq!(req.budget_ms, Some(5000));
        let canon = render(&req.to_value());
        let back = JobRequest::parse(&canon).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn malformed_lines_are_typed_bad_requests() {
        for line in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"place"}"#,
            r#"{"op":"result"}"#,
            r#"{"op":"place","design":{}}"#,
            r#"{"op":"place","id":"../evil","design":{"spec":[1,0,2,4,6]}}"#,
            r#"{"op":"place","id":".hidden","design":{"spec":[1,0,2,4,6]}}"#,
            r#"{"op":"place","design":{"spec":[1,2,3]}}"#,
            r#"{"op":"place","design":{"circuit":"ibm01","scale":7.0}}"#,
            r#"{"op":"place","design":{"spec":[1,0,2,4,6]},"episodes":-3}"#,
        ] {
            let err = JobRequest::parse(line).unwrap_err();
            assert_eq!(err.kind(), "bad-request", "line {line:?} -> {err}");
        }
    }

    #[test]
    fn oversized_lines_are_rejected_without_parsing() {
        let line = format!(
            r#"{{"op":"place","design":{{"bookshelf":"{}"}}}}"#,
            "x".repeat(MAX_REQUEST_BYTES)
        );
        let err = JobRequest::parse(&line).unwrap_err();
        assert!(err.to_string().contains("byte cap"), "{err}");
    }

    #[test]
    fn design_specs_materialize_deterministically() {
        let spec = DesignSpec::Synthetic {
            counts: [5, 0, 8, 40, 70],
            hierarchy: false,
            seed: 2,
        };
        let a = spec.materialize().unwrap();
        let b = spec.materialize().unwrap();
        assert_eq!(a, b);
        assert_eq!(spec.declared_nodes(), Some(5 + 8 + 40));

        let text = {
            let mut buf = Vec::new();
            bookshelf::write(&a, None, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let via_bookshelf = DesignSpec::Bookshelf { text }.materialize().unwrap();
        assert_eq!(via_bookshelf.macros().len(), a.macros().len());

        let unknown = DesignSpec::Circuit {
            name: "nope99".to_owned(),
            scale: 1.0,
            seed: 1,
        };
        assert_eq!(unknown.materialize().unwrap_err().kind(), "bad-request");
        assert_eq!(unknown.declared_nodes(), None);

        let circuit = DesignSpec::Circuit {
            name: "ibm01".to_owned(),
            scale: 0.01,
            seed: 7,
        };
        let n = circuit.declared_nodes().unwrap();
        assert!(n > 0, "scaled suite circuit declares its node count");
        assert_eq!(
            circuit.materialize().unwrap(),
            circuit.materialize().unwrap()
        );
    }

    #[test]
    fn placer_config_mapping_is_stable_and_overridable() {
        let req = JobRequest::parse(
            r#"{"op":"place","design":{"spec":[5,0,8,40,70]},"zeta":4,"episodes":6,"update_every":2,"explorations":10,"seed":9,"budget_ms":1234}"#,
        )
        .unwrap();
        let cfg = req.placer_config(&JobDefaults::default());
        assert_eq!(cfg.trainer.zeta, 4);
        assert_eq!(cfg.trainer.episodes, 6);
        assert_eq!(cfg.trainer.update_every, 2);
        assert_eq!(cfg.mcts.explorations, 10);
        assert_eq!(cfg.trainer.seed, 9);
        assert_eq!(cfg.budget.total, Some(Duration::from_millis(1234)));

        // Defaults fill the silent fields.
        let quiet = JobRequest::parse(r#"{"op":"place","design":{"spec":[5,0,8,40,70]}}"#).unwrap();
        let defaults = JobDefaults {
            zeta: 4,
            episodes: Some(3),
            explorations: Some(5),
            budget: Some(Duration::from_secs(60)),
        };
        let cfg = quiet.placer_config(&defaults);
        assert_eq!(cfg.trainer.zeta, 4);
        assert_eq!(cfg.trainer.episodes, 3);
        assert_eq!(cfg.mcts.explorations, 5);
        assert_eq!(cfg.budget.total, Some(Duration::from_secs(60)));

        // Same request, same config: the journal replay contract.
        assert_eq!(
            quiet.placer_config(&defaults),
            quiet.placer_config(&defaults)
        );
    }

    #[test]
    fn job_summary_round_trips() {
        let s = JobSummary {
            attempts: 2,
            queue_wait_ms: 1.5,
            recovered: true,
            recovery_events: vec!["train".to_owned()],
            policy_reused: false,
        };
        let back = JobSummary::deserialize(&s.serialize()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn id_validation_blocks_path_tricks() {
        assert!(valid_id("job-1"));
        assert!(valid_id("A.b_c-9"));
        assert!(!valid_id(""));
        assert!(!valid_id(".."));
        assert!(!valid_id("a/b"));
        assert!(!valid_id("a\\b"));
        assert!(!valid_id(&"x".repeat(MAX_ID_BYTES + 1)));
    }
}
