//! End-to-end CLI checks for the observability flags: `mmp place
//! --trace FILE --report-json FILE` must produce a parseable JSONL
//! trace and a round-trippable [`mmp_core::RunReport`].

use mmp_core::RunReport;
use std::path::PathBuf;
use std::process::Command;

fn mmp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmp"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mmp_cli_{}_{name}", std::process::id()))
}

/// Generates a small synthetic design into `path` via the CLI itself.
fn generate(path: &PathBuf) {
    let out = mmp()
        .args(["generate", "--spec", "5,0,8,40,70", "--seed", "3", "--out"])
        .arg(path)
        .output()
        .expect("spawn mmp generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn place_writes_report_and_trace() {
    let design = tmp("design.bks");
    let report = tmp("run.report.json");
    let trace = tmp("trace.jsonl");
    generate(&design);

    let out = mmp()
        .args([
            "place",
            "--zeta",
            "4",
            "--episodes",
            "3",
            "--explorations",
            "4",
        ])
        .arg("--in")
        .arg(&design)
        .arg("--report-json")
        .arg(&report)
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("spawn mmp place");
    assert!(
        out.status.success(),
        "place failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The report parses back into the typed RunReport and covers the run.
    let json = std::fs::read_to_string(&report).expect("report file");
    let parsed = RunReport::from_json(&json).expect("report parses");
    // Bookshelf designs are named after the input file.
    assert!(parsed.circuit.ends_with("design.bks"), "{}", parsed.circuit);
    assert!(parsed.hpwl > 0.0);
    assert!(parsed.timings.total_ms > 0.0);
    assert_eq!(parsed.training.episodes, 3);
    assert!(parsed.counters.contains_key("rl.episodes"));
    assert!(parsed.span_ms.contains_key("stage.search"));

    // The trace is one JSON object per line with the fixed key order the
    // sink renders (`t_us` first).
    let text = std::fs::read_to_string(&trace).expect("trace file");
    assert!(!text.is_empty());
    for line in text.lines() {
        assert!(
            line.starts_with("{\"t_us\":") && line.ends_with('}'),
            "malformed trace line: {line}"
        );
    }

    for p in [&design, &report, &trace] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn report_without_trace_still_collects_metrics() {
    let design = tmp("metrics_only.bks");
    let report = tmp("metrics_only.report.json");
    generate(&design);

    let out = mmp()
        .args([
            "place",
            "--zeta",
            "4",
            "--episodes",
            "3",
            "--explorations",
            "4",
        ])
        .arg("--in")
        .arg(&design)
        .arg("--report-json")
        .arg(&report)
        .output()
        .expect("spawn mmp place");
    assert!(out.status.success());

    let parsed = RunReport::from_json(&std::fs::read_to_string(&report).expect("report file"))
        .expect("report parses");
    // Metrics-only mode: counters populate even with no trace sink.
    assert!(parsed.counters.contains_key("analytic.cg_iters"));
    assert!(parsed.gauges.contains_key("flow.hpwl"));

    for p in [&design, &report] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn bare_trace_flag_is_a_usage_error() {
    let design = tmp("bad_trace.bks");
    generate(&design);

    // `--trace` immediately followed by another flag parses as a bare
    // toggle, which the CLI rejects (it wants `stderr` or a path).
    let out = mmp()
        .args(["place", "--in"])
        .arg(&design)
        .args(["--trace", "--episodes", "3"])
        .output()
        .expect("spawn mmp place");
    assert_eq!(out.status.code(), Some(2), "expected usage exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--trace wants stderr or a file path"));

    std::fs::remove_file(&design).ok();
}
