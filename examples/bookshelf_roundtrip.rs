//! Bookshelf I/O: export a synthetic design + placement to the bookshelf
//! subset, read it back, and verify the HPWL survives the round trip.
//!
//! ```sh
//! cargo run --release -p mmp-examples --bin bookshelf_roundtrip
//! ```

use mmp_core::{MacroPlacer, PlacerConfig, SyntheticSpec};
use mmp_netlist::bookshelf;

// mmp-core re-exports mmp_netlist types; the bookshelf module is reached
// through the netlist crate itself.
use mmp_core::DesignStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = SyntheticSpec::small("rt", 8, 1, 12, 120, 200, true, 7).generate();
    println!("generated: {}", DesignStats::of(&design));

    // Place it.
    let mut cfg = PlacerConfig::fast(8);
    cfg.trainer.episodes = 8;
    cfg.mcts.explorations = 8;
    let result = MacroPlacer::new(cfg).place(&design)?;
    println!("placed, HPWL = {:.1}", result.hpwl);

    // Serialize design + placement.
    let mut file = Vec::new();
    bookshelf::write(&design, Some(&result.placement), &mut file)?;
    println!("bookshelf stream: {} bytes", file.len());

    // Read back and compare.
    let (design2, placement2) = bookshelf::read("rt", file.as_slice())?;
    let placement2 = placement2.expect("placement section present");
    let hpwl2 = placement2.hpwl(&design2);
    println!("re-read HPWL = {hpwl2:.1}");
    assert!(
        (hpwl2 - result.hpwl).abs() < 1e-6,
        "round trip must preserve HPWL"
    );
    println!("round trip OK");
    Ok(())
}
