//! Shared plumbing for the experiment harness.
//!
//! Every table and figure of the paper's evaluation has a binary here
//! (`cargo run --release -p mmp-bench --bin <exp>`) that regenerates it on
//! the synthetic benchmark suites, plus a Criterion bench
//! (`cargo bench -p mmp-bench`) timing the experiment's hot kernel.
//!
//! Two environment variables control cost:
//!
//! * `MMP_SCALE` — circuit scale factor in `(0, 1]` (default `0.002` for
//!   the ICCAD04-like suite, `0.0005` for the industrial-like one whose
//!   originals carry up to 1.1 M cells). `1.0` reproduces published sizes.
//! * `MMP_BUDGET` — multiplier on training episodes / search explorations
//!   (default `1.0`).

use mmp_core::{MacroPlacer, PlacementResult, PlacerConfig, SyntheticSpec};

/// Reads a positive float env var with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default)
}

/// The harness scale factor for the ICCAD04-like suite.
pub fn iccad_scale() -> f64 {
    env_f64("MMP_SCALE", 0.002).min(1.0)
}

/// The harness scale factor for the industrial-like suite.
pub fn industrial_scale() -> f64 {
    env_f64("MMP_SCALE", 0.0005).min(1.0)
}

/// The budget multiplier.
pub fn budget() -> f64 {
    env_f64("MMP_BUDGET", 1.0)
}

/// Applies the budget multiplier to a count with a sensible floor.
pub fn scaled_count(base: usize, floor: usize) -> usize {
    ((base as f64 * budget()) as usize).max(floor)
}

/// The harness configuration for "Ours": the paper's flow at bench scale.
pub fn ours_config(zeta: usize) -> PlacerConfig {
    let mut cfg = PlacerConfig::bench(zeta);
    cfg.trainer.episodes = scaled_count(cfg.trainer.episodes, 20);
    cfg.mcts.explorations = scaled_count(cfg.mcts.explorations, 16);
    cfg
}

/// Runs "Ours" on a spec and returns the result.
///
/// # Panics
///
/// Panics when the flow rejects the design (the synthetic suites are
/// always feasible).
pub fn run_ours(spec: &SyntheticSpec, zeta: usize) -> PlacementResult {
    let design = spec.generate();
    MacroPlacer::new(ours_config(zeta))
        .place(&design)
        .expect("synthetic suites are feasible")
}

/// Pretty-prints one experiment header.
pub fn header(title: &str, detail: &str) {
    println!("================================================================");
    println!("{title}");
    println!("{detail}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_f64_parses_and_defaults() {
        std::env::remove_var("MMP_TEST_VAR");
        assert_eq!(env_f64("MMP_TEST_VAR", 0.5), 0.5);
        std::env::set_var("MMP_TEST_VAR", "0.25");
        assert_eq!(env_f64("MMP_TEST_VAR", 0.5), 0.25);
        std::env::set_var("MMP_TEST_VAR", "-1");
        assert_eq!(env_f64("MMP_TEST_VAR", 0.5), 0.5);
        std::env::set_var("MMP_TEST_VAR", "junk");
        assert_eq!(env_f64("MMP_TEST_VAR", 0.5), 0.5);
        std::env::remove_var("MMP_TEST_VAR");
    }

    #[test]
    fn scaled_count_has_floor() {
        assert!(scaled_count(100, 10) >= 10);
    }
}
