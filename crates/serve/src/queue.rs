//! A bounded MPMC job queue (mutex + condvar, std only).
//!
//! Admission control starts here: [`JobQueue::try_push`] **fails fast**
//! when the queue is at capacity instead of blocking the acceptor thread
//! or growing without bound, which is what turns overload into a typed
//! [`crate::ServeError::QueueFull`] rejection. Recovery replay uses
//! [`JobQueue::force_push`] — journaled jobs were already admitted once,
//! so a restart must never drop them even if the configured capacity
//! shrank in between.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO handed between the acceptor and the worker pool.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` queued (not yet popped) items.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(g) => g.items.len(),
            Err(p) => p.into_inner().items.len(),
        }
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A poisoned queue mutex means a worker panicked while holding it;
        // the queue state itself (a VecDeque) is still coherent, and
        // refusing to serve would turn one job's panic into daemon loss.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Enqueues `item` unless the queue is full or closed; on failure the
    /// item comes straight back so the caller can reject it in a typed
    /// way.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.lock();
        if g.closed || g.items.len() >= self.capacity {
            return Err(item);
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues `item` regardless of capacity (still fails when closed).
    /// Reserved for journal replay on restart: those jobs were admitted
    /// by a previous daemon life and must not be lost to a capacity race.
    pub fn force_push(&self, item: T) -> Result<(), T> {
        let mut g = self.lock();
        if g.closed {
            return Err(item);
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed; `None`
    /// means closed-and-drained, i.e. the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = match self.ready.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked workers wake to observe the close.
    pub fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_fifo_with_typed_overflow() {
        let q = JobQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "over capacity comes back");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "slot freed by pop");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn force_push_ignores_capacity_but_not_close() {
        let q = JobQueue::new(1);
        assert!(q.try_push(1).is_ok());
        assert!(q.force_push(2).is_ok(), "replay bypasses capacity");
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.force_push(3), Err(3), "closed queue takes nothing");
        assert_eq!(q.pop(), Some(1), "pending items still drain");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // The worker may or may not have reached `wait` yet; close must
        // cover both interleavings.
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn many_producers_one_consumer_sees_everything() {
        let q = Arc::new(JobQueue::<u32>::new(64));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        while q.try_push(p * 100 + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        q.close();
        let mut got = Vec::new();
        while let Some(x) = q.pop() {
            got.push(x);
        }
        assert_eq!(got.len(), 32);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 32, "no duplicates, no losses");
    }
}
