//! Event sinks: where structured records go.
//!
//! Three implementations cover the workspace's needs:
//!
//! * [`StderrSink`] — human-readable one-line-per-event on stderr (the
//!   CLI's `--trace stderr`);
//! * [`JsonlSink`] — one JSON object per line in a file (the CLI's
//!   `--trace <path>`; machine-readable, replayable);
//! * [`MemorySink`] — captures rendered JSONL lines in memory for tests.
//!
//! The JSON rendering is hand-rolled (string escaping + `{:?}` float
//! round-tripping) so the crate stays dependency-free; the schema is
//! documented on [`JsonlSink`].

use crate::{Field, FieldValue};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Destination for structured event records.
///
/// `t_us` is microseconds since the owning handle was created. Sinks must
/// be thread-safe: ensemble workers share one handle.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, t_us: u64, scope: &str, name: &str, fields: &[Field]);

    /// Flushes buffered output (best effort).
    fn flush(&self) {}
}

fn push_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(u) => out.push_str(&u.to_string()),
        FieldValue::I64(i) => out.push_str(&i.to_string()),
        FieldValue::F64(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => push_json_escaped(out, s),
    }
}

/// Renders one record as a single JSONL line (no trailing newline).
pub fn render_jsonl(t_us: u64, scope: &str, name: &str, fields: &[Field]) -> String {
    let mut out = String::with_capacity(64 + 24 * fields.len());
    out.push_str("{\"t_us\":");
    out.push_str(&t_us.to_string());
    out.push_str(",\"scope\":");
    push_json_escaped(&mut out, scope);
    out.push_str(",\"name\":");
    push_json_escaped(&mut out, name);
    out.push_str(",\"fields\":{");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_escaped(&mut out, f.key);
        out.push(':');
        push_json_value(&mut out, &f.value);
    }
    out.push_str("}}");
    out
}

fn render_pretty(t_us: u64, scope: &str, name: &str, fields: &[Field]) -> String {
    let mut out = format!("[{:>10.3}ms] {scope}.{name}", t_us as f64 / 1000.0);
    for f in fields {
        out.push(' ');
        out.push_str(f.key);
        out.push('=');
        match &f.value {
            FieldValue::U64(u) => out.push_str(&u.to_string()),
            FieldValue::I64(i) => out.push_str(&i.to_string()),
            FieldValue::F64(v) => out.push_str(&format!("{v:.4}")),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::Str(s) => out.push_str(s),
        }
    }
    out
}

/// Human-readable tracing on stderr.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl Sink for StderrSink {
    // why: the whole workspace forbids `eprintln!` in library code, and the
    // stderr sink is the one sanctioned exit point.
    #[allow(clippy::print_stderr)]
    fn record(&self, t_us: u64, scope: &str, name: &str, fields: &[Field]) {
        eprintln!("{}", render_pretty(t_us, scope, name, fields));
    }
}

/// JSONL file tracing: one event per line.
///
/// # Schema
///
/// ```json
/// {"t_us":1234,"scope":"legal.global_pass","name":"round",
///  "fields":{"round":2,"overlap":0.125,"oor":false}}
/// ```
///
/// * `t_us` — microseconds since the `Obs` handle was created;
/// * `scope` — dotted component path (`analytic.spread`, `stage.train`);
/// * `name` — event name within the scope (`round`, `close`, `episode`);
/// * `fields` — flat object of typed key/values; non-finite floats render
///   as `null`.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns a sink writing to it.
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` failure.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn with_writer(&self, f: impl FnOnce(&mut BufWriter<File>)) {
        // A poisoned lock means a sibling thread panicked mid-write; keep
        // tracing rather than compounding the failure.
        let mut guard = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard);
    }
}

impl Sink for JsonlSink {
    fn record(&self, t_us: u64, scope: &str, name: &str, fields: &[Field]) {
        let line = render_jsonl(t_us, scope, name, fields);
        self.with_writer(|w| {
            // Tracing is best-effort: a full disk must not abort placement.
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        });
    }

    fn flush(&self) {
        self.with_writer(|w| {
            let _ = w.flush();
        });
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Test sink capturing rendered JSONL lines in memory.
///
/// Clones share the same buffer, so a test can keep one handle and give
/// the other to [`crate::Obs::new`].
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// A fresh shared sink.
    pub fn shared() -> Self {
        MemorySink::default()
    }

    /// Copies of every rendered record, in arrival order.
    pub fn records(&self) -> Vec<String> {
        match self.records.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        match self.records.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, t_us: u64, scope: &str, name: &str, fields: &[Field]) {
        let line = render_jsonl(t_us, scope, name, fields);
        match self.records.lock() {
            Ok(mut g) => g.push(line),
            Err(poisoned) => poisoned.into_inner().push(line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field;

    #[test]
    fn jsonl_rendering_escapes_and_types() {
        let line = render_jsonl(
            42,
            "a.b",
            "ev",
            &[
                field("u", 7u64),
                field("i", -3i64),
                field("f", 0.5),
                field("nan", f64::NAN),
                field("b", false),
                field("s", "quote\" tab\t"),
            ],
        );
        assert_eq!(
            line,
            "{\"t_us\":42,\"scope\":\"a.b\",\"name\":\"ev\",\"fields\":{\
             \"u\":7,\"i\":-3,\"f\":0.5,\"nan\":null,\"b\":false,\
             \"s\":\"quote\\\" tab\\t\"}}"
        );
    }

    #[test]
    fn pretty_rendering_is_one_line() {
        let s = render_pretty(1500, "mcts", "commit", &[field("group", 3u64)]);
        assert!(s.contains("mcts.commit"));
        assert!(s.contains("group=3"));
        assert!(!s.contains('\n'));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mmp_obs_sink_test_{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(1, "s", "a", &[field("k", 1u64)]);
            sink.record(2, "s", "b", &[]);
        } // drop flushes
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t_us\":1"));
        assert!(lines[1].contains("\"name\":\"b\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_sink_shares_records_across_clones() {
        let a = MemorySink::shared();
        let b = a.clone();
        assert!(a.is_empty());
        b.record(0, "s", "e", &[]);
        assert_eq!(a.len(), 1);
        assert!(a.records()[0].contains("\"scope\":\"s\""));
    }
}
