#![warn(missing_docs)]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Minimal CPU neural-network library for the MMP RL agent.
//!
//! The paper trains its actor-critic agent with PyTorch on a GPU; this crate
//! is the from-scratch substitute (DESIGN.md §3): dense [`Tensor`]s, a
//! blocked [`matmul()`](matmul::matmul), and the exact layer set of the paper's Table I —
//! [`Conv2d`] (+ same padding), [`BatchNorm2d`], ReLU, [`Linear`] and
//! softmax — each with a hand-derived backward pass, plus [`Sgd`]/[`Adam`]
//! optimizers. Layer widths are parameters, so the paper-scale network
//! (16×16×128, 10 ResBlocks) and laptop-scale test networks share all code.
//!
//! Weights and workspace are split: training goes through
//! [`Layer::forward`]/[`Layer::backward`] (`&mut self`, tape caches inside
//! the layer), while inference goes through [`Layer::infer`] (`&self`
//! weights + a caller-owned [`InferenceCtx`] holding every scratch buffer).
//! Inference inputs carry a leading batch axis N ≥ 1, so one shared network
//! can evaluate many states per call.
//!
//! # Example
//!
//! ```
//! use mmp_nn::{Conv2d, Layer, Tensor};
//!
//! let mut conv = Conv2d::new(3, 8, 3, 42); // 3→8 channels, 3×3 kernel
//! let input = Tensor::zeros(&[1, 3, 16, 16]);
//! let out = conv.forward(&input, true);
//! assert_eq!(out.shape(), &[1, 8, 16, 16]);
//! ```

pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod infer;
pub mod layer;
pub mod linear;
pub mod matmul;
pub mod optim;
pub mod sequential;
pub mod tensor;

pub use activation::{relu, relu_backward, softmax, Relu};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use infer::{InferenceCtx, KernelKind};
pub use layer::{Layer, Param};
pub use linear::Linear;
pub use matmul::matmul;
pub use optim::{Adam, Optimizer, Sgd};
pub use sequential::Sequential;
pub use tensor::Tensor;
