//! Jacobi-preconditioned conjugate gradient for the SPD placement systems.

use crate::sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// `true` when the residual target was met within the iteration budget.
    pub converged: bool,
}

/// Solves `A·x = b` for symmetric positive-definite `A` with
/// Jacobi-preconditioned CG, warm-started from `x0`.
///
/// Rows whose diagonal is zero (fully unconstrained variables) keep their
/// warm-start value — placement systems produce these for nodes with no
/// nets, and pinning them is the sensible physical answer.
///
/// # Panics
///
/// Panics when `b.len()` or `x0.len()` differ from the matrix dimension.
pub fn solve(a: &CsrMatrix, b: &[f64], x0: &[f64], tol: f64, max_iters: usize) -> CgOutcome {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x0.len(), n, "warm start length mismatch");

    let diag = a.diagonal();
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
        .collect();

    let mut x = x0.to_vec();
    let mut ax = vec![0.0; n];
    a.multiply_into(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    // Zero residual components of unconstrained rows so they stay put.
    for i in 0..n {
        if inv_diag[i] == 0.0 {
            r[i] = 0.0;
        }
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
    let target = tol * b_norm;

    let mut residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if residual <= target {
        return CgOutcome {
            x,
            iterations: 0,
            residual,
            converged: true,
        };
    }

    let mut ap = vec![0.0; n];
    for iter in 0..max_iters {
        a.multiply_into(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-300 {
            return CgOutcome {
                x,
                iterations: iter,
                residual,
                converged: residual <= target,
            };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
            if inv_diag[i] == 0.0 {
                r[i] = 0.0;
            }
        }
        residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if residual <= target {
            return CgOutcome {
                x,
                iterations: iter + 1,
                residual,
                converged: true,
            };
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_next: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    CgOutcome {
        x,
        iterations: max_iters,
        residual,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;
    use proptest::prelude::*;

    fn laplacian_2d(n: usize) -> CsrMatrix {
        // Tridiagonal SPD: 2 on diag (3 at ends via +1 boundary), -1 off.
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 2.0 + if i == 0 || i == n - 1 { 1.0 } else { 0.0 });
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_identity() {
        let mut t = Triplets::new(3);
        for i in 0..3 {
            t.add(i, i, 1.0);
        }
        let out = solve(&t.to_csr(), &[1.0, -2.0, 3.0], &[0.0; 3], 1e-12, 100);
        assert!(out.converged);
        for (got, want) in out.x.iter().zip([1.0, -2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_tridiagonal_system() {
        let a = laplacian_2d(50);
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.multiply(&x_true);
        let out = solve(&a, &b, &vec![0.0; 50], 1e-10, 500);
        assert!(out.converged, "residual {}", out.residual);
        for (got, want) in out.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = laplacian_2d(80);
        let x_true: Vec<f64> = (0..80).map(|i| (i as f64 * 0.11).cos()).collect();
        let b = a.multiply(&x_true);
        let cold = solve(&a, &b, &vec![0.0; 80], 1e-10, 1000);
        let warm = solve(&a, &b, &x_true, 1e-10, 1000);
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.iterations, 0, "exact warm start converges instantly");
    }

    #[test]
    fn unconstrained_rows_keep_warm_start() {
        // Row 1 has zero diagonal: variable 1 must stay at its warm start.
        let mut t = Triplets::new(2);
        t.add(0, 0, 4.0);
        let a = t.to_csr();
        let out = solve(&a, &[8.0, 123.0], &[0.0, 7.0], 1e-12, 50);
        assert!((out.x[0] - 2.0).abs() < 1e-10);
        assert_eq!(out.x[1], 7.0);
    }

    #[test]
    fn zero_rhs_converges_immediately_at_zero() {
        let a = laplacian_2d(5);
        let out = solve(&a, &[0.0; 5], &[0.0; 5], 1e-12, 50);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let a = laplacian_2d(200);
        let b = vec![1.0; 200];
        let out = solve(&a, &b, &vec![0.0; 200], 1e-14, 3);
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn cg_recovers_random_solutions(
            vals in proptest::collection::vec(-1.0f64..1.0, 12),
        ) {
            let a = laplacian_2d(12);
            let b = a.multiply(&vals);
            let out = solve(&a, &b, &[0.0; 12], 1e-12, 200);
            prop_assert!(out.converged);
            for (got, want) in out.x.iter().zip(&vals) {
                prop_assert!((got - want).abs() < 1e-7);
            }
        }
    }
}
