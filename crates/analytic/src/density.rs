//! FastPlace-style cell-shifting density spreading.
//!
//! After each quadratic solve the placement is heavily overlapped. Cell
//! shifting relieves it per axis: the region is cut into uniform bins,
//! utilization is measured, bin boundaries are re-spaced proportionally to
//! `utilization + d` (dense bins widen, sparse bins narrow) and node
//! coordinates are remapped linearly within their bin. The shifted
//! positions then anchor the next quadratic solve through pseudo-nets.
//!
//! The 2-D spreader is pool-aware: strips (bin-rows in the x pass,
//! bin-columns in the y pass) are independent units of work, so
//! [`SpreadGrid::shift_pooled`] fans them out over a deterministic
//! [`ThreadPool`] and scatters the results back in ascending strip order —
//! bitwise identical to the serial pass at any worker count.

use mmp_pool::ThreadPool;

/// Free parameter `d` of the bin re-spacing rule; larger values damp the
/// shift.
const DAMPING: f64 = 0.4;

/// Per-axis utilization profile of a set of nodes over `nbins` uniform bins
/// spanning `[lo, hi]`.
///
/// `capacity_scale[i]` discounts bin `i`'s capacity for area blocked by
/// fixed objects (1.0 = fully free).
pub fn utilization_profile(
    positions: &[f64],
    areas: &[f64],
    lo: f64,
    hi: f64,
    nbins: usize,
    capacity_scale: &[f64],
) -> Vec<f64> {
    assert_eq!(positions.len(), areas.len(), "length mismatch");
    assert_eq!(capacity_scale.len(), nbins, "capacity length mismatch");
    assert!(hi > lo && nbins > 0);
    let width = (hi - lo) / nbins as f64;
    let mut occupied = vec![0.0; nbins];
    for (&p, &a) in positions.iter().zip(areas) {
        let b = (((p - lo) / width) as usize).min(nbins - 1);
        occupied[b] += a;
    }
    // Capacity of one 1-D strip: share of the total free area.
    let total_area: f64 = areas.iter().sum();
    if total_area <= 0.0 {
        return vec![0.0; nbins];
    }
    // mmp-lint: allow(float-reduction) why: sequential sum over the bin slice, order fixed by construction
    let scale_sum: f64 = capacity_scale.iter().sum::<f64>().max(1e-12);
    occupied
        .iter()
        .zip(capacity_scale)
        .map(|(&occ, &cs)| {
            let cap = total_area * (cs / scale_sum);
            if cap <= 1e-12 {
                if occ > 0.0 {
                    10.0
                } else {
                    0.0
                }
            } else {
                occ / cap
            }
        })
        .collect()
}

/// One pass of cell shifting on one axis.
///
/// Bin boundaries are re-spaced proportionally to `utilization + d`; the
/// nodes of each bin are then laid out across the widened bin by cumulative
/// area rank (order preserving), which flattens density *within* the bin in
/// a single pass.
///
/// `strength ∈ (0, 1]` blends between the old position (0) and the fully
/// remapped position (1). Returns the shifted coordinates (the input is not
/// modified — the caller uses them as anchors).
///
/// # Panics
///
/// Panics when slice lengths disagree or the interval/bin count is
/// degenerate.
pub fn shift_axis(
    positions: &[f64],
    areas: &[f64],
    lo: f64,
    hi: f64,
    nbins: usize,
    capacity_scale: &[f64],
    strength: f64,
) -> Vec<f64> {
    let util = utilization_profile(positions, areas, lo, hi, nbins, capacity_scale);
    let width = (hi - lo) / nbins as f64;
    // New bin widths proportional to utilization + damping.
    let weights: Vec<f64> = util.iter().map(|u| u + DAMPING).collect();
    let wsum: f64 = weights.iter().sum();
    let mut new_bounds = Vec::with_capacity(nbins + 1);
    new_bounds.push(lo);
    let mut acc = lo;
    for w in &weights {
        acc += (hi - lo) * w / wsum;
        new_bounds.push(acc);
    }
    // Bucket node indices by bin, ordered by coordinate within each bin.
    let mut by_bin: Vec<Vec<usize>> = vec![Vec::new(); nbins];
    for (i, &p) in positions.iter().enumerate() {
        let b = (((p - lo) / width) as usize).min(nbins - 1);
        by_bin[b].push(i);
    }
    let mut out = positions.to_vec();
    for (b, members) in by_bin.iter_mut().enumerate() {
        if members.is_empty() {
            continue;
        }
        members.sort_by(|&i, &j| positions[i].total_cmp(&positions[j]));
        let bin_area: f64 = members.iter().map(|&i| areas[i]).sum();
        let (nl, nr) = (new_bounds[b], new_bounds[b + 1]);
        let mut cum = 0.0;
        for &i in members.iter() {
            let center = (cum + areas[i] / 2.0) / bin_area.max(1e-300);
            let mapped = nl + center * (nr - nl);
            out[i] = positions[i] + strength * (mapped - positions[i]);
            cum += areas[i];
        }
    }
    out
}

/// Maximum bin utilization (the placer's convergence signal).
pub fn max_utilization(util: &[f64]) -> f64 {
    util.iter().fold(0.0f64, |m, &u| m.max(u))
}

/// A 2-D spreading grid: cell shifting applied per bin-row in x and per
/// bin-column in y, with per-bin capacity discounted by fixed obstacles.
///
/// Pure 1-D shifting misbehaves on mixed-size designs — a macro's whole area
/// projects onto the axis and crowds the cells of *every* row out of its
/// bins. Shifting row-by-row confines each node's influence to its own
/// strip, which is the actual FastPlace formulation.
#[derive(Debug, Clone)]
pub struct SpreadGrid {
    lo_x: f64,
    lo_y: f64,
    width: f64,
    height: f64,
    nbins: usize,
    /// Blocked (fixed-obstacle) area per bin, row-major `[row][col]`.
    blocked: Vec<f64>,
}

impl SpreadGrid {
    /// A grid of `nbins`×`nbins` bins over the rectangle
    /// `[lo_x, lo_x+width] × [lo_y, lo_y+height]`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive extents or zero bins.
    pub fn new(lo_x: f64, lo_y: f64, width: f64, height: f64, nbins: usize) -> Self {
        assert!(width > 0.0 && height > 0.0, "degenerate spread region");
        assert!(nbins > 0, "need at least one bin");
        SpreadGrid {
            lo_x,
            lo_y,
            width,
            height,
            nbins,
            blocked: vec![0.0; nbins * nbins],
        }
    }

    /// Bin side lengths.
    fn bin_w(&self) -> f64 {
        self.width / self.nbins as f64
    }

    fn bin_h(&self) -> f64 {
        self.height / self.nbins as f64
    }

    fn col_of(&self, x: f64) -> usize {
        (((x - self.lo_x) / self.bin_w()) as usize).min(self.nbins - 1)
    }

    fn row_of(&self, y: f64) -> usize {
        (((y - self.lo_y) / self.bin_h()) as usize).min(self.nbins - 1)
    }

    /// Marks the rectangle `(x, y, w, h)` (lower-left + size) as blocked by
    /// a fixed obstacle; its overlap area is removed from bin capacity.
    pub fn block(&mut self, x: f64, y: f64, w: f64, h: f64) {
        for r in 0..self.nbins {
            let by = self.lo_y + r as f64 * self.bin_h();
            let oy = (y + h).min(by + self.bin_h()) - y.max(by);
            if oy <= 0.0 {
                continue;
            }
            for c in 0..self.nbins {
                let bx = self.lo_x + c as f64 * self.bin_w();
                let ox = (x + w).min(bx + self.bin_w()) - x.max(bx);
                if ox > 0.0 {
                    self.blocked[r * self.nbins + c] += ox * oy;
                }
            }
        }
    }

    /// Free capacity of bin `(row, col)`.
    fn capacity(&self, row: usize, col: usize) -> f64 {
        (self.bin_w() * self.bin_h() - self.blocked[row * self.nbins + col]).max(0.0)
    }

    /// Peak bin utilization: movable area over free capacity, maximised
    /// over bins (∞-free bins holding area report a large constant).
    ///
    /// Each node's outline (center ± half size) is smeared across the bins
    /// it covers, so a macro spanning several bins does not read as a fake
    /// point overflow.
    pub fn peak_utilization(&self, xs: &[f64], ys: &[f64], ws: &[f64], hs: &[f64]) -> f64 {
        let mut occ = vec![0.0; self.nbins * self.nbins];
        for i in 0..xs.len() {
            let (x0, x1) = (xs[i] - ws[i] / 2.0, xs[i] + ws[i] / 2.0);
            let (y0, y1) = (ys[i] - hs[i] / 2.0, ys[i] + hs[i] / 2.0);
            let (c0, c1) = (self.col_of(x0), self.col_of(x1));
            let (r0, r1) = (self.row_of(y0), self.row_of(y1));
            for r in r0..=r1 {
                let by = self.lo_y + r as f64 * self.bin_h();
                let oy = (y1.min(by + self.bin_h()) - y0.max(by)).max(0.0);
                for c in c0..=c1 {
                    let bx = self.lo_x + c as f64 * self.bin_w();
                    let ox = (x1.min(bx + self.bin_w()) - x0.max(bx)).max(0.0);
                    occ[r * self.nbins + c] += ox * oy;
                }
            }
        }
        let mut peak = 0.0f64;
        for r in 0..self.nbins {
            for c in 0..self.nbins {
                let o = occ[r * self.nbins + c];
                if o <= 0.0 {
                    continue;
                }
                let cap = self.capacity(r, c);
                peak = peak.max(if cap <= 1e-12 { 10.0 } else { o / cap });
            }
        }
        peak
    }

    /// One spreading pass: per-row cell shifting in x, then per-column in y.
    /// Returns the shifted coordinates (inputs untouched).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree.
    pub fn shift(
        &self,
        xs: &[f64],
        ys: &[f64],
        areas: &[f64],
        strength: f64,
    ) -> (Vec<f64>, Vec<f64>) {
        self.shift_pooled(&ThreadPool::single(), xs, ys, areas, strength)
    }

    /// [`SpreadGrid::shift`] with the per-strip work distributed over
    /// `pool` (one task per bin-row, then per bin-column). Strips are
    /// independent and the scatter back runs sequentially in ascending
    /// strip order, so the result is bitwise identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree.
    pub fn shift_pooled(
        &self,
        pool: &ThreadPool,
        xs: &[f64],
        ys: &[f64],
        areas: &[f64],
        strength: f64,
    ) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(xs.len(), ys.len(), "length mismatch");
        assert_eq!(xs.len(), areas.len(), "length mismatch");
        let n = xs.len();
        let mut out_x = xs.to_vec();

        // --- x pass, one strip per bin-row --------------------------------
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); self.nbins];
        for i in 0..n {
            rows[self.row_of(ys[i])].push(i);
        }
        let shifted_rows = pool.run(self.nbins, |r| {
            let members = &rows[r];
            if members.is_empty() {
                return Vec::new();
            }
            let caps: Vec<f64> = (0..self.nbins).map(|c| self.capacity(r, c)).collect();
            shift_strip(
                members.iter().map(|&i| xs[i]).collect(),
                members.iter().map(|&i| areas[i]).collect(),
                self.lo_x,
                self.lo_x + self.width,
                &caps,
                strength,
            )
        });
        for (members, shifted) in rows.iter().zip(&shifted_rows) {
            for (k, &i) in members.iter().enumerate() {
                out_x[i] = shifted[k];
            }
        }

        // --- y pass, one strip per bin-column (using updated x) -----------
        let mut out_y = ys.to_vec();
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); self.nbins];
        for i in 0..n {
            cols[self.col_of(out_x[i])].push(i);
        }
        let shifted_cols = pool.run(self.nbins, |c| {
            let members = &cols[c];
            if members.is_empty() {
                return Vec::new();
            }
            let caps: Vec<f64> = (0..self.nbins).map(|r| self.capacity(r, c)).collect();
            shift_strip(
                members.iter().map(|&i| ys[i]).collect(),
                members.iter().map(|&i| areas[i]).collect(),
                self.lo_y,
                self.lo_y + self.height,
                &caps,
                strength,
            )
        });
        for (members, shifted) in cols.iter().zip(&shifted_cols) {
            for (k, &i) in members.iter().enumerate() {
                out_y[i] = shifted[k];
            }
        }
        (out_x, out_y)
    }
}

/// Cell shifting along one strip with per-bin free capacities.
///
/// Bins are re-spaced by relative density (occupancy share over capacity
/// share, damped), then nodes are laid out within each re-spaced bin by
/// cumulative-area rank.
fn shift_strip(
    positions: Vec<f64>,
    areas: Vec<f64>,
    lo: f64,
    hi: f64,
    caps: &[f64],
    strength: f64,
) -> Vec<f64> {
    let nbins = caps.len();
    let width = (hi - lo) / nbins as f64;
    let mut occ = vec![0.0; nbins];
    let mut by_bin: Vec<Vec<usize>> = vec![Vec::new(); nbins];
    for (i, &p) in positions.iter().enumerate() {
        let b = (((p - lo) / width) as usize).min(nbins - 1);
        occ[b] += areas[i];
        by_bin[b].push(i);
    }
    let occ_sum: f64 = occ.iter().sum();
    if occ_sum <= 0.0 {
        return positions;
    }
    // mmp-lint: allow(float-reduction) why: sequential sum over the bin slice, order fixed by construction
    let cap_sum: f64 = caps.iter().sum::<f64>().max(1e-12);
    let weights: Vec<f64> = (0..nbins)
        .map(|b| {
            let occ_share = occ[b] / occ_sum;
            let cap_share = (caps[b] / cap_sum).max(1e-6);
            occ_share / cap_share + DAMPING
        })
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut bounds = Vec::with_capacity(nbins + 1);
    bounds.push(lo);
    let mut acc = lo;
    for w in &weights {
        acc += (hi - lo) * w / wsum;
        bounds.push(acc);
    }
    let mut out = positions.clone();
    for (b, members) in by_bin.iter_mut().enumerate() {
        if members.is_empty() {
            continue;
        }
        members.sort_by(|&i, &j| positions[i].total_cmp(&positions[j]));
        let bin_area: f64 = members.iter().map(|&i| areas[i]).sum();
        let (nl, nr) = (bounds[b], bounds[b + 1]);
        let mut cum = 0.0;
        for &i in members.iter() {
            let center = (cum + areas[i] / 2.0) / bin_area.max(1e-300);
            let mapped = nl + center * (nr - nl);
            out[i] = positions[i] + strength * (mapped - positions[i]);
            cum += areas[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_positions_have_flat_profile() {
        let positions: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let areas = vec![1.0; 100];
        let cap = vec![1.0; 10];
        let util = utilization_profile(&positions, &areas, 0.0, 100.0, 10, &cap);
        for u in &util {
            assert!((u - 1.0).abs() < 1e-9, "uniform spread ⇒ utilization 1");
        }
    }

    #[test]
    fn clumped_positions_have_a_peak() {
        let positions = vec![50.0; 40];
        let areas = vec![1.0; 40];
        let cap = vec![1.0; 10];
        let util = utilization_profile(&positions, &areas, 0.0, 100.0, 10, &cap);
        assert!(max_utilization(&util) > 5.0);
    }

    #[test]
    fn shifting_reduces_peak_utilization() {
        // Everything clumped in the middle.
        let positions: Vec<f64> = (0..60).map(|i| 49.0 + (i as f64) / 30.0).collect();
        let areas = vec![1.0; 60];
        let cap = vec![1.0; 12];
        let before = max_utilization(&utilization_profile(
            &positions, &areas, 0.0, 100.0, 12, &cap,
        ));
        let shifted = shift_axis(&positions, &areas, 0.0, 100.0, 12, &cap, 1.0);
        let after = max_utilization(&utilization_profile(&shifted, &areas, 0.0, 100.0, 12, &cap));
        assert!(
            after < before,
            "peak must drop: before {before}, after {after}"
        );
    }

    #[test]
    fn zero_strength_is_identity() {
        let positions = vec![10.0, 20.0, 30.0];
        let areas = vec![1.0; 3];
        let cap = vec![1.0; 4];
        let out = shift_axis(&positions, &areas, 0.0, 40.0, 4, &cap, 0.0);
        assert_eq!(out, positions);
    }

    #[test]
    fn blocked_bins_repel_mass() {
        // Bin 0 has no capacity (fully covered by a fixed macro); nodes
        // sitting there register as overflow.
        let positions = vec![2.0, 3.0];
        let areas = vec![1.0, 1.0];
        let cap = vec![0.0, 1.0, 1.0, 1.0];
        let util = utilization_profile(&positions, &areas, 0.0, 40.0, 4, &cap);
        assert!(util[0] > 1.0, "blocked bin must read overfull");
    }

    #[test]
    fn empty_input_is_fine() {
        let util = utilization_profile(&[], &[], 0.0, 10.0, 4, &[1.0; 4]);
        assert_eq!(util, vec![0.0; 4]);
        let out = shift_axis(&[], &[], 0.0, 10.0, 4, &[1.0; 4], 1.0);
        assert!(out.is_empty());
    }

    #[test]
    fn spread_grid_macro_does_not_crowd_out_other_rows() {
        // One huge macro in the middle row plus many unit cells clumped in a
        // different row: after shifting, the cells must stay within their
        // own row's spread, not be squeezed to an edge by the macro's area.
        let grid = SpreadGrid::new(0.0, 0.0, 100.0, 100.0, 8);
        let mut xs = vec![50.0]; // the macro
        let mut ys = vec![50.0];
        let mut areas = vec![2000.0];
        for i in 0..40 {
            xs.push(50.0 + (i as f64) * 0.01);
            ys.push(10.0); // a different row
            areas.push(1.0);
        }
        let (sx, _sy) = grid.shift(&xs, &ys, &areas, 1.0);
        let cell_mean = sx[1..].iter().sum::<f64>() / 40.0;
        assert!(
            (cell_mean - 50.0).abs() < 20.0,
            "cells pushed to {cell_mean}, expected to stay near 50"
        );
    }

    #[test]
    fn spread_grid_peak_counts_blocked_bins() {
        let mut grid = SpreadGrid::new(0.0, 0.0, 100.0, 100.0, 4);
        // Fully block the lower-left bin.
        grid.block(0.0, 0.0, 25.0, 25.0);
        let peak = grid.peak_utilization(&[10.0], &[10.0], &[2.0], &[2.0]);
        assert!(peak >= 10.0, "area in a blocked bin must read overfull");
    }

    #[test]
    fn spread_grid_peak_smears_large_outlines() {
        let grid = SpreadGrid::new(0.0, 0.0, 100.0, 100.0, 4);
        // A 50x50 macro covers four 25x25 bins exactly: utilization 1.
        let peak = grid.peak_utilization(&[50.0], &[50.0], &[50.0], &[50.0]);
        assert!((peak - 1.0).abs() < 1e-9, "got {peak}");
    }

    #[test]
    fn spread_grid_reduces_peak_on_clump() {
        let grid = SpreadGrid::new(0.0, 0.0, 100.0, 100.0, 8);
        let n = 80;
        let xs = vec![50.0; n];
        let ys: Vec<f64> = (0..n).map(|i| 48.0 + (i as f64) * 0.05).collect();
        let areas = vec![4.0; n];
        let ws = vec![2.0; n];
        let hs = vec![2.0; n];
        let before = grid.peak_utilization(&xs, &ys, &ws, &hs);
        let (sx, sy) = grid.shift(&xs, &ys, &areas, 1.0);
        let after = grid.peak_utilization(&sx, &sy, &ws, &hs);
        assert!(after < before, "before {before}, after {after}");
    }

    #[test]
    fn pooled_shift_is_bitwise_invariant_in_worker_count() {
        let grid = SpreadGrid::new(0.0, 0.0, 100.0, 100.0, 8);
        let n = 120;
        let xs: Vec<f64> = (0..n)
            .map(|i| 30.0 + (i as f64 * 0.37).sin() * 25.0)
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| 50.0 + (i as f64 * 0.73).cos() * 40.0)
            .collect();
        let areas: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let (bx, by) = grid.shift(&xs, &ys, &areas, 0.8);
        for w in [2usize, 4, 8] {
            let pool = ThreadPool::try_new(w).unwrap();
            let (sx, sy) = grid.shift_pooled(&pool, &xs, &ys, &areas, 0.8);
            let same_x = sx.iter().zip(&bx).all(|(a, b)| a.to_bits() == b.to_bits());
            let same_y = sy.iter().zip(&by).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_x && same_y, "w={w}: shifted coordinates drifted");
        }
    }

    #[test]
    fn spread_grid_empty_input() {
        let grid = SpreadGrid::new(0.0, 0.0, 10.0, 10.0, 2);
        let (sx, sy) = grid.shift(&[], &[], &[], 1.0);
        assert!(sx.is_empty() && sy.is_empty());
        assert_eq!(grid.peak_utilization(&[], &[], &[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn spread_grid_rejects_empty_region() {
        let _ = SpreadGrid::new(0.0, 0.0, 0.0, 10.0, 2);
    }

    proptest! {
        #[test]
        fn spread_grid_outputs_stay_in_region(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.5f64..20.0), 1..40),
            strength in 0.1f64..1.0,
        ) {
            let grid = SpreadGrid::new(0.0, 0.0, 100.0, 100.0, 6);
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let areas: Vec<f64> = pts.iter().map(|p| p.2).collect();
            let (sx, sy) = grid.shift(&xs, &ys, &areas, strength);
            for i in 0..xs.len() {
                prop_assert!((-1e-9..=100.0 + 1e-9).contains(&sx[i]));
                prop_assert!((-1e-9..=100.0 + 1e-9).contains(&sy[i]));
            }
        }

        #[test]
        fn shifted_positions_stay_in_range(
            pts in proptest::collection::vec(0.0f64..100.0, 1..50),
            strength in 0.0f64..1.0,
        ) {
            let areas = vec![1.0; pts.len()];
            let cap = vec![1.0; 8];
            let out = shift_axis(&pts, &areas, 0.0, 100.0, 8, &cap, strength);
            for &p in &out {
                prop_assert!((-1e-9..=100.0 + 1e-9).contains(&p));
            }
        }

        #[test]
        fn shifting_preserves_within_bin_order(
            pts in proptest::collection::vec(0.0f64..100.0, 2..40),
        ) {
            let areas = vec![1.0; pts.len()];
            let cap = vec![1.0; 8];
            let out = shift_axis(&pts, &areas, 0.0, 100.0, 8, &cap, 1.0);
            // The bin remap is monotone, so global order is preserved.
            let mut idx: Vec<usize> = (0..pts.len()).collect();
            idx.sort_by(|&a, &b| pts[a].total_cmp(&pts[b]));
            for w in idx.windows(2) {
                prop_assert!(out[w[0]] <= out[w[1]] + 1e-9);
            }
        }
    }
}
