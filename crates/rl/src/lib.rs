#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests and benches may unwrap freely). Justified invariant `expect`s
// carry explicit allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Pre-training stage by RL (paper Sec. III).
//!
//! Macro-group allocation is posed as an MDP: the state is
//! ⟨occupancy map s_p, availability map s_a (Eq. 4), step t⟩
//! ([`state`]), the action allocates the next macro group to one of the
//! ζ×ζ grid cells ([`env::PlacementEnv`]), and the terminal reward is the
//! normalised wirelength score 𝔇(W) of Eq. 9 ([`reward`]), copied to every
//! step of the episode. An actor-critic agent ([`net::PolicyValueNet`],
//! architectures of Fig. 2 / Table I) is trained with the A2C losses of
//! Eqs. 5–8, updating every 30 episodes ([`trainer::Trainer`]).
//!
//! The trained [`agent::Agent`] later guides MCTS (crate `mmp-mcts`):
//! π_θ provides the PUCT priors, V_θ evaluates non-terminal leaves.
//!
//! # Example
//!
//! ```
//! use mmp_rl::{Trainer, TrainerConfig};
//! use mmp_netlist::SyntheticSpec;
//!
//! let design = SyntheticSpec::small("rl", 6, 0, 8, 40, 70, false, 3).generate();
//! let mut cfg = TrainerConfig::tiny(4);
//! cfg.episodes = 4;
//! let outcome = Trainer::new(&design, cfg).train();
//! assert_eq!(outcome.history.episode_rewards.len(), 4);
//! ```

pub mod agent;
pub mod env;
pub mod eval;
pub mod net;
pub mod reward;
pub mod state;
pub mod trainer;

pub use agent::Agent;
pub use env::{PlacementEnv, State};
pub use eval::{CoarseEvaluator, FullEvaluator, WirelengthEvaluator};
pub use mmp_nn::InferenceCtx;
pub use net::{AgentConfig, NetOutput, PolicyValueNet, StateRef};
pub use reward::{CalibrationError, RewardKind, RewardScale};
pub use trainer::{
    TrainCheckpoint, TrainCheckpointSink, TrainError, Trainer, TrainerConfig, TrainingHistory,
    TrainingOutcome,
};
