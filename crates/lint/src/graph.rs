//! Approximate intra-workspace call graph over [`crate::items`].
//!
//! The graph exists for one purpose: giving R8 (`panic-path`) a shortest
//! call chain from a flow entrypoint (`Daemon::serve`,
//! `MacroPlacer::place`, `Trainer::train`) to each panic site, so
//! robustness work is prioritized by reachability. Precision rules:
//!
//! * **Over-approximate, never under-approximate.** A method call
//!   `.place(x)` links to *every* impl fn named `place` in the
//!   workspace; a bare call prefers the `use`-imported or same-crate
//!   definition but falls back to any free fn of that name. Spurious
//!   edges inflate a chain, which is harmless; a missing edge would hide
//!   a reachable panic, which is not.
//! * **Deterministic.** All resolution maps are `BTreeMap`s, adjacency
//!   lists are sorted and deduplicated, and the BFS visits neighbors in
//!   node order — the same workspace always yields the same chains.

use std::collections::BTreeMap;

use crate::items::{is_expr_keyword, ParsedFile};
use crate::lexer::{Lexed, TokKind};

/// One function node in the graph.
#[derive(Debug)]
pub struct Node {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `items`.
    pub item: usize,
    /// Display-qualified name (`mmp_serve::daemon::Server::serve`).
    pub qual: String,
}

/// The workspace call graph plus reachability from the entrypoints.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// `edges[n]` = sorted, deduplicated callee node ids.
    edges: Vec<Vec<usize>>,
    /// `(file, item)` → node id.
    by_loc: BTreeMap<(usize, usize), usize>,
    /// BFS parent (`usize::MAX` for entrypoints), `None` if unreachable.
    parent: Vec<Option<usize>>,
}

impl CallGraph {
    /// Builds the graph and runs multi-source BFS from every item whose
    /// qualified name ends in one of `entrypoints` (e.g. `Server::serve`
    /// matches `mmp_serve::daemon::Server::serve`).
    pub fn build(files: &[(ParsedFile, Lexed)], entrypoints: &[String]) -> CallGraph {
        let mut g = CallGraph::default();
        for (fi, (pf, _)) in files.iter().enumerate() {
            for (ii, item) in pf.items.iter().enumerate() {
                let id = g.nodes.len();
                g.nodes.push(Node {
                    file: fi,
                    item: ii,
                    qual: item.qual.clone(),
                });
                g.by_loc.insert((fi, ii), id);
            }
        }
        g.edges = vec![Vec::new(); g.nodes.len()];

        // Resolution maps. `by_pair` answers `Qual::name`; bare names go
        // through the free-fn maps; method names through `methods`.
        let mut by_pair: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free_in_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_any: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, n) in g.nodes.iter().enumerate() {
            let (pf, _) = &files[n.file];
            let item = &pf.items[n.item];
            match &item.self_ty {
                Some(ty) => {
                    by_pair
                        .entry(format!("{ty}::{}", item.name))
                        .or_default()
                        .push(id);
                    methods.entry(item.name.clone()).or_default().push(id);
                }
                None => {
                    // Free fns answer to `module::name` and `crate::name`
                    // (last path segment is qualifier enough for this
                    // workspace's call style) and to their bare name.
                    let segs: Vec<&str> = item.qual.split("::").collect();
                    if segs.len() >= 2 {
                        by_pair
                            .entry(format!("{}::{}", segs[segs.len() - 2], item.name))
                            .or_default()
                            .push(id);
                    }
                    by_pair
                        .entry(format!("{}::{}", pf.crate_name, item.name))
                        .or_default()
                        .push(id);
                    free_in_crate
                        .entry((pf.crate_name.clone(), item.name.clone()))
                        .or_default()
                        .push(id);
                    free_any.entry(item.name.clone()).or_default().push(id);
                }
            }
        }

        for (fi, (pf, lexed)) in files.iter().enumerate() {
            for call in extract_calls(pf, lexed) {
                let Some(&caller) = g.by_loc.get(&(fi, call.caller_item)) else {
                    continue;
                };
                let callees: Vec<usize> = match &call.kind {
                    CallKind::Method(name) => methods.get(name).cloned().unwrap_or_default(),
                    CallKind::Path { qual, name } => {
                        let qual = if qual == "Self" {
                            match &pf.items[call.caller_item].self_ty {
                                Some(ty) => ty.clone(),
                                None => qual.clone(),
                            }
                        } else {
                            qual.clone()
                        };
                        by_pair
                            .get(&format!("{qual}::{name}"))
                            .cloned()
                            .unwrap_or_default()
                    }
                    CallKind::Bare(name) => {
                        // `use`-imported path wins, then same-crate free
                        // fn, then any free fn of that name.
                        let imported = pf.resolve_use(name).and_then(|path| {
                            if path.len() >= 2 {
                                let q = &path[path.len() - 2];
                                let q = if q == "crate" {
                                    pf.crate_name.as_str()
                                } else {
                                    q.as_str()
                                };
                                by_pair.get(&format!("{q}::{name}")).cloned()
                            } else {
                                None
                            }
                        });
                        imported
                            .or_else(|| {
                                free_in_crate
                                    .get(&(pf.crate_name.clone(), name.clone()))
                                    .cloned()
                            })
                            .or_else(|| free_any.get(name).cloned())
                            .unwrap_or_default()
                    }
                };
                g.edges[caller].extend(callees);
            }
        }
        for adj in &mut g.edges {
            adj.sort_unstable();
            adj.dedup();
        }

        // Multi-source BFS. Entrypoints are matched by qualified-name
        // suffix so config stays short (`Server::serve`, not the full
        // module path).
        g.parent = vec![None; g.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (id, n) in g.nodes.iter().enumerate() {
            if entrypoints
                .iter()
                .any(|e| n.qual == *e || n.qual.ends_with(&format!("::{e}")))
            {
                g.parent[id] = Some(usize::MAX);
                queue.push(id);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for &next in &g.edges[cur] {
                if g.parent[next].is_none() {
                    g.parent[next] = Some(cur);
                    queue.push(next);
                }
            }
        }
        g
    }

    /// Shortest chain of qualified names from an entrypoint to the item
    /// at `(file, item)`, entrypoint first; `None` if unreachable.
    pub fn chain(&self, file: usize, item: usize) -> Option<Vec<String>> {
        let &id = self.by_loc.get(&(file, item))?;
        self.parent[id]?;
        let mut rev = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent[cur] {
            if p == usize::MAX {
                break;
            }
            rev.push(p);
            cur = p;
        }
        Some(
            rev.iter()
                .rev()
                .map(|&n| self.nodes[n].qual.clone())
                .collect(),
        )
    }
}

enum CallKind {
    /// `.name(...)` — resolved to every impl fn of that name.
    Method(String),
    /// `Qual::name(...)` or `Qual::name` used as a value.
    Path { qual: String, name: String },
    /// `name(...)` with no qualifier.
    Bare(String),
}

struct Call {
    caller_item: usize,
    kind: CallKind,
}

/// Scans one file's tokens for call expressions and attributes each to
/// its innermost enclosing item.
fn extract_calls(pf: &ParsedFile, lexed: &Lexed) -> Vec<Call> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_expr_keyword(&t.text) {
            i += 1;
            continue;
        }
        // Skip mid-path idents (`B` in `A::B::c`) — the path is consumed
        // from its head below. A leading `.` means a method call site.
        let prev_colon = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        let prev_dot = i >= 1 && toks[i - 1].is_punct('.');
        let prev_fn = i >= 1 && toks[i - 1].is_ident("fn");
        if prev_colon || prev_fn {
            i += 1;
            continue;
        }
        if prev_dot {
            // `.name` then optional turbofish then `(`.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|a| a.is_punct(':'))
                && toks.get(j + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(j + 2).is_some_and(|a| a.is_punct('<'))
            {
                j = skip_angles(toks, j + 2);
            }
            if toks.get(j).is_some_and(|a| a.is_punct('(')) {
                if let Some(item) = pf.enclosing_item(i) {
                    out.push(Call {
                        caller_item: item,
                        kind: CallKind::Method(t.text.clone()),
                    });
                }
            }
            i += 1;
            continue;
        }
        // Path head: collect `A::B::c` segments (skipping turbofish).
        let mut segs: Vec<String> = vec![t.text.clone()];
        let mut j = i + 1;
        loop {
            if toks.get(j).is_some_and(|a| a.is_punct(':'))
                && toks.get(j + 1).is_some_and(|a| a.is_punct(':'))
            {
                if toks.get(j + 2).is_some_and(|a| a.is_punct('<')) {
                    j = skip_angles(toks, j + 2);
                    continue;
                }
                if toks
                    .get(j + 2)
                    .is_some_and(|a| a.kind == TokKind::Ident && !is_expr_keyword(&a.text))
                {
                    segs.push(toks[j + 2].text.clone());
                    j += 3;
                    continue;
                }
            }
            break;
        }
        let next_is_call = toks.get(j).is_some_and(|a| a.is_punct('('));
        // `!` right after the path is a macro invocation, not a call.
        let next_is_bang = toks.get(j).is_some_and(|a| a.is_punct('!'));
        // A multi-segment path used as a value (`.map(Design::load)`)
        // counts as an edge when it sits in argument position.
        let next_is_value_pos = toks
            .get(j)
            .is_some_and(|a| a.is_punct(')') || a.is_punct(','));
        if !next_is_bang {
            if let Some(item) = pf.enclosing_item(i) {
                if segs.len() >= 2 && (next_is_call || next_is_value_pos) {
                    let name = segs.pop().unwrap_or_default();
                    let qual = segs.pop().unwrap_or_default();
                    out.push(Call {
                        caller_item: item,
                        kind: CallKind::Path { qual, name },
                    });
                } else if segs.len() == 1 && next_is_call {
                    out.push(Call {
                        caller_item: item,
                        kind: CallKind::Bare(segs.pop().unwrap_or_default()),
                    });
                }
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// With `toks[open]` = `<`, returns the index just past the matching `>`.
/// `>>` closing two levels arrives as two separate puncts, so plain
/// depth counting works; `->`-style arrows cannot appear inside a
/// turbofish argument list at depth > 0 without their `>` being part of
/// a real generic close in this workspace's code, and a mis-skip only
/// costs one spurious/missing edge.
fn skip_angles(toks: &[crate::lexer::Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            TokKind::Punct(';') | TokKind::Punct('{') => return j, // bail: not a turbofish
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse;
    use crate::lexer::lex;

    fn graph_of(sources: &[(&str, &str)], entries: &[&str]) -> (CallGraph, Vec<ParsedFile>) {
        let files: Vec<(ParsedFile, Lexed)> = sources
            .iter()
            .map(|(p, s)| {
                let lexed = lex(s);
                (parse(p, &lexed), lexed)
            })
            .collect();
        let entries: Vec<String> = entries.iter().map(|e| (*e).to_owned()).collect();
        let g = CallGraph::build(&files, &entries);
        (g, files.into_iter().map(|(p, _)| p).collect())
    }

    fn chain_for(g: &CallGraph, pfs: &[ParsedFile], name: &str) -> Option<Vec<String>> {
        for (fi, pf) in pfs.iter().enumerate() {
            for (ii, item) in pf.items.iter().enumerate() {
                if item.name == name {
                    return g.chain(fi, ii);
                }
            }
        }
        panic!("no item named {name}");
    }

    #[test]
    fn direct_and_transitive_chains() {
        let src = "impl Server {\n\
                   fn serve(&self) { self.handle(); }\n\
                   fn handle(&self) { decode(); }\n\
                   }\n\
                   fn decode() { inner(); }\n\
                   fn inner() {}\n\
                   fn unrelated() {}\n";
        let (g, pfs) = graph_of(&[("crates/serve/src/daemon.rs", src)], &["Server::serve"]);
        let chain = chain_for(&g, &pfs, "inner").expect("inner reachable");
        assert_eq!(
            chain,
            vec![
                "mmp_serve::daemon::Server::serve",
                "mmp_serve::daemon::Server::handle",
                "mmp_serve::daemon::decode",
                "mmp_serve::daemon::inner",
            ]
        );
        assert!(chain_for(&g, &pfs, "unrelated").is_none());
    }

    #[test]
    fn cross_file_path_calls_resolve() {
        let a = "impl Placer {\n  pub fn place(&self) { Grid::snap(3); }\n}\n";
        let b = "impl Grid {\n  pub fn snap(x: u32) -> u32 { x }\n}\n";
        let (g, pfs) = graph_of(
            &[
                ("crates/core/src/placer.rs", a),
                ("crates/geom/src/grid.rs", b),
            ],
            &["Placer::place"],
        );
        let chain = chain_for(&g, &pfs, "snap").expect("snap reachable");
        assert_eq!(chain.len(), 2);
        assert!(chain[1].ends_with("Grid::snap"));
    }

    #[test]
    fn self_paths_substitute_the_impl_type() {
        let src = "impl Tree {\n\
                   fn grow(&self) { Self::expand(); }\n\
                   fn expand() {}\n\
                   }\n";
        let (g, pfs) = graph_of(&[("crates/mcts/src/tree.rs", src)], &["Tree::grow"]);
        assert!(chain_for(&g, &pfs, "expand").is_some());
    }

    #[test]
    fn function_references_in_argument_position_count() {
        let src = "impl Job {\n\
                   fn run(&self) { self.spec.and_then(Design::load); }\n\
                   }\n\
                   impl Design {\n  fn load() {}\n}\n";
        let (g, pfs) = graph_of(&[("crates/serve/src/job.rs", src)], &["Job::run"]);
        assert!(chain_for(&g, &pfs, "load").is_some());
    }

    #[test]
    fn use_imports_steer_bare_calls() {
        let a = "use crate::util::decode;\n\
                 impl Server { fn serve(&self) { decode(); } }\n";
        let b = "pub fn decode() { helper(); }\nfn helper() {}\n";
        let (g, pfs) = graph_of(
            &[
                ("crates/serve/src/daemon.rs", a),
                ("crates/serve/src/util.rs", b),
            ],
            &["Server::serve"],
        );
        assert!(chain_for(&g, &pfs, "helper").is_some());
    }

    #[test]
    fn macros_are_not_calls() {
        let src = "impl S { fn serve(&self) { log!(target); } }\nfn target() {}\n";
        let (g, pfs) = graph_of(&[("crates/serve/src/daemon.rs", src)], &["S::serve"]);
        // `log!(target)` must not create an edge to fn target — but
        // `target` in value position inside the macro body is token soup;
        // single-segment value positions are not counted.
        assert!(chain_for(&g, &pfs, "target").is_none());
    }

    #[test]
    fn method_calls_over_approximate_across_types() {
        let a = "impl Daemon { fn serve(&self, p: Placer) { p.place(); } }\n";
        let b = "impl Placer { fn place(&self) {} }\nimpl Other { fn place(&self) {} }\n";
        let (g, pfs) = graph_of(
            &[
                ("crates/serve/src/daemon.rs", a),
                ("crates/core/src/placer.rs", b),
            ],
            &["Daemon::serve"],
        );
        // Both `place` impls become reachable — documented over-approximation.
        for (fi, pf) in pfs.iter().enumerate() {
            for (ii, item) in pf.items.iter().enumerate() {
                if item.name == "place" {
                    assert!(g.chain(fi, ii).is_some(), "{} unreachable", item.qual);
                }
            }
        }
    }

    #[test]
    fn turbofish_does_not_break_paths() {
        let src = "impl S { fn serve(&self) { Vec::<u32>::with_capacity(4); pack::<f32>(1); } }\n\
                   fn pack(x: u32) {}\n";
        let (g, pfs) = graph_of(&[("crates/serve/src/daemon.rs", src)], &["S::serve"]);
        assert!(chain_for(&g, &pfs, "pack").is_some());
    }
}
