//! Algorithm 1: preprocess → pre-train → MCTS → legalize → place cells.
//!
//! The flow is *hardened*: every stage propagates typed errors
//! ([`PlaceError`]), honours the wall-clock allowances of a
//! [`RunBudget`], and records every graceful-degradation event in the
//! result's [`DegradationReport`].

use crate::budget::{self, RunBudget};
use crate::checkpoint::{
    fingerprint, CheckpointPlan, CheckpointSummary, CkptCtx, CrashPoint, CrashStage,
    SearchDoneCkpt, TrainDoneCkpt, SEARCH_DONE, SEARCH_PARTIAL, TRAIN_DONE, TRAIN_PARTIAL,
};
use crate::degrade::{DegradationReport, Stage};
use crate::error::{FinalPlaceError, PlaceError, PreprocessError, SearchError};
use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
use mmp_geom::GridIndex;
use mmp_legal::{MacroLegalizer, SwapRefineConfig, SwapRefiner};
use mmp_mcts::{
    place_ensemble_with_deadline, EnsembleConfig, MctsConfig, MctsOutcome, MctsPlacer, SearchStats,
};
use mmp_netlist::{Design, Placement};
use mmp_obs::{field, Obs};
use mmp_rl::{
    Agent, InferenceCtx, TrainCheckpoint, Trainer, TrainerConfig, TrainingHistory, TrainingOutcome,
};
use mmp_vfs::Vfs;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Full-flow configuration. `fast(ζ)` gives laptop-scale settings used by
/// tests; `paper()` the published ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// RL pre-training settings (grid ζ, network, episodes, reward).
    pub trainer: TrainerConfig,
    /// MCTS settings (c, γ explorations).
    pub mcts: MctsConfig,
    /// Independent parallel MCTS runs (1 = the paper's single search;
    /// more runs diversify priors per worker and keep the best result).
    pub ensemble_runs: usize,
    /// Worker count of the deterministic compute pool shared by batched
    /// inference, the ensemble fan-out, the CG solver and the density
    /// spreader. Always explicit — never derived from the machine — and
    /// bitwise-neutral: any value produces the same placement. `1` (the
    /// default) runs everything inline.
    #[serde(default = "default_workers")]
    pub workers: usize,
    /// Final cell-placement effort.
    pub final_placer: GlobalPlacerConfig,
    /// Wall-clock allowances; exceeded stages degrade gracefully (see
    /// [`RunBudget`]). Unlimited by default.
    #[serde(default)]
    pub budget: RunBudget,
    /// Optional post-MCTS swap/relocate refinement over the committed
    /// placement, driven by the incremental HPWL evaluator. `None` (the
    /// default) skips the stage.
    #[serde(default)]
    pub refine: Option<SwapRefineConfig>,
    /// Fault-injection knob: forces the legalizer onto its row-greedy
    /// fallback path (test harness only; `false` in production).
    #[serde(default)]
    pub fault_sp_failure: bool,
    /// Fault-injection knob: makes the given ensemble worker panic, to
    /// exercise the surviving-quorum path (test harness only; `None` in
    /// production).
    #[serde(default)]
    pub fault_ensemble_panic: Option<usize>,
    /// Fault-injection knob: simulates a process kill right after the
    /// n-th checkpoint write of a stage (test harness only; `None` in
    /// production). Only meaningful on checkpointed runs.
    #[serde(default)]
    pub fault_crash: Option<CrashPoint>,
    /// Fault-injection knob: poisons the compute pool handed to the MCTS
    /// ensemble stage so the given worker panics outside per-run
    /// supervision (test harness only; `None` in production).
    #[serde(default)]
    pub fault_pool_panic: Option<usize>,
}

/// Serde default for [`PlacerConfig::workers`]: inline single-worker pool.
fn default_workers() -> usize {
    1
}

impl PlacerConfig {
    /// The paper's configuration: ζ = 16, Table I network, c = 1.05.
    pub fn paper() -> Self {
        PlacerConfig {
            trainer: TrainerConfig::paper(),
            mcts: MctsConfig::default(),
            ensemble_runs: 1,
            workers: 1,
            final_placer: GlobalPlacerConfig::quality(),
            budget: RunBudget::default(),
            refine: None,
            fault_sp_failure: false,
            fault_ensemble_panic: None,
            fault_crash: None,
            fault_pool_panic: None,
        }
    }

    /// Laptop-scale configuration over a ζ×ζ grid: tiny network, short
    /// training, shallow search, fast final placement.
    pub fn fast(zeta: usize) -> Self {
        let mut trainer = TrainerConfig::tiny(zeta);
        // The coarse reward is only informative when cell groups carry real
        // positions, so the prototyping placement stays on even at laptop
        // scale.
        trainer.prototype_placement = true;
        PlacerConfig {
            trainer,
            mcts: MctsConfig {
                explorations: 16,
                ..MctsConfig::default()
            },
            ensemble_runs: 1,
            workers: 1,
            final_placer: GlobalPlacerConfig::fast(),
            budget: RunBudget::default(),
            refine: None,
            fault_sp_failure: false,
            fault_ensemble_panic: None,
            fault_crash: None,
            fault_pool_panic: None,
        }
    }

    /// The benchmark-harness configuration: the paper's flow (full
    /// legalize-and-place reward, prototyping placement) at a budget that
    /// runs in seconds per scaled circuit and reproduces the paper's
    /// quality ordering against the baselines.
    pub fn bench(zeta: usize) -> Self {
        let mut cfg = PlacerConfig::fast(zeta);
        cfg.trainer.coarse_eval = false;
        cfg.trainer.episodes = 400;
        cfg.trainer.update_every = 10;
        cfg.trainer.calibration_episodes = 20;
        cfg.mcts.explorations = 500;
        cfg
    }
}

/// Wall-clock spent per stage (Table IV reports the MCTS stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Preprocessing: prototyping placement + clustering.
    pub preprocess: Duration,
    /// RL pre-training.
    pub training: Duration,
    /// MCTS placement optimization.
    pub mcts: Duration,
    /// Legalization + final cell placement.
    pub finalize: Duration,
    /// Optional post-MCTS swap refinement (zero when the stage is off).
    pub refine: Duration,
    /// End-to-end wall-clock of [`MacroPlacer::place`]; at least the sum
    /// of the stage fields (the difference is inter-stage overhead).
    pub total: Duration,
}

impl StageTimings {
    /// Sum of the per-stage durations (excludes inter-stage overhead, so
    /// `stage_sum() <= total`).
    pub fn stage_sum(&self) -> Duration {
        self.preprocess + self.training + self.mcts + self.finalize + self.refine
    }
}

/// What the optional swap-refinement stage did (present in a
/// [`PlacementResult`] only when [`PlacerConfig::refine`] was set).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefineSummary {
    /// Full-netlist HPWL of the committed placement entering the stage.
    pub hpwl_before: f64,
    /// Full-netlist HPWL after refinement (`<= hpwl_before`: only strict
    /// improvements are committed).
    pub hpwl_after: f64,
    /// Proposals drawn from the seeded stream.
    pub proposed: usize,
    /// Proposals accepted (strict HPWL improvements).
    pub accepted: usize,
    /// Accepted pair-swaps.
    pub swaps: usize,
    /// Accepted single-macro relocations.
    pub relocations: usize,
}

/// Everything the flow returns.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The final legal mixed-size placement.
    pub placement: Placement,
    /// Its full-netlist HPWL (the metric of Tables II/III).
    pub hpwl: f64,
    /// The MCTS grid assignment per macro group.
    pub assignment: Vec<GridIndex>,
    /// RL training curves (Fig. 4 data).
    pub training: TrainingHistory,
    /// MCTS search-effort counters.
    pub mcts_stats: SearchStats,
    /// Per-stage wall-clock (Table IV data).
    pub timings: StageTimings,
    /// The trained agent (reusable for further searches).
    pub agent: Agent,
    /// Every graceful-degradation event the run took (empty on the
    /// full-quality path).
    pub degradation: DegradationReport,
    /// What checkpointing did (disabled/default on plain runs).
    pub checkpoint: CheckpointSummary,
    /// What the optional swap-refinement stage did (`None` when off).
    pub refine: Option<RefineSummary>,
}

/// The end-to-end placer (Algorithm 1).
#[derive(Debug, Clone)]
pub struct MacroPlacer {
    config: PlacerConfig,
    obs: Obs,
    checkpoints: Option<CheckpointPlan>,
    vfs: Vfs,
}

impl MacroPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        MacroPlacer {
            config,
            obs: Obs::off(),
            checkpoints: None,
            vfs: Vfs::real(),
        }
    }

    /// Attaches a checkpoint plan: the flow persists stage progress into
    /// the plan's directory and, when the plan resumes, continues from
    /// whatever checkpoints the directory holds. Checkpoint writes never
    /// change the computed placement — a checkpointed run is bitwise
    /// identical to a plain one, and an interrupted-then-resumed run is
    /// bitwise identical to an uninterrupted one.
    #[must_use]
    pub fn with_checkpoints(mut self, plan: CheckpointPlan) -> Self {
        self.checkpoints = Some(plan);
        self
    }

    /// Attaches an observability handle, propagated to every stage
    /// (trainer, search, legalizer, final placer).
    ///
    /// Instrumentation only reads flow state — placements are bitwise
    /// identical with or without a handle.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a filesystem handle, threaded through every checkpoint
    /// read and write. The default is the zero-overhead real backend;
    /// the disk-fault torture harness passes `mmp_vfs::Vfs::with_plan`
    /// handles to fail a chosen write boundary deterministically. Like
    /// the crash knob, this is a dev/test facility — it is not part of
    /// the serialized configuration and never affects the checkpoint
    /// fingerprint.
    #[must_use]
    pub fn with_vfs(mut self, vfs: Vfs) -> Self {
        self.vfs = vfs;
        self
    }

    /// The observability handle (an [`Obs::off`] handle by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Runs the full flow on `design`.
    ///
    /// Designs without movable macros (the `ibm05` case) skip the RL and
    /// MCTS stages and go straight to cell placement.
    ///
    /// When the config carries a [`RunBudget`], stages degrade gracefully
    /// as deadlines pass — training keeps its last-good weights, search
    /// falls back to policy-greedy allocation, legalization to row-greedy
    /// packing — and every fallback is recorded in the result's
    /// [`DegradationReport`]. A budgeted run therefore still returns
    /// `Ok` with a complete placement.
    ///
    /// # Errors
    ///
    /// A [`PlaceError`] naming the failed stage and its cause — e.g.
    /// [`PreprocessError::MacrosExceedRegion`] when the instance is
    /// trivially infeasible, or [`SearchError::NoRuns`] when
    /// `ensemble_runs` is 0.
    pub fn place(&self, design: &Design) -> Result<PlacementResult, PlaceError> {
        let start = budget::now();
        let run_deadline = self.config.budget.total.map(|d| start + d);
        let mut degradation = DegradationReport::default();

        // Stage 1: preprocessing — feasibility, then prototyping
        // placement + grouping + coarsening (inside Trainer::try_new).
        let macro_area = design.total_macro_area();
        let region_area = design.region().area();
        if macro_area > region_area {
            return Err(PlaceError::Preprocess(
                PreprocessError::MacrosExceedRegion {
                    macro_area,
                    region_area,
                },
            ));
        }
        if self.config.ensemble_runs == 0 {
            return Err(PlaceError::Search(SearchError::NoRuns));
        }
        // The deterministic compute pool every stage shares. Worker count
        // is validated up front so a bad configuration fails before any
        // work runs; the fault-injection knob poisons only the ensemble
        // stage's handle, never the pool the other stages use.
        let pool = mmp_pool::ThreadPool::try_new(self.config.workers)
            .map_err(|e| PlaceError::Preprocess(PreprocessError::Pool(e)))?;
        let mut summary = CheckpointSummary::default();
        let ckpt = match &self.checkpoints {
            Some(plan) => {
                summary.enabled = true;
                Some(CkptCtx::new(
                    plan,
                    fingerprint(design, &self.config),
                    self.config.fault_crash,
                    self.obs.clone(),
                    self.vfs.clone(),
                )?)
            }
            None => None,
        };
        let t0 = budget::now();
        let span = self.obs.span("stage.preprocess");
        let trainer =
            Trainer::try_new(design, self.config.trainer.clone())?.with_obs(self.obs.clone());
        drop(span);
        let preprocess = t0.elapsed();

        if design.movable_macros().is_empty() {
            // ibm05 path: nothing to allocate.
            let t3 = budget::now();
            let span = self.obs.span("stage.finalize");
            let out = GlobalPlacer::new(self.config.final_placer.clone())
                .with_obs(self.obs.clone())
                .with_pool(pool)
                .place_cells(design, &Placement::initial(design));
            drop(span);
            check_finite(&out.placement, design)?;
            if self.obs.enabled() {
                self.obs.gauge("flow.hpwl", out.hpwl);
            }
            if let Some(ck) = &ckpt {
                finish_checkpoint_summary(ck, &mut summary, &mut degradation);
            }
            return Ok(PlacementResult {
                placement: out.placement,
                hpwl: out.hpwl,
                assignment: Vec::new(),
                training: TrainingHistory::default(),
                mcts_stats: SearchStats::default(),
                timings: StageTimings {
                    preprocess,
                    finalize: t3.elapsed(),
                    total: start.elapsed(),
                    ..StageTimings::default()
                },
                agent: Agent::new(self.config.trainer.net),
                degradation,
                checkpoint: summary,
                refine: None,
            });
        }

        // Stage 2: pre-training by RL.
        let t1 = budget::now();
        let train_deadline = RunBudget::stage_deadline(run_deadline, t1, self.config.budget.train);
        let span = self.obs.span("stage.train");
        let outcome = match &ckpt {
            Some(ck) => {
                let done: Option<TrainDoneCkpt> = if ck.resume() {
                    ck.load(TRAIN_DONE)?
                } else {
                    None
                };
                match done {
                    Some(d) => {
                        summary.resumes.push("train-done".to_owned());
                        degradation.record(
                            Stage::Checkpoint,
                            "resumed past completed RL training (train-done.ckpt)",
                        );
                        TrainingOutcome {
                            agent: d.agent,
                            history: d.history,
                            scale: d.scale,
                            checkpoints: d.snapshots,
                        }
                    }
                    None => {
                        let partial: Option<TrainCheckpoint> = if ck.resume() {
                            ck.load(TRAIN_PARTIAL)?
                        } else {
                            None
                        };
                        if let Some(p) = &partial {
                            summary.resumes.push("train".to_owned());
                            degradation.record(
                                Stage::Checkpoint,
                                format!(
                                    "resumed RL training from train.ckpt at episode {}",
                                    p.episodes_done
                                ),
                            );
                        }
                        let mut sink =
                            |c: &TrainCheckpoint| ck.save(CrashStage::Train, TRAIN_PARTIAL, c);
                        let outcome =
                            trainer.train_resumable(train_deadline, partial, Some(&mut sink))?;
                        ck.save(
                            CrashStage::Train,
                            TRAIN_DONE,
                            &TrainDoneCkpt {
                                agent: outcome.agent.clone(),
                                history: outcome.history.clone(),
                                scale: outcome.scale.clone(),
                                snapshots: outcome.checkpoints.clone(),
                            },
                        )?;
                        outcome
                    }
                }
            }
            None => trainer.train_with_deadline(train_deadline)?,
        };
        drop(span);
        let training_time = t1.elapsed();
        if outcome.history.early_stopped {
            degradation.record(
                Stage::Train,
                format!(
                    "deadline expired after {} of {} episodes; kept last-good weights",
                    outcome.history.episode_rewards.len(),
                    self.config.trainer.episodes
                ),
            );
        }
        if outcome.history.rejected_updates > 0 {
            degradation.record(
                Stage::Train,
                format!(
                    "{} optimizer chunk(s) rejected by the gradient-health guard",
                    outcome.history.rejected_updates
                ),
            );
        }

        // Stage 3: placement optimization by MCTS (optionally an ensemble
        // of diversified parallel searches).
        let t2 = budget::now();
        let search_deadline =
            RunBudget::stage_deadline(run_deadline, t2, self.config.budget.search);
        let span = self.obs.span("stage.search");
        let done: Option<SearchDoneCkpt> = match &ckpt {
            Some(ck) if ck.resume() => ck.load(SEARCH_DONE)?,
            _ => None,
        };
        let search = if let Some(d) = done {
            summary.resumes.push("search-done".to_owned());
            degradation.record(
                Stage::Checkpoint,
                "resumed past completed MCTS search (search-done.ckpt)",
            );
            MctsOutcome {
                assignment: d.assignment,
                wirelength: d.wirelength,
                reward: d.reward,
                stats: d.stats,
            }
        } else {
            let search = if self.config.ensemble_runs > 1 {
                // Ensemble runs checkpoint at stage granularity only: the
                // workers race each other, so a mid-search snapshot of one
                // worker would not pin down the others.
                let ens = place_ensemble_with_deadline(
                    &trainer,
                    &outcome.agent,
                    &outcome.scale,
                    &EnsembleConfig {
                        runs: self.config.ensemble_runs,
                        base: self.config.mcts.clone(),
                        obs: self.obs.clone(),
                        fault_panic_worker: self.config.fault_ensemble_panic,
                        pool: pool.with_fault_panic_worker(self.config.fault_pool_panic),
                        ..EnsembleConfig::default()
                    },
                    search_deadline,
                )
                .map_err(SearchError::from)?;
                if !ens.panicked_runs.is_empty() {
                    degradation.record(
                        Stage::Search,
                        format!(
                            "ensemble worker(s) {:?} panicked and were dropped; \
                             kept best of {} surviving run(s)",
                            ens.panicked_runs,
                            ens.run_wirelengths.len()
                        ),
                    );
                }
                ens.best
            } else {
                let placer = MctsPlacer::new(self.config.mcts.clone()).with_obs(self.obs.clone());
                match &ckpt {
                    Some(ck) => {
                        let partial: Option<mmp_mcts::SearchCheckpoint> = if ck.resume() {
                            ck.load(SEARCH_PARTIAL)?
                        } else {
                            None
                        };
                        if let Some(p) = &partial {
                            summary.resumes.push("search".to_owned());
                            degradation.record(
                                Stage::Checkpoint,
                                format!(
                                    "resumed MCTS search from search.ckpt at group {}",
                                    p.groups_done
                                ),
                            );
                        }
                        let mut sink = |c: &mmp_mcts::SearchCheckpoint| {
                            ck.save(CrashStage::Search, SEARCH_PARTIAL, c)
                        };
                        let mut ctx = InferenceCtx::new().with_exec(pool);
                        placer.place_resumable(
                            &trainer,
                            &outcome.agent,
                            &outcome.scale,
                            &mut ctx,
                            search_deadline,
                            partial,
                            Some(&mut sink),
                        )?
                    }
                    None => {
                        let mut ctx = InferenceCtx::new().with_exec(pool);
                        placer.place_with_ctx_deadline(
                            &trainer,
                            &outcome.agent,
                            &outcome.scale,
                            &mut ctx,
                            search_deadline,
                        )
                    }
                }
            };
            if let Some(ck) = &ckpt {
                ck.save(
                    CrashStage::Search,
                    SEARCH_DONE,
                    &SearchDoneCkpt {
                        assignment: search.assignment.clone(),
                        wirelength: search.wirelength,
                        reward: search.reward,
                        stats: search.stats,
                    },
                )?;
            }
            search
        };
        drop(span);
        let mcts_time = t2.elapsed();
        if search.stats.deadline_expired {
            degradation.record(
                Stage::Search,
                format!(
                    "deadline expired; {} group(s) allocated policy-greedily",
                    search.stats.policy_greedy_groups
                ),
            );
        }
        if search.stats.nan_evaluations > 0 {
            degradation.record(
                Stage::Search,
                format!(
                    "{} network evaluation(s) returned non-finite outputs; \
                     replaced by uniform priors",
                    search.stats.nan_evaluations
                ),
            );
        }

        // Stage 4: legalization + final cell placement.
        let t3 = budget::now();
        let legalize_deadline =
            RunBudget::stage_deadline(run_deadline, t3, self.config.budget.legalize);
        let span = self.obs.span("stage.finalize");
        let mut legalizer = MacroLegalizer::new().with_obs(self.obs.clone());
        legalizer.force_sp_failure = self.config.fault_sp_failure;
        let legal = legalizer.legalize_with_deadline(
            design,
            trainer.coarse(),
            &search.assignment,
            trainer.grid(),
            legalize_deadline,
        )?;
        if legal.fallback_grid_cells > 0 {
            degradation.record(
                Stage::Legalize,
                format!(
                    "row-greedy fallback in {} grid cell(s)",
                    legal.fallback_grid_cells
                ),
            );
        }
        if legal.global_fallback {
            degradation.record(
                Stage::Legalize,
                "global pass replaced by the row-greedy packer",
            );
        }
        let out = GlobalPlacer::new(self.config.final_placer.clone())
            .with_obs(self.obs.clone())
            .with_pool(pool)
            .place_cells(design, &legal.placement);
        drop(span);
        let finalize = t3.elapsed();
        check_finite(&out.placement, design)?;

        // Stage 5 (optional): seeded swap/relocate refinement over the
        // committed placement. Acceptance is a strict full-netlist HPWL
        // improvement measured by the incremental evaluator, so the stage
        // can only keep or lower the committed wirelength.
        let mut placement = out.placement;
        let mut hpwl = out.hpwl;
        let mut refine_summary = None;
        let mut refine_time = Duration::default();
        if let Some(rcfg) = self.config.refine {
            let t4 = budget::now();
            let refine_deadline =
                RunBudget::stage_deadline(run_deadline, t4, self.config.budget.refine);
            let span = self.obs.span("stage.refine");
            let refined = SwapRefiner::new(rcfg).refine(design, &placement, refine_deadline);
            drop(span);
            refine_time = t4.elapsed();
            if refined.deadline_expired {
                degradation.record(
                    Stage::Refine,
                    format!(
                        "deadline expired after {} of {} proposal(s)",
                        refined.proposed, rcfg.moves
                    ),
                );
            }
            if self.obs.enabled() {
                self.obs.count("refine.moves", refined.proposed as u64);
                self.obs.count("refine.accepted", refined.accepted as u64);
            }
            refine_summary = Some(RefineSummary {
                hpwl_before: refined.hpwl_before,
                hpwl_after: refined.hpwl_after,
                proposed: refined.proposed,
                accepted: refined.accepted,
                swaps: refined.swaps,
                relocations: refined.relocations,
            });
            placement = refined.placement;
            hpwl = refined.hpwl_after;
            check_finite(&placement, design)?;
        }

        if self.obs.enabled() {
            self.obs.gauge("flow.hpwl", hpwl);
            if self.obs.tracing() {
                self.obs.event(
                    "flow",
                    "done",
                    &[
                        field("hpwl", hpwl),
                        field("degradations", degradation.events.len()),
                    ],
                );
            }
        }

        Ok(PlacementResult {
            placement,
            hpwl,
            assignment: search.assignment,
            training: outcome.history,
            mcts_stats: search.stats,
            timings: StageTimings {
                preprocess,
                training: training_time,
                mcts: mcts_time,
                finalize,
                refine: refine_time,
                total: start.elapsed(),
            },
            agent: outcome.agent,
            degradation: {
                if let Some(ck) = &ckpt {
                    finish_checkpoint_summary(ck, &mut summary, &mut degradation);
                }
                degradation
            },
            checkpoint: summary,
            refine: refine_summary,
        })
    }
}

/// Folds the checkpoint context's end-of-run state into the summary and
/// the degradation report: write counts, the disabled-mid-run flag, the
/// stale-temp sweep count, and every operator note (disk-full disable,
/// dir-fsync failure, sweep) as a `Stage::Checkpoint` degradation entry.
fn finish_checkpoint_summary(
    ck: &CkptCtx,
    summary: &mut CheckpointSummary,
    degradation: &mut DegradationReport,
) {
    summary.writes = ck.writes();
    summary.disabled = ck.disabled();
    summary.stale_tmp_removed = ck.stale_tmp_removed();
    for note in ck.take_notes() {
        degradation.record(Stage::Checkpoint, note);
    }
}

/// Numerical-health gate on the final placement: refuse to hand back (or
/// write out) coordinates that are not finite.
fn check_finite(placement: &Placement, design: &Design) -> Result<(), PlaceError> {
    let mut bad = 0usize;
    for i in 0..design.macros().len() {
        let c = placement.macro_center(mmp_netlist::MacroId::from_index(i));
        if !c.x.is_finite() || !c.y.is_finite() {
            bad += 1;
        }
    }
    for i in 0..design.cells().len() {
        let c = placement.cell_center(mmp_netlist::CellId::from_index(i));
        if !c.x.is_finite() || !c.y.is_finite() {
            bad += 1;
        }
    }
    if bad > 0 {
        return Err(PlaceError::FinalPlace(
            FinalPlaceError::NonFinitePlacement { nodes: bad },
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;

    fn fast_config() -> PlacerConfig {
        let mut cfg = PlacerConfig::fast(4);
        cfg.trainer.episodes = 4;
        cfg.mcts.explorations = 6;
        cfg
    }

    #[test]
    fn full_flow_produces_legal_placement() {
        let d = SyntheticSpec::small("flow", 6, 1, 8, 50, 90, true, 1).generate();
        let result = MacroPlacer::new(fast_config()).place(&d).unwrap();
        assert!(result.hpwl > 0.0);
        assert!(result.placement.macro_overlap_area(&d) < 1e-6);
        assert_eq!(result.training.episode_rewards.len(), 4);
        assert!(result.mcts_stats.explorations > 0);
        assert!(!result.assignment.is_empty());
    }

    #[test]
    fn flow_is_deterministic() {
        let d = SyntheticSpec::small("det", 5, 0, 8, 40, 70, false, 2).generate();
        let placer = MacroPlacer::new(fast_config());
        let a = placer.place(&d).unwrap();
        let b = placer.place(&d).unwrap();
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn multi_worker_flow_matches_single_worker_bitwise() {
        let d = SyntheticSpec::small("poolflow", 5, 0, 8, 40, 70, false, 2).generate();
        let baseline = MacroPlacer::new(fast_config()).place(&d).unwrap();
        let mut cfg = fast_config();
        cfg.workers = 4;
        let pooled = MacroPlacer::new(cfg).place(&d).unwrap();
        assert_eq!(pooled.hpwl.to_bits(), baseline.hpwl.to_bits());
        assert_eq!(pooled.assignment, baseline.assignment);
        for i in 0..baseline.placement.macro_count() {
            let (a, b) = (
                pooled
                    .placement
                    .macro_center(mmp_netlist::MacroId(i as u32)),
                baseline
                    .placement
                    .macro_center(mmp_netlist::MacroId(i as u32)),
            );
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "macro {i} x drifted");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "macro {i} y drifted");
        }
        for i in 0..baseline.placement.cell_count() {
            let (a, b) = (
                pooled.placement.cell_center(mmp_netlist::CellId(i as u32)),
                baseline
                    .placement
                    .cell_center(mmp_netlist::CellId(i as u32)),
            );
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "cell {i} x drifted");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "cell {i} y drifted");
        }
    }

    #[test]
    fn bad_worker_count_is_a_typed_preprocess_error() {
        let d = SyntheticSpec::small("poolbad", 5, 0, 8, 40, 70, false, 2).generate();
        for workers in [0usize, mmp_pool::MAX_WORKERS + 1] {
            let mut cfg = fast_config();
            cfg.workers = workers;
            let err = MacroPlacer::new(cfg).place(&d).unwrap_err();
            assert!(
                matches!(err, PlaceError::Preprocess(PreprocessError::Pool(_))),
                "workers={workers}: got {err}"
            );
            assert_eq!(err.exit_code(), 10);
            assert!(!err.is_transient());
        }
    }

    #[test]
    fn config_without_workers_field_deserializes_to_one() {
        // Forward compatibility: configs serialized before the pool existed
        // must keep loading — and land on the inline single-worker pool,
        // not on an invalid zero.
        let json = serde_json::to_string(&PlacerConfig::fast(4)).unwrap();
        assert!(json.contains("\"workers\":1"), "precondition: {json}");
        // Renaming the keys makes the deserializer see them as absent
        // (unknown keys are ignored).
        let json = json
            .replace("\"workers\"", "\"pre_pool_workers\"")
            .replace("\"fault_pool_panic\"", "\"pre_pool_fault\"");
        let cfg: PlacerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.fault_pool_panic, None);
    }

    #[test]
    fn zero_macro_design_skips_rl_and_mcts() {
        let d = SyntheticSpec::small("ibm05", 0, 0, 8, 60, 90, false, 3).generate();
        let result = MacroPlacer::new(fast_config()).place(&d).unwrap();
        assert!(result.assignment.is_empty());
        assert_eq!(result.mcts_stats.explorations, 0);
        assert!(result.hpwl > 0.0);
    }

    #[test]
    fn infeasible_design_is_rejected() {
        use mmp_geom::{Point, Rect};
        let mut b = mmp_netlist::DesignBuilder::new("inf", Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_macro("m0", 9.0, 9.0, "");
        b.add_macro("m1", 9.0, 9.0, "");
        let p = b.add_pad("p", Point::new(0.0, 0.0));
        b.add_net(
            "n",
            [
                (mmp_netlist::MacroId(0).into(), Point::ORIGIN),
                (p.into(), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let err = MacroPlacer::new(fast_config()).place(&d).unwrap_err();
        assert!(matches!(
            err,
            PlaceError::Preprocess(PreprocessError::MacrosExceedRegion { .. })
        ));
        assert!(err.to_string().contains("macro area"));
        assert_eq!(err.exit_code(), 10);
        assert_eq!(err.stage(), Stage::Preprocess);
    }

    #[test]
    fn zero_ensemble_runs_is_a_typed_search_error() {
        let d = SyntheticSpec::small("nr", 5, 0, 8, 40, 70, false, 2).generate();
        let mut cfg = fast_config();
        cfg.ensemble_runs = 0;
        let err = MacroPlacer::new(cfg).place(&d).unwrap_err();
        assert_eq!(err, PlaceError::Search(SearchError::NoRuns));
        assert_eq!(err.exit_code(), 12);
    }

    #[test]
    fn unbudgeted_run_reports_no_degradation() {
        let d = SyntheticSpec::small("clean", 5, 0, 8, 40, 70, false, 3).generate();
        let result = MacroPlacer::new(fast_config()).place(&d).unwrap();
        assert!(result.degradation.is_empty(), "{}", result.degradation);
    }

    #[test]
    fn refine_stage_never_raises_hpwl_and_reports_a_summary() {
        let d = SyntheticSpec::small("rf", 6, 1, 8, 50, 90, true, 1).generate();
        let base = MacroPlacer::new(fast_config()).place(&d).unwrap();
        let mut cfg = fast_config();
        cfg.refine = Some(SwapRefineConfig {
            moves: 128,
            seed: 7,
        });
        let refined = MacroPlacer::new(cfg).place(&d).unwrap();
        let summary = refined.refine.unwrap();
        // The stage enters at the committed placement's exact HPWL (the
        // incremental evaluator is bitwise-equal to Placement::hpwl)...
        assert_eq!(summary.hpwl_before.to_bits(), base.hpwl.to_bits());
        // ...and only strict improvements are committed.
        assert!(summary.hpwl_after <= summary.hpwl_before);
        assert_eq!(refined.hpwl.to_bits(), summary.hpwl_after.to_bits());
        assert_eq!(summary.proposed, 128);
        assert_eq!(summary.accepted, summary.swaps + summary.relocations);
        assert!(refined.placement.macro_overlap_area(&d) < 1e-6);
        assert!(refined.placement.macros_inside_region(&d));
        assert!(base.refine.is_none(), "refine off must not report");
    }

    #[test]
    fn refine_run_is_deterministic() {
        let d = SyntheticSpec::small("rfd", 5, 0, 8, 40, 70, false, 2).generate();
        let mut cfg = fast_config();
        cfg.refine = Some(SwapRefineConfig::default());
        let placer = MacroPlacer::new(cfg);
        let a = placer.place(&d).unwrap();
        let b = placer.place(&d).unwrap();
        assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.refine, b.refine);
    }

    #[test]
    fn zero_refine_budget_degrades_and_keeps_the_committed_placement() {
        let d = SyntheticSpec::small("rfz", 6, 1, 8, 50, 90, true, 1).generate();
        let base = MacroPlacer::new(fast_config()).place(&d).unwrap();
        let mut cfg = fast_config();
        cfg.refine = Some(SwapRefineConfig::default());
        cfg.budget.refine = Some(Duration::ZERO);
        let result = MacroPlacer::new(cfg).place(&d).unwrap();
        assert!(result.degradation.affects(Stage::Refine));
        let summary = result.refine.unwrap();
        assert_eq!(summary.proposed, 0);
        assert_eq!(summary.accepted, 0);
        // Nothing accepted: the committed placement and its exact HPWL
        // pass through untouched.
        assert_eq!(result.hpwl.to_bits(), base.hpwl.to_bits());
        assert_eq!(result.placement, base.placement);
    }

    #[test]
    fn legalizer_rescue_is_reported_and_stays_in_region() {
        // Seed 2 drives the global legalization pass into its
        // guaranteed-termination packing, which historically could leave a
        // macro outside the region with no trace. The hardened flow must
        // instead deliver a contained, overlap-free placement and own up to
        // the fallback in the degradation report.
        let d = SyntheticSpec::small("clean", 5, 0, 8, 40, 70, false, 2).generate();
        let result = MacroPlacer::new(fast_config()).place(&d).unwrap();
        assert!(result.placement.macros_inside_region(&d));
        assert!(result.placement.macro_overlap_area(&d) < 1e-6);
        assert!(result
            .degradation
            .degraded_stages()
            .contains(&Stage::Legalize));
    }

    #[test]
    fn zero_budget_run_degrades_but_still_places_legally() {
        let d = SyntheticSpec::small("zb", 6, 1, 8, 50, 90, true, 1).generate();
        let mut cfg = fast_config();
        cfg.budget = RunBudget::with_total(Duration::ZERO);
        let result = MacroPlacer::new(cfg).place(&d).unwrap();
        let stages = result.degradation.degraded_stages();
        assert!(stages.contains(&Stage::Train), "stages: {stages:?}");
        assert!(stages.contains(&Stage::Search), "stages: {stages:?}");
        assert!(stages.contains(&Stage::Legalize), "stages: {stages:?}");
        // Degraded, but complete and legal.
        assert!(!result.assignment.is_empty());
        assert!(result.placement.macro_overlap_area(&d) < 1e-6);
        assert!(result.hpwl.is_finite() && result.hpwl > 0.0);
    }

    #[test]
    fn zero_budget_run_is_deterministic() {
        let d = SyntheticSpec::small("zbd", 5, 0, 8, 40, 70, false, 3).generate();
        let mut cfg = fast_config();
        cfg.budget = RunBudget::with_total(Duration::ZERO);
        let placer = MacroPlacer::new(cfg);
        let a = placer.place(&d).unwrap();
        let b = placer.place(&d).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(
            a.degradation.degraded_stages(),
            b.degradation.degraded_stages()
        );
    }

    #[test]
    fn injected_sp_failure_degrades_legalization_only() {
        let d = SyntheticSpec::small("spf", 6, 0, 8, 50, 90, false, 4).generate();
        let mut cfg = fast_config();
        cfg.fault_sp_failure = true;
        let result = MacroPlacer::new(cfg).place(&d).unwrap();
        assert!(result.degradation.affects(Stage::Legalize));
        assert!(!result.degradation.affects(Stage::Train));
        assert!(!result.degradation.affects(Stage::Search));
        assert!(result.placement.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn per_stage_budget_only_degrades_that_stage() {
        let d = SyntheticSpec::small("tb", 5, 0, 8, 40, 70, false, 2).generate();
        let mut cfg = fast_config();
        cfg.budget.train = Some(Duration::ZERO);
        let result = MacroPlacer::new(cfg).place(&d).unwrap();
        assert!(result.degradation.affects(Stage::Train));
        assert!(!result.degradation.affects(Stage::Search));
        assert!(!result.degradation.affects(Stage::Legalize));
        assert!(result.placement.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn ensemble_flow_matches_or_beats_single_search() {
        let d = SyntheticSpec::small("ens_flow", 6, 0, 8, 50, 90, false, 5).generate();
        let mut single_cfg = fast_config();
        single_cfg.mcts.explorations = 8;
        let single = MacroPlacer::new(single_cfg.clone()).place(&d).unwrap();
        let mut ens_cfg = single_cfg;
        ens_cfg.ensemble_runs = 3;
        let ens = MacroPlacer::new(ens_cfg).place(&d).unwrap();
        // Run 0 of the ensemble is the noise-free search, so the ensemble's
        // *assignment-level* score cannot be worse; the final HPWL after
        // cell placement tracks it closely.
        assert!(ens.hpwl <= single.hpwl * 1.05);
        assert!(ens.placement.macro_overlap_area(&d) < 1e-6);
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mmp-flow-ckpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_run_is_bitwise_identical_to_a_plain_run() {
        let d = SyntheticSpec::small("ckpt_eq", 5, 0, 8, 40, 70, false, 2).generate();
        let cfg = fast_config();
        let plain = MacroPlacer::new(cfg.clone()).place(&d).unwrap();
        let dir = ckpt_dir("eq");
        let ck = MacroPlacer::new(cfg)
            .with_checkpoints(crate::checkpoint::CheckpointPlan::new(&dir))
            .place(&d)
            .unwrap();
        assert_eq!(ck.hpwl, plain.hpwl);
        assert_eq!(ck.assignment, plain.assignment);
        assert_eq!(ck.mcts_stats, plain.mcts_stats);
        assert!(ck.checkpoint.enabled);
        assert!(ck.checkpoint.resumes.is_empty());
        assert!(
            ck.checkpoint.writes >= 2,
            "writes: {}",
            ck.checkpoint.writes
        );
        assert!(!plain.checkpoint.enabled);
        assert!(dir.join(TRAIN_DONE).exists());
        assert!(dir.join(SEARCH_DONE).exists());
    }

    #[test]
    fn kill_mid_train_then_resume_is_bitwise_identical() {
        let d = SyntheticSpec::small("ckpt_kt", 5, 0, 8, 40, 70, false, 3).generate();
        let mut cfg = fast_config();
        cfg.trainer.episodes = 6;
        cfg.trainer.update_every = 2;
        let baseline = MacroPlacer::new(cfg.clone()).place(&d).unwrap();

        let dir = ckpt_dir("kt");
        let mut crash_cfg = cfg.clone();
        crash_cfg.fault_crash = Some(CrashPoint::after_train_writes(1));
        let err = MacroPlacer::new(crash_cfg)
            .with_checkpoints(crate::checkpoint::CheckpointPlan::new(&dir))
            .place(&d)
            .unwrap_err();
        assert_eq!(err.exit_code(), 16, "{err}");
        assert!(dir.join(TRAIN_PARTIAL).exists());
        assert!(!dir.join(TRAIN_DONE).exists());

        let resumed = MacroPlacer::new(cfg)
            .with_checkpoints(crate::checkpoint::CheckpointPlan::resume(&dir))
            .place(&d)
            .unwrap();
        assert_eq!(resumed.hpwl, baseline.hpwl);
        assert_eq!(resumed.assignment, baseline.assignment);
        assert_eq!(resumed.training, baseline.training);
        assert_eq!(resumed.checkpoint.resumes, vec!["train".to_owned()]);
        assert!(resumed.degradation.affects(Stage::Checkpoint));
    }

    #[test]
    fn kill_mid_search_then_resume_is_bitwise_identical() {
        let d = SyntheticSpec::small("ckpt_ks", 6, 0, 8, 50, 90, false, 4).generate();
        let cfg = fast_config();
        let baseline = MacroPlacer::new(cfg.clone()).place(&d).unwrap();

        let dir = ckpt_dir("ks");
        let mut crash_cfg = cfg.clone();
        crash_cfg.fault_crash = Some(CrashPoint::after_search_writes(1));
        let err = MacroPlacer::new(crash_cfg)
            .with_checkpoints(crate::checkpoint::CheckpointPlan::new(&dir))
            .place(&d)
            .unwrap_err();
        assert_eq!(err.exit_code(), 16, "{err}");
        assert!(dir.join(TRAIN_DONE).exists());
        assert!(dir.join(SEARCH_PARTIAL).exists());
        assert!(!dir.join(SEARCH_DONE).exists());

        let resumed = MacroPlacer::new(cfg)
            .with_checkpoints(crate::checkpoint::CheckpointPlan::resume(&dir))
            .place(&d)
            .unwrap();
        assert_eq!(resumed.hpwl, baseline.hpwl);
        assert_eq!(resumed.assignment, baseline.assignment);
        assert_eq!(resumed.mcts_stats, baseline.mcts_stats);
        assert_eq!(
            resumed.checkpoint.resumes,
            vec!["train-done".to_owned(), "search".to_owned()]
        );
    }

    #[test]
    fn resume_of_a_completed_run_skips_every_stage() {
        let d = SyntheticSpec::small("ckpt_skip", 5, 0, 8, 40, 70, false, 2).generate();
        let cfg = fast_config();
        let dir = ckpt_dir("skip");
        let first = MacroPlacer::new(cfg.clone())
            .with_checkpoints(crate::checkpoint::CheckpointPlan::new(&dir))
            .place(&d)
            .unwrap();
        let resumed = MacroPlacer::new(cfg)
            .with_checkpoints(crate::checkpoint::CheckpointPlan::resume(&dir))
            .place(&d)
            .unwrap();
        assert_eq!(resumed.hpwl, first.hpwl);
        assert_eq!(resumed.assignment, first.assignment);
        assert_eq!(
            resumed.checkpoint.resumes,
            vec!["train-done".to_owned(), "search-done".to_owned()]
        );
        // Nothing re-ran, so the resumed run wrote nothing new.
        assert_eq!(resumed.checkpoint.writes, 0);
    }

    #[test]
    fn resume_against_a_different_config_is_a_typed_checkpoint_error() {
        let d = SyntheticSpec::small("ckpt_fp", 5, 0, 8, 40, 70, false, 2).generate();
        let dir = ckpt_dir("fp");
        MacroPlacer::new(fast_config())
            .with_checkpoints(crate::checkpoint::CheckpointPlan::new(&dir))
            .place(&d)
            .unwrap();
        let mut other = fast_config();
        other.trainer.episodes += 1;
        let err = MacroPlacer::new(other)
            .with_checkpoints(crate::checkpoint::CheckpointPlan::resume(&dir))
            .place(&d)
            .unwrap_err();
        assert_eq!(err.exit_code(), 16, "{err}");
        assert_eq!(err.stage(), Stage::Checkpoint);
        assert!(err.to_string().contains("different design"));
    }

    #[test]
    fn panicking_ensemble_worker_degrades_but_completes() {
        let d = SyntheticSpec::small("ens_panic", 6, 0, 8, 50, 90, false, 5).generate();
        let mut cfg = fast_config();
        cfg.mcts.explorations = 8;
        cfg.ensemble_runs = 3;
        cfg.fault_ensemble_panic = Some(1);
        let result = MacroPlacer::new(cfg).place(&d).unwrap();
        assert!(result.degradation.affects(Stage::Search));
        assert!(result
            .degradation
            .events
            .iter()
            .any(|e| e.detail.contains("panicked")));
        assert!(result.hpwl.is_finite() && result.hpwl > 0.0);
        assert!(result.placement.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn timings_are_recorded() {
        let d = SyntheticSpec::small("time", 5, 0, 8, 40, 70, false, 4).generate();
        let result = MacroPlacer::new(fast_config()).place(&d).unwrap();
        assert!(result.timings.mcts > Duration::ZERO);
        assert!(result.timings.training > Duration::ZERO);
    }
}
