#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Placement-as-a-service: the library behind the `mmpd` daemon.
//!
//! The paper's flow is train-once, serve-many; this crate turns the
//! single-shot [`mmp_core::MacroPlacer`] into a long-running service that
//! survives failure instead of merely reporting it. The transport is
//! deliberately minimal — newline-delimited JSON over TCP, hand-rolled
//! like `mmp-obs`/`mmp-ckpt`, no HTTP crates — because robustness is the
//! headline, not the protocol:
//!
//! - **Admission control** ([`queue`], [`daemon`]): a bounded job queue
//!   plus request-size, design-size and budget caps. Over-capacity or
//!   over-budget work gets a typed [`ServeError`] rejection, never
//!   unbounded memory.
//! - **Per-job timeouts**: a request's `budget_ms` flows into the
//!   existing [`mmp_core::RunBudget`] degradation ladder, so a budgeted
//!   job still returns a complete (if cruder) placement.
//! - **Retry with deterministic capped backoff** ([`backoff`]): failures
//!   classed transient by [`mmp_core::PlaceError::is_transient`] are
//!   retried — resuming from the job's own checkpoints — with a delay
//!   that is a pure function of the attempt number. Jobs that stay
//!   transient past the attempt cap are quarantined, not retried forever.
//! - **Checkpoint-backed recovery** ([`journal`]): every accepted job is
//!   journaled before it is queued, and every job runs under a
//!   `mmp-ckpt` checkpoint ladder. On daemon restart the journal is
//!   replayed: finished jobs keep their stored reports, interrupted jobs
//!   resume **bitwise-identically** via the PR-4 machinery.
//! - **Graceful shutdown**: a `shutdown` request rejects new work, drains
//!   everything already admitted, and exits cleanly.
//!
//! The response for a completed job is the existing
//! [`mmp_core::RunReport`] JSON extended with a [`protocol::JobSummary`]
//! (attempts, queue wait, recovery events) and the exact macro
//! coordinates (including their `f64::to_bits` images, so bitwise
//! identity is checkable across processes).

pub mod backoff;
mod clock;
pub mod daemon;
pub mod error;
pub mod journal;
pub mod protocol;
pub mod queue;

pub use backoff::BackoffConfig;
pub use daemon::{ServeConfig, Server};
// Re-exported so callers configuring `ServeConfig::fault_io` (and the
// torture harness using `Server::start_with_vfs`) need no direct
// mmp-vfs dependency.
pub use error::ServeError;
pub use mmp_vfs::{FailPlan, FaultKind, OpKind, Vfs};
pub use protocol::{DesignSpec, JobDefaults, JobRequest, JobSummary, Op};
pub use queue::JobQueue;
