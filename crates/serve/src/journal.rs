//! The daemon's on-disk job journal: the recovery half of the tentpole.
//!
//! Layout under the state directory:
//!
//! ```text
//! state/
//!   jobs/<id>/request.ckpt   accepted request (written BEFORE queueing)
//!   jobs/<id>/ckpt/          the job's mmp-ckpt checkpoint ladder
//!   jobs/<id>/report.ckpt    final response line (written on completion)
//! ```
//!
//! Every file is an `mmp-ckpt` envelope (magic, version, FNV header
//! check, CRC payload check, atomic temp→fsync→rename), so a daemon
//! killed mid-write leaves either the previous state or the new one —
//! never garbage the next life would trip over. On restart,
//! [`scan`] classifies each job directory: a readable `report.ckpt`
//! means the job finished (keep the stored response); a readable
//! `request.ckpt` without one means the job was interrupted and must be
//! re-run — resuming from whatever its `ckpt/` ladder holds, which is
//! what makes recovery bitwise-identical rather than merely eventual.

use crate::error::ServeError;
use crate::protocol::{valid_id, JobRequest};
use serde::{map_get, Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};

fn internal(what: &str, path: &Path, detail: impl std::fmt::Display) -> ServeError {
    ServeError::Internal {
        detail: format!("{what} {}: {detail}", path.display()),
    }
}

/// The daemon's state directory handle.
#[derive(Debug, Clone)]
pub struct Journal {
    root: PathBuf,
}

/// One journaled job found by [`Journal::scan`].
#[derive(Debug, Clone)]
pub struct ScannedJob {
    /// The job id (directory name).
    pub id: String,
    /// Admission sequence number (replay order).
    pub seq: u64,
    /// The accepted request.
    pub request: JobRequest,
    /// The stored final response line, when the job finished.
    pub report_line: Option<String>,
}

impl Journal {
    /// Opens (creating if needed) the journal under `root`.
    pub fn open(root: &Path) -> Result<Self, ServeError> {
        let jobs = root.join("jobs");
        fs::create_dir_all(&jobs).map_err(|e| internal("create state dir", &jobs, e))?;
        Ok(Journal {
            root: root.to_path_buf(),
        })
    }

    /// The directory holding one job's files.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        debug_assert!(valid_id(id), "journal paths require validated ids");
        self.root.join("jobs").join(id)
    }

    /// The job's checkpoint-ladder directory (handed to
    /// `MacroPlacer::with_checkpoints`).
    pub fn ckpt_dir(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("ckpt")
    }

    fn request_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("request.ckpt")
    }

    fn report_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("report.ckpt")
    }

    /// `true` when the journal already holds a job directory for `id`.
    pub fn contains(&self, id: &str) -> bool {
        self.request_path(id).is_file()
    }

    /// Journals an accepted request (with its admission sequence number)
    /// before the job is queued. Crash-atomic: a daemon killed here
    /// either never accepted the job or will replay it on restart.
    pub fn record_request(&self, id: &str, seq: u64, req: &JobRequest) -> Result<(), ServeError> {
        let dir = self.ckpt_dir(id);
        fs::create_dir_all(&dir).map_err(|e| internal("create job dir", &dir, e))?;
        let entry = Value::Map(vec![
            ("id".to_owned(), Value::Str(id.to_owned())),
            ("seq".to_owned(), Value::U64(seq)),
            ("request".to_owned(), req.to_value()),
        ]);
        let path = self.request_path(id);
        mmp_ckpt::write(&path, crate::protocol::render(&entry).as_bytes())
            .map_err(|e| internal("journal request", &path, e))
    }

    /// Stores a job's final response line; its presence is what marks the
    /// job complete to future daemon lives.
    pub fn record_report(&self, id: &str, line: &str) -> Result<(), ServeError> {
        let path = self.report_path(id);
        mmp_ckpt::write(&path, line.as_bytes()).map_err(|e| internal("journal report", &path, e))
    }

    /// Reads back a stored final response line, if the job completed.
    pub fn read_report(&self, id: &str) -> Result<Option<String>, ServeError> {
        let path = self.report_path(id);
        match mmp_ckpt::read_opt(&path) {
            Ok(Some(bytes)) => String::from_utf8(bytes)
                .map(Some)
                .map_err(|e| internal("decode report", &path, e)),
            Ok(None) => Ok(None),
            Err(e) => Err(internal("read report", &path, e)),
        }
    }

    /// Removes a job's directory (admission rollback: the queue was full
    /// after the request was journaled, so the job never existed).
    pub fn forget(&self, id: &str) {
        let _ = fs::remove_dir_all(self.job_dir(id));
    }

    /// Walks the journal and returns every job in admission (`seq`)
    /// order. Jobs whose `request.ckpt` is unreadable or unparsable are
    /// reported in the second list — a robust daemon quarantines damage
    /// and keeps serving rather than refusing to start.
    pub fn scan(&self) -> Result<(Vec<ScannedJob>, Vec<String>), ServeError> {
        let jobs_dir = self.root.join("jobs");
        let mut jobs = Vec::new();
        let mut damaged = Vec::new();
        let entries =
            fs::read_dir(&jobs_dir).map_err(|e| internal("scan state dir", &jobs_dir, e))?;
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort_unstable(); // deterministic scan order before seq sort
        for id in names {
            if !valid_id(&id) {
                damaged.push(id);
                continue;
            }
            match self.scan_one(&id) {
                Ok(job) => jobs.push(job),
                Err(_) => damaged.push(id),
            }
        }
        jobs.sort_by_key(|j| j.seq);
        Ok((jobs, damaged))
    }

    fn scan_one(&self, id: &str) -> Result<ScannedJob, ServeError> {
        let path = self.request_path(id);
        let bytes = mmp_ckpt::read(&path).map_err(|e| internal("read request", &path, e))?;
        let text = String::from_utf8(bytes).map_err(|e| internal("decode request", &path, e))?;
        let entry = serde_json::parse_value(&text)
            .map_err(|e| internal("parse request entry", &path, e))?;
        let seq = map_get(&entry, "seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| internal("parse request entry", &path, "missing seq"))?;
        let req_value = map_get(&entry, "request")
            .ok_or_else(|| internal("parse request entry", &path, "missing request"))?;
        let request = JobRequest::parse(&crate::protocol::render(req_value))?;
        // The stored id must match the directory: a renamed job dir is
        // damage, not a different job.
        match map_get(&entry, "id") {
            Some(Value::Str(s)) if s == id => {}
            _ => return Err(internal("parse request entry", &path, "id mismatch")),
        }
        let report_line = self.read_report(id)?;
        Ok(ScannedJob {
            id: id.to_owned(),
            seq,
            request,
            report_line,
        })
    }

    /// Copies a donor `train-done.ckpt` into a job's ladder so the flow
    /// skips training entirely (the daemon's trained-policy cache). The
    /// copy goes through read→write so the destination is a freshly
    /// checksummed atomic envelope, not a raw byte copy of a file another
    /// job may be rewriting.
    pub fn seed_train_done(&self, donor: &Path, id: &str) -> Result<(), ServeError> {
        let payload =
            mmp_ckpt::read(donor).map_err(|e| internal("read donor checkpoint", donor, e))?;
        let dir = self.ckpt_dir(id);
        fs::create_dir_all(&dir).map_err(|e| internal("create job dir", &dir, e))?;
        let dst = dir.join("train-done.ckpt");
        mmp_ckpt::write(&dst, &payload).map_err(|e| internal("seed checkpoint", &dst, e))
    }

    /// The path a completed job's reusable trained policy lives at.
    pub fn train_done_path(&self, id: &str) -> PathBuf {
        self.ckpt_dir(id).join("train-done.ckpt")
    }
}

/// Renders the stored-report envelope for [`Journal::record_report`]
/// callers that hold a structured response.
pub fn render_line<T: Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "null".to_owned())
}

#[cfg(test)]
// why: the damage test plants a deliberately non-envelope file; production
// journal state always goes through the atomic mmp_ckpt writer above.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::protocol::Op;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmp-serve-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn req(id: &str) -> JobRequest {
        JobRequest::parse(&format!(
            r#"{{"op":"submit","id":"{id}","design":{{"spec":[5,0,8,40,70],"seed":1}},"episodes":4}}"#
        ))
        .unwrap()
    }

    #[test]
    fn scan_replays_requests_in_admission_order() {
        let root = tmp("order");
        let j = Journal::open(&root).unwrap();
        // Admission order deliberately disagrees with lexicographic order.
        j.record_request("zz", 1, &req("zz")).unwrap();
        j.record_request("aa", 2, &req("aa")).unwrap();
        j.record_request("mm", 3, &req("mm")).unwrap();
        j.record_report("aa", r#"{"ok":true}"#).unwrap();

        let (jobs, damaged) = j.scan().unwrap();
        assert!(damaged.is_empty());
        let ids: Vec<&str> = jobs.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, ["zz", "aa", "mm"], "seq order, not name order");
        assert!(jobs[0].report_line.is_none(), "zz was interrupted");
        assert_eq!(jobs[1].report_line.as_deref(), Some(r#"{"ok":true}"#));
        assert_eq!(jobs[0].request.op, Op::Submit);
        assert_eq!(jobs[0].request, req("zz"), "request round-trips exactly");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn damaged_entries_are_quarantined_not_fatal() {
        let root = tmp("damage");
        let j = Journal::open(&root).unwrap();
        j.record_request("good", 1, &req("good")).unwrap();
        // A job dir whose request envelope is corrupt.
        let bad = j.job_dir("bad");
        fs::create_dir_all(&bad).unwrap();
        fs::write(bad.join("request.ckpt"), b"not an envelope").unwrap();
        // A job dir with no request at all.
        fs::create_dir_all(j.job_dir("empty")).unwrap();

        let (jobs, mut damaged) = j.scan().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, "good");
        damaged.sort();
        assert_eq!(damaged, ["bad", "empty"]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn forget_rolls_back_an_admission() {
        let root = tmp("forget");
        let j = Journal::open(&root).unwrap();
        j.record_request("j1", 1, &req("j1")).unwrap();
        assert!(j.contains("j1"));
        j.forget("j1");
        assert!(!j.contains("j1"));
        let (jobs, damaged) = j.scan().unwrap();
        assert!(jobs.is_empty() && damaged.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn seeded_train_done_round_trips_payload_bytes() {
        let root = tmp("seed");
        let j = Journal::open(&root).unwrap();
        let donor = root.join("donor.ckpt");
        mmp_ckpt::write(&donor, b"policy-bytes").unwrap();
        j.record_request("j1", 1, &req("j1")).unwrap();
        j.seed_train_done(&donor, "j1").unwrap();
        let got = mmp_ckpt::read(&j.train_done_path("j1")).unwrap();
        assert_eq!(got, b"policy-bytes");
        let _ = fs::remove_dir_all(&root);
    }
}
