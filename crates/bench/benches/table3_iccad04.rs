//! Criterion bench for Table III: the full placement flow and each
//! contender on a tiny ibm01-like circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use mmp_baselines::{MacroPlacer as _, MaskPlaceLike, ReplaceLike};
use mmp_core::{MacroPlacer, PlacerConfig};

fn bench_contenders(c: &mut Criterion) {
    let spec = mmp_core::iccad04_suite()[0].scaled(0.001);
    let design = spec.generate();

    let mut group = c.benchmark_group("table3_iccad04");
    group.sample_size(10);
    group.bench_function("ours_full_flow", |b| {
        b.iter(|| {
            let mut cfg = PlacerConfig::fast(8);
            cfg.trainer.episodes = 5;
            cfg.mcts.explorations = 8;
            let result = MacroPlacer::new(cfg).place(&design).expect("feasible");
            criterion::black_box(result.hpwl)
        });
    });
    group.bench_function("maskplace_like", |b| {
        b.iter(|| {
            let pl = MaskPlaceLike::new(16).place_macros(&design);
            criterion::black_box(pl.macro_count())
        });
    });
    group.bench_function("replace_like", |b| {
        b.iter(|| {
            let pl = ReplaceLike::new().place_macros(&design);
            criterion::black_box(pl.macro_count())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_contenders);
criterion_main!(benches);
