//! Shootout: the MMP flow against every baseline placer on a few
//! synthetic circuits (a miniature Table III).
//!
//! ```sh
//! cargo run --release -p mmp-examples --bin placer_shootout
//! ```

use mmp_baselines::{
    score_hpwl, AnalyticOnly, MacroPlacer as Baseline, MaskPlaceLike, RandomPlacer, ReplaceLike,
    SaPlacer, SePlacer,
};
use mmp_core::{normalize_rows, MacroPlacer, PlacerConfig, SyntheticSpec, TableRow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuits: Vec<_> = (0..3)
        .map(|i| SyntheticSpec::small(format!("cir{i}"), 10, 0, 12, 150, 260, true, 100 + i))
        .collect();

    let mut rows = Vec::new();
    for spec in &circuits {
        let design = spec.generate();
        let mut results: Vec<(String, f64)> = Vec::new();

        let baselines: Vec<Box<dyn Baseline>> = vec![
            Box::new(RandomPlacer::new(1, 8)),
            Box::new(SaPlacer::new(600, 8, 1)),
            Box::new(SePlacer::new(4, 8, 1)),
            Box::new(AnalyticOnly::new()),
            Box::new(ReplaceLike::new()),
            Box::new(MaskPlaceLike::new(8)),
        ];
        for b in &baselines {
            let hpwl = score_hpwl(&design, &b.place_macros(&design));
            results.push((b.name().to_owned(), hpwl));
        }

        let ours = MacroPlacer::new(PlacerConfig::bench(8)).place(&design)?;
        results.push(("Ours (RL+MCTS)".to_owned(), ours.hpwl));

        print!("{:>8}:", design.name());
        for (name, hpwl) in &results {
            print!("  {name}={hpwl:.0}");
        }
        println!();
        rows.push(TableRow {
            circuit: design.name().to_owned(),
            results,
        });
    }

    println!("\nnormalized (geometric mean over circuits, Ours = 1.00):");
    for (name, norm) in normalize_rows(&rows) {
        println!("  {name:<18} {norm:.3}");
    }
    Ok(())
}
