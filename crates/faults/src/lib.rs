#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Seeded fault-injection harness for the hardened placement flow.
//!
//! The robustness contract of [`mmp_core::MacroPlacer::place`] is: for any
//! input — corrupt files, poisoned numerics, exhausted budgets, injected
//! stage failures — the flow either returns a typed [`mmp_core::PlaceError`]
//! or a **legal** placement whose [`mmp_core::DegradationReport`] names
//! every fallback taken. It never panics.
//!
//! This crate turns that contract into an executable matrix. Each
//! [`ScenarioKind`] describes one way a run can go wrong; [`run_scenario`]
//! injects the fault deterministically (all randomness flows from a
//! [`FaultRng`] seeded by the caller) and classifies what happened as an
//! [`Outcome`]. The `matrix` integration test drives every scenario under
//! `catch_unwind` and asserts the per-scenario invariants.
//!
//! The injector picks *fault sites* pseudo-randomly — which byte to cut,
//! which digit to garble, which design seed to use — so different seeds
//! exercise different corruption points while any single seed replays
//! exactly.
//!
//! The serving scenarios extend the same contract to the `mmpd` daemon
//! ([`mmp_serve::Server`]): adversarial request lines, queue-overflow
//! bursts, clients that hang up mid-job, and daemon lives that end
//! mid-job all must yield a typed rejection or a stored report whose
//! recovery is bitwise-identical — never a panic, a hang, or a lost job.

pub mod torture;

use mmp_core::{
    CheckpointPlan, CrashPoint, Design, FailPlan, FaultKind, MacroPlacer, OpKind, PlacerConfig,
    RewardKind, RewardScale, RunBudget, Stage, SwapRefineConfig, SyntheticSpec, Vfs,
};
use mmp_netlist::{bookshelf, MacroId};
use mmp_serve::{BackoffConfig, DesignSpec, JobDefaults, JobRequest, ServeConfig, Server};
use serde::{map_get, Value};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Deterministic splitmix64 stream used to choose fault sites.
///
/// Small and dependency-free on purpose: the harness must be reproducible
/// from a single `u64` seed with no global state.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng(seed)
    }

    /// Next raw value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (`n = 0` maps to 0).
    pub fn pick(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// One way a placement run can go wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Bookshelf stream cut mid-net-line: the declared degree no longer
    /// matches the pins present.
    TruncatedBookshelf,
    /// One digit inside the NETS section replaced by a letter.
    GarbledNumber,
    /// A net references a node that was never declared.
    UnknownNetNode,
    /// NaN poison in the gradients of the first optimizer chunk; the
    /// update-rejection guard must drop it and training must continue.
    PoisonedGradients,
    /// NaN priors fed to the MCTS; the search must fall back to uniform
    /// priors and report the NaN evaluations.
    NanPriors,
    /// The sequence-pair legalizer is forced to fail; the row-greedy shelf
    /// fallback must still produce a legal placement.
    SequencePairFailure,
    /// Total wall-clock budget of zero: every stage degrades, the flow
    /// still completes legally.
    ZeroTotalBudget,
    /// Zero training allowance only.
    ZeroTrainBudget,
    /// Zero search allowance only.
    ZeroSearchBudget,
    /// Zero legalization allowance only.
    ZeroLegalizeBudget,
    /// Swap refinement requested with a zero allowance: the stage must
    /// degrade (no proposals drawn) and pass the committed placement
    /// through untouched.
    ZeroRefineBudget,
    /// Macros that cannot fit the region: a typed preprocess error.
    InfeasibleDesign,
    /// Network grid ζ disagrees with the environment grid: a typed train
    /// error.
    ZetaMismatch,
    /// `ensemble_runs = 0`: a typed search error.
    ZeroEnsembleRuns,
    /// Reward calibration from identical wirelengths (zero spread): the
    /// Eq. 9 denominator guard must keep rewards finite.
    ZeroSpreadCalibration,
    /// Process killed right after the first training-stage checkpoint
    /// write; `--resume` must continue to a bitwise-identical result.
    KillMidTrain,
    /// Process killed right after the first search-stage checkpoint
    /// write; `--resume` must continue to a bitwise-identical result.
    KillMidSearch,
    /// A checkpoint file cut short on disk: resume must refuse it with a
    /// typed checkpoint error, never a panic or a garbage placement.
    TruncatedCheckpoint,
    /// One flipped payload byte in a checkpoint: the CRC must catch it.
    CorruptCheckpoint,
    /// A checkpoint written by a newer format version: resume must refuse
    /// it as unsupported rather than misread it.
    StaleCheckpointVersion,
    /// A request line cut short before the daemon can parse it: the
    /// response must be a typed `bad-request` rejection, never a hangup
    /// or a panic.
    MalformedRequest,
    /// More submissions than the bounded queue holds: the overflow must
    /// get typed `queue-full` rejections and the rejected jobs must be
    /// rolled back (unknown afterwards), never silently queued.
    QueueFullBurst,
    /// The client hangs up right after firing a blocking `place`: the
    /// daemon must finish the orphaned job and store its report anyway.
    ClientDisconnectMidJob,
    /// The daemon dies mid-job (admitted, checkpoints written, no
    /// report); the next daemon life must replay the journal and resume
    /// to the exact bits of an uninterrupted run.
    KillDaemonMidJob,
    /// A compute-pool worker panics inside the ensemble fan-out: the
    /// flow must surface a typed (transient) search error, never a hang
    /// on a dead worker or an unwind across the pool boundary.
    PoolWorkerPanic,
    /// The disk fills while the first training checkpoint is being
    /// written: the flow must disable checkpointing, record the
    /// degradation, and still finish bitwise-identical to a run that
    /// never checkpointed.
    DiskFullMidTrainCkpt,
    /// An fsync (file or directory) fails with EIO mid-ladder: the run
    /// must complete with a checkpoint-stage degradation entry, never
    /// abort.
    EioOnFsync,
    /// The atomic rename of a checkpoint envelope fails, stranding the
    /// fully-written `.tmp` file: the run degrades, and the next run
    /// over the same directory sweeps the orphan.
    TornRename,
    /// A journal request record is torn mid-write: the daemon must
    /// reject the submission with a typed error, and the next daemon
    /// life must quarantine the damage and sweep the orphan — never
    /// parse garbage.
    PartialJournalWrite,
    /// The disk fills while a daemon job writes its checkpoint ladder:
    /// the job must complete (checkpointing degraded) with the same bits
    /// as a direct baseline run.
    DiskFullMidJob,
}

impl ScenarioKind {
    /// Every scenario, in matrix order.
    pub const ALL: [ScenarioKind; 30] = [
        ScenarioKind::TruncatedBookshelf,
        ScenarioKind::GarbledNumber,
        ScenarioKind::UnknownNetNode,
        ScenarioKind::PoisonedGradients,
        ScenarioKind::NanPriors,
        ScenarioKind::SequencePairFailure,
        ScenarioKind::ZeroTotalBudget,
        ScenarioKind::ZeroTrainBudget,
        ScenarioKind::ZeroSearchBudget,
        ScenarioKind::ZeroLegalizeBudget,
        ScenarioKind::ZeroRefineBudget,
        ScenarioKind::InfeasibleDesign,
        ScenarioKind::ZetaMismatch,
        ScenarioKind::ZeroEnsembleRuns,
        ScenarioKind::ZeroSpreadCalibration,
        ScenarioKind::KillMidTrain,
        ScenarioKind::KillMidSearch,
        ScenarioKind::TruncatedCheckpoint,
        ScenarioKind::CorruptCheckpoint,
        ScenarioKind::StaleCheckpointVersion,
        ScenarioKind::MalformedRequest,
        ScenarioKind::QueueFullBurst,
        ScenarioKind::ClientDisconnectMidJob,
        ScenarioKind::KillDaemonMidJob,
        ScenarioKind::PoolWorkerPanic,
        ScenarioKind::DiskFullMidTrainCkpt,
        ScenarioKind::EioOnFsync,
        ScenarioKind::TornRename,
        ScenarioKind::PartialJournalWrite,
        ScenarioKind::DiskFullMidJob,
    ];

    /// Short stable name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::TruncatedBookshelf => "truncated-bookshelf",
            ScenarioKind::GarbledNumber => "garbled-number",
            ScenarioKind::UnknownNetNode => "unknown-net-node",
            ScenarioKind::PoisonedGradients => "poisoned-gradients",
            ScenarioKind::NanPriors => "nan-priors",
            ScenarioKind::SequencePairFailure => "sequence-pair-failure",
            ScenarioKind::ZeroTotalBudget => "zero-total-budget",
            ScenarioKind::ZeroTrainBudget => "zero-train-budget",
            ScenarioKind::ZeroSearchBudget => "zero-search-budget",
            ScenarioKind::ZeroLegalizeBudget => "zero-legalize-budget",
            ScenarioKind::ZeroRefineBudget => "zero-refine-budget",
            ScenarioKind::InfeasibleDesign => "infeasible-design",
            ScenarioKind::ZetaMismatch => "zeta-mismatch",
            ScenarioKind::ZeroEnsembleRuns => "zero-ensemble-runs",
            ScenarioKind::ZeroSpreadCalibration => "zero-spread-calibration",
            ScenarioKind::KillMidTrain => "kill-mid-train",
            ScenarioKind::KillMidSearch => "kill-mid-search",
            ScenarioKind::TruncatedCheckpoint => "truncated-checkpoint",
            ScenarioKind::CorruptCheckpoint => "corrupt-checkpoint",
            ScenarioKind::StaleCheckpointVersion => "stale-checkpoint-version",
            ScenarioKind::MalformedRequest => "malformed-request",
            ScenarioKind::QueueFullBurst => "queue-full-burst",
            ScenarioKind::ClientDisconnectMidJob => "client-disconnect-mid-job",
            ScenarioKind::KillDaemonMidJob => "kill-daemon-mid-job",
            ScenarioKind::PoolWorkerPanic => "pool-worker-panic",
            ScenarioKind::DiskFullMidTrainCkpt => "disk-full-mid-train-ckpt",
            ScenarioKind::EioOnFsync => "eio-on-fsync",
            ScenarioKind::TornRename => "torn-rename",
            ScenarioKind::PartialJournalWrite => "partial-journal-write",
            ScenarioKind::DiskFullMidJob => "disk-full-mid-job",
        }
    }
}

/// What a scenario run produced, flattened to comparable data so two runs
/// of the same `(kind, seed)` can be asserted identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The flow completed with a placement.
    Placed {
        /// Degraded stage names (sorted, deduped), empty for a clean run.
        degraded: Vec<String>,
        /// Macro overlap < 1e-6 and all macros inside the region.
        legal: bool,
        /// The reported HPWL is a finite number.
        finite_hpwl: bool,
    },
    /// The flow refused the input with a typed stage error.
    Error {
        /// The failing stage's name.
        stage: String,
        /// The CLI exit code for this error (10–16).
        exit_code: u8,
        /// Human-readable message.
        message: String,
    },
    /// The reader refused the corrupted input before the flow ran.
    ParseError {
        /// Human-readable message (contains the line number).
        message: String,
    },
    /// A direct library-guard check (no full flow run).
    Check {
        /// Whether the guard held.
        ok: bool,
        /// What was checked.
        detail: String,
    },
}

/// One scenario's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Which scenario ran.
    pub kind: ScenarioKind,
    /// Seed the injector was given.
    pub seed: u64,
    /// What happened.
    pub outcome: Outcome,
}

/// A laptop-scale config small enough that the full scenario matrix
/// stays in CI-friendly time.
fn matrix_config() -> PlacerConfig {
    let mut cfg = PlacerConfig::fast(4);
    cfg.trainer.episodes = 6;
    cfg.trainer.calibration_episodes = 3;
    cfg.mcts.explorations = 10;
    cfg
}

/// A small healthy design whose generator seed flows from the harness seed.
fn matrix_design(rng: &mut FaultRng) -> Design {
    let seed = 1 + (rng.next_u64() % 1000);
    SyntheticSpec::small("faults", 6, 0, 8, 40, 70, false, seed).generate()
}

/// Serializes `design` to bookshelf text (infallible for in-memory sinks).
fn bookshelf_text(design: &Design) -> String {
    let mut buf = Vec::new();
    if bookshelf::write(design, None, &mut buf).is_err() {
        return String::new();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// Runs the placer and classifies the result.
fn run_flow(cfg: PlacerConfig, design: &Design) -> Outcome {
    match MacroPlacer::new(cfg).place(design) {
        Ok(r) => Outcome::Placed {
            degraded: r
                .degradation
                .degraded_stages()
                .iter()
                .map(|s| s.name().to_owned())
                .collect(),
            legal: r.placement.macro_overlap_area(design) < 1e-6
                && r.placement.macros_inside_region(design),
            finite_hpwl: r.hpwl.is_finite(),
        },
        Err(e) => Outcome::Error {
            stage: e.stage().name().to_owned(),
            exit_code: e.exit_code(),
            message: e.to_string(),
        },
    }
}

/// Parses corrupted bookshelf text and classifies the result. A successful
/// parse of corrupt input is reported as a (failing) `Check` so the matrix
/// test catches an injector that stopped injecting.
fn parse_corrupt(text: &str) -> Outcome {
    match bookshelf::read("corrupt", text.as_bytes()) {
        Err(e) => Outcome::ParseError {
            message: e.to_string(),
        },
        Ok(_) => Outcome::Check {
            ok: false,
            detail: "corrupted bookshelf text parsed cleanly".to_owned(),
        },
    }
}

/// Cuts `text` just past the first pin-node token of a pseudo-randomly
/// chosen net line, leaving exactly one token after the `:` — never a
/// multiple of 3, so the declared degree can't match the pins present.
fn truncate_in_nets(text: &str, rng: &mut FaultRng) -> String {
    let Some(nets_at) = text.find("\nNETS\n") else {
        return String::new();
    };
    let colons: Vec<usize> = text[nets_at..]
        .char_indices()
        .filter(|&(_, c)| c == ':')
        .map(|(i, _)| nets_at + i)
        .collect();
    if colons.is_empty() {
        return String::new();
    }
    let colon = colons[rng.pick(colons.len())];
    let tail = &text[colon + 1..];
    let token_start = tail.find(|c: char| !c.is_whitespace()).unwrap_or(0);
    let token_len = tail[token_start..]
        .find(char::is_whitespace)
        .unwrap_or(tail.len() - token_start);
    text[..colon + 1 + token_start + token_len].to_owned()
}

/// Replaces one pseudo-randomly chosen digit inside the NETS section with
/// a letter, so some numeric field no longer parses (or a node name no
/// longer resolves). Digits in a line's first token (the net *name*, which
/// the parser never resolves) are not candidate sites.
fn garble_in_nets(text: &str, rng: &mut FaultRng) -> String {
    let Some(nets_at) = text.find("\nNETS\n") else {
        return String::new();
    };
    let mut digits: Vec<usize> = Vec::new();
    let mut line_start = nets_at + "\nNETS\n".len();
    for line in text[line_start..].split_inclusive('\n') {
        let name_end = line.find(char::is_whitespace).unwrap_or(line.len());
        digits.extend(
            line.char_indices()
                .filter(|&(i, c)| i > name_end && c.is_ascii_digit())
                .map(|(i, _)| line_start + i),
        );
        line_start += line.len();
    }
    if digits.is_empty() {
        return String::new();
    }
    let site = digits[rng.pick(digits.len())];
    let mut bytes = text.as_bytes().to_vec();
    bytes[site] = b'x';
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A per-(scenario, seed) checkpoint directory, wiped before use so every
/// run starts from the same empty state.
fn checkpoint_dir(kind: ScenarioKind, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mmp-faults-{}-{}-{seed}",
        kind.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Overwrites `path` with raw bytes. Deliberately bypasses the atomic
/// `mmp_ckpt::write` envelope — simulating on-disk damage is the point.
// why: simulating on-disk damage requires bypassing the atomic envelope
#[allow(clippy::disallowed_methods)]
fn tamper_write(path: &Path, bytes: &[u8]) -> bool {
    std::fs::write(path, bytes).is_ok()
}

/// Kills a checkpointed run at `crash`, then resumes it and compares the
/// continuation against an uninterrupted baseline — the resume contract is
/// *bitwise* identity, not approximate quality.
fn kill_and_resume(
    kind: ScenarioKind,
    crash: CrashPoint,
    rng: &mut FaultRng,
    seed: u64,
) -> Outcome {
    let design = matrix_design(rng);
    let dir = checkpoint_dir(kind, seed);
    let baseline = match MacroPlacer::new(matrix_config()).place(&design) {
        Ok(r) => r,
        Err(e) => {
            return Outcome::Check {
                ok: false,
                detail: format!("baseline run refused a healthy design: {e}"),
            }
        }
    };
    let mut crash_cfg = matrix_config();
    crash_cfg.fault_crash = Some(crash);
    let killed_as_typed_16 = match MacroPlacer::new(crash_cfg)
        .with_checkpoints(CheckpointPlan::new(&dir))
        .place(&design)
    {
        Err(e) => e.exit_code() == 16 && e.stage().name() == "checkpoint",
        Ok(_) => false,
    };
    if !killed_as_typed_16 {
        return Outcome::Check {
            ok: false,
            detail: "injected kill did not surface as a typed checkpoint error (exit 16)"
                .to_owned(),
        };
    }
    match MacroPlacer::new(matrix_config())
        .with_checkpoints(CheckpointPlan::resume(&dir))
        .place(&design)
    {
        Ok(resumed) => Outcome::Check {
            ok: resumed.hpwl == baseline.hpwl
                && resumed.assignment == baseline.assignment
                && !resumed.checkpoint.resumes.is_empty(),
            detail: format!(
                "resumed hpwl {} vs baseline {} via {:?}",
                resumed.hpwl, baseline.hpwl, resumed.checkpoint.resumes
            ),
        },
        Err(e) => Outcome::Check {
            ok: false,
            detail: format!("resume after kill refused: {e}"),
        },
    }
}

/// Runs a full checkpointed flow, damages `train-done.ckpt` on disk in a
/// scenario-specific way, then classifies the resume attempt (which must
/// produce a typed checkpoint error).
fn tampered_checkpoint(kind: ScenarioKind, rng: &mut FaultRng, seed: u64) -> Outcome {
    let design = matrix_design(rng);
    let dir = checkpoint_dir(kind, seed);
    if let Err(e) = MacroPlacer::new(matrix_config())
        .with_checkpoints(CheckpointPlan::new(&dir))
        .place(&design)
    {
        return Outcome::Check {
            ok: false,
            detail: format!("checkpointed run refused a healthy design: {e}"),
        };
    }
    let target = dir.join("train-done.ckpt");
    let Ok(bytes) = std::fs::read(&target) else {
        return Outcome::Check {
            ok: false,
            detail: "train-done.ckpt missing after a completed checkpointed run".to_owned(),
        };
    };
    // The envelope header: magic + version + payload length + payload CRC
    // + header checksum.
    const HEADER: usize = 28;
    let tampered = match kind {
        ScenarioKind::TruncatedCheckpoint => {
            // Cut anywhere — mid-header and mid-payload must both refuse.
            let cut = 1 + rng.pick(bytes.len().saturating_sub(1));
            tamper_write(&target, &bytes[..cut])
        }
        ScenarioKind::CorruptCheckpoint => {
            let mut bad = bytes.clone();
            let site = HEADER + rng.pick(bad.len().saturating_sub(HEADER));
            bad[site] ^= 0x40;
            tamper_write(&target, &bad)
        }
        ScenarioKind::StaleCheckpointVersion => match mmp_ckpt::read(&target) {
            Ok(payload) => {
                mmp_ckpt::write_at_version(&target, &payload, mmp_ckpt::FORMAT_VERSION + 1).is_ok()
            }
            Err(_) => false,
        },
        _ => false,
    };
    if !tampered {
        return Outcome::Check {
            ok: false,
            detail: "injector failed to damage the checkpoint file".to_owned(),
        };
    }
    match MacroPlacer::new(matrix_config())
        .with_checkpoints(CheckpointPlan::resume(&dir))
        .place(&design)
    {
        Err(e) => Outcome::Error {
            stage: e.stage().name().to_owned(),
            exit_code: e.exit_code(),
            message: e.to_string(),
        },
        Ok(_) => Outcome::Check {
            ok: false,
            detail: "resume from a damaged checkpoint completed instead of refusing".to_owned(),
        },
    }
}

// ----- serving scenarios -----------------------------------------------

/// The daemon-side job defaults shared by every serving scenario — and,
/// crucially, by their direct baseline runs, so a daemon job and its
/// baseline execute exactly one config.
fn serve_defaults() -> JobDefaults {
    JobDefaults {
        zeta: 4,
        episodes: Some(4),
        explorations: Some(6),
        budget: None,
    }
}

/// A serving-scenario daemon over `state_dir`. Capacity is tiny on
/// purpose: the burst scenario needs to overflow it with a handful of
/// requests. Policy reuse is off so every daemon job is the plain flow
/// the direct baselines execute.
fn serve_config(state_dir: PathBuf, workers: usize) -> ServeConfig {
    ServeConfig {
        state_dir,
        workers,
        queue_capacity: 2,
        max_attempts: 3,
        max_budget_ms: None,
        max_design_nodes: 2_000_000,
        defaults: serve_defaults(),
        backoff: BackoffConfig {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
        },
        policy_cache: false,
        keep_completed: Some(1024),
        fault_io: None,
    }
}

fn check(ok: bool, detail: impl Into<String>) -> Outcome {
    Outcome::Check {
        ok,
        detail: detail.into(),
    }
}

/// A job request line for a small synthetic design whose generator seed
/// flows from the harness rng (mirrors [`matrix_design`]).
fn serve_job_line(op: &str, id: &str, rng: &mut FaultRng) -> String {
    let design_seed = 1 + (rng.next_u64() % 1000);
    format!(
        r#"{{"op":"{op}","id":"{id}","design":{{"spec":[6,0,8,40,70],"seed":{design_seed}}},"zeta":4,"episodes":6,"update_every":2,"explorations":10}}"#
    )
}

/// Polls the daemon for a job's terminal response line. Bounded by
/// iteration count rather than a deadline — the harness is wall-clock-free
/// by lint policy. `unknown-job` is tolerated (a hangup can race the
/// admission itself); anything else non-terminal keeps polling.
fn serve_poll_done(server: &Server, id: &str) -> Option<String> {
    for _ in 0..60_000 {
        let resp = server.handle_request(&format!(r#"{{"op":"result","id":"{id}"}}"#));
        if resp.contains(r#""state":"done""#)
            || (resp.contains(r#""ok":false"#) && !resp.contains("unknown-job"))
        {
            return Some(resp);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    None
}

/// `report.hpwl` of a done line, as bits.
fn hpwl_bits_of_line(line: &str) -> Option<u64> {
    let v = serde_json::parse_value(line).ok()?;
    map_get(&v, "report")
        .and_then(|r| map_get(r, "hpwl"))
        .and_then(Value::as_f64)
        .map(f64::to_bits)
}

/// `(name, x_bits, y_bits)` rows of a done line's `macros` array.
fn macro_bits_of_line(line: &str) -> Option<Vec<(String, u64, u64)>> {
    let v = serde_json::parse_value(line).ok()?;
    let Some(Value::Seq(ms)) = map_get(&v, "macros") else {
        return None;
    };
    let mut rows = Vec::new();
    for m in ms {
        let Some(Value::Str(name)) = map_get(m, "name") else {
            return None;
        };
        let x = map_get(m, "x_bits").and_then(Value::as_u64)?;
        let y = map_get(m, "y_bits").and_then(Value::as_u64)?;
        rows.push((name.clone(), x, y));
    }
    Some(rows)
}

/// Scenario: a valid request line cut short at a pseudo-random byte (every
/// strict prefix of a JSON object is invalid, including the empty line).
/// The daemon must answer with a typed `bad-request`, not a hangup.
fn malformed_request(kind: ScenarioKind, rng: &mut FaultRng, seed: u64) -> Outcome {
    let dir = checkpoint_dir(kind, seed);
    let server = match Server::start(serve_config(dir, 0)) {
        Ok(s) => s,
        Err(e) => return check(false, format!("daemon failed to start: {e}")),
    };
    let valid = serve_job_line("submit", "victim", rng);
    // The line is ASCII, so any cut lands on a char boundary.
    let cut = rng.pick(valid.len());
    let resp = server.handle_request(&valid[..cut]);
    server.abort();
    if resp.contains(r#""ok":false"#) && resp.contains(r#""kind":"bad-request""#) {
        check(
            true,
            "truncated request line drew a typed bad-request rejection",
        )
    } else {
        check(
            false,
            format!("unexpected response to a truncated request: {resp}"),
        )
    }
}

/// Scenario: five submissions against a frozen (`workers = 0`) daemon with
/// a 2-slot queue. The overflow must draw typed `queue-full` rejections
/// and the rejected jobs must be rolled back completely.
fn queue_full_burst(kind: ScenarioKind, rng: &mut FaultRng, seed: u64) -> Outcome {
    let dir = checkpoint_dir(kind, seed);
    let server = match Server::start(serve_config(dir, 0)) {
        Ok(s) => s,
        Err(e) => return check(false, format!("daemon failed to start: {e}")),
    };
    let mut queued = 0usize;
    let mut rejected = 0usize;
    for i in 0..5 {
        let line = serve_job_line("submit", &format!("burst-{i}"), rng);
        let resp = server.handle_request(&line);
        if resp.contains(r#""state":"queued""#) {
            queued += 1;
        } else if resp.contains(r#""kind":"queue-full""#) {
            rejected += 1;
        }
    }
    let rolled_back = server
        .handle_request(r#"{"op":"result","id":"burst-4"}"#)
        .contains(r#""kind":"unknown-job""#);
    server.abort();
    check(
        queued == 2 && rejected == 3 && rolled_back,
        format!(
            "burst of 5 into capacity 2: {queued} queued, {rejected} queue-full, rollback {rolled_back}"
        ),
    )
}

/// Scenario: real TCP, and the client hangs up right after firing a
/// blocking `place`. The daemon must finish the orphaned job and store a
/// finite-HPWL report a later `result` can fetch.
fn client_disconnect_mid_job(kind: ScenarioKind, rng: &mut FaultRng, seed: u64) -> Outcome {
    use std::io::Write as _;
    let dir = checkpoint_dir(kind, seed);
    let server = match Server::start(serve_config(dir, 1)) {
        Ok(s) => s,
        Err(e) => return check(false, format!("daemon failed to start: {e}")),
    };
    let listener = match TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            server.abort();
            return check(false, format!("bind: {e}"));
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            server.abort();
            return check(false, format!("local addr: {e}"));
        }
    };
    let acceptor = {
        let s = server.clone();
        std::thread::spawn(move || {
            let _ = s.serve(listener);
        })
    };
    let line = serve_job_line("place", "orphan", rng);
    let sent = match TcpStream::connect(addr) {
        Ok(mut stream) => stream.write_all(format!("{line}\n").as_bytes()).is_ok(),
        Err(_) => false,
    };
    // The stream dropped right there: the client is gone while the job runs.
    if !sent {
        server.initiate_shutdown();
        let _ = acceptor.join();
        server.abort();
        return check(false, "could not deliver the doomed request");
    }
    let done = serve_poll_done(&server, "orphan");
    server.initiate_shutdown();
    let _ = acceptor.join();
    server.drain();
    match done {
        Some(l) if l.contains(r#""state":"done""#) => {
            let finite = hpwl_bits_of_line(&l)
                .map(|b| f64::from_bits(b).is_finite())
                .unwrap_or(false);
            check(
                finite,
                "orphaned job finished with a finite-HPWL stored report",
            )
        }
        Some(l) => check(false, format!("orphaned job ended badly: {l}")),
        None => check(false, "orphaned job never reached a terminal state"),
    }
}

/// Scenario: the daemon dies mid-job. Life 1 (accept-only) journals the
/// job and dies; the kill itself is an identically-configured run over
/// the job's journal checkpoint ladder, crashed right after the first
/// training checkpoint write — the on-disk state a SIGKILLed worker
/// leaves. Life 2 must replay the journal, resume from the partial
/// ladder, and land on the exact bits of an uninterrupted baseline.
fn kill_daemon_mid_job(kind: ScenarioKind, rng: &mut FaultRng, seed: u64) -> Outcome {
    let dir = checkpoint_dir(kind, seed);
    let line = serve_job_line("submit", "victim", rng);
    let req = match JobRequest::parse(&line) {
        Ok(r) => r,
        Err(e) => return check(false, format!("harness request does not parse: {e}")),
    };
    let design = match req.design.as_ref().map(DesignSpec::materialize) {
        Some(Ok(d)) => d,
        _ => return check(false, "harness design does not materialize"),
    };
    let baseline = match MacroPlacer::new(req.placer_config(&serve_defaults())).place(&design) {
        Ok(r) => r,
        Err(e) => return check(false, format!("baseline refused a healthy job: {e}")),
    };
    let life1 = match Server::start(serve_config(dir.clone(), 0)) {
        Ok(s) => s,
        Err(e) => return check(false, format!("daemon life 1 failed to start: {e}")),
    };
    let resp = life1.handle_request(&line);
    life1.abort();
    if !resp.contains(r#""state":"queued""#) {
        return check(false, format!("life 1 refused the job: {resp}"));
    }
    let mut crash_cfg = req.placer_config(&serve_defaults());
    crash_cfg.fault_crash = Some(CrashPoint::after_train_writes(1));
    let ckpt = dir.join("jobs").join("victim").join("ckpt");
    let killed = matches!(
        MacroPlacer::new(crash_cfg)
            .with_checkpoints(CheckpointPlan::new(&ckpt))
            .place(&design),
        Err(e) if e.exit_code() == 16
    );
    if !killed {
        return check(
            false,
            "injected mid-job kill did not surface as a typed checkpoint error",
        );
    }
    let life2 = match Server::start(serve_config(dir, 1)) {
        Ok(s) => s,
        Err(e) => return check(false, format!("daemon life 2 failed to start: {e}")),
    };
    let done = serve_poll_done(&life2, "victim");
    life2.drain();
    let Some(done) = done else {
        return check(false, "recovered job never reached a terminal state");
    };
    let recovered = done.contains(r#""recovered":true"#);
    let resumed = match serde_json::parse_value(&done) {
        Ok(v) => matches!(
            map_get(&v, "summary").and_then(|s| map_get(s, "recovery_events")),
            Some(Value::Seq(events)) if !events.is_empty()
        ),
        Err(_) => false,
    };
    let hpwl_match = hpwl_bits_of_line(&done) == Some(baseline.hpwl.to_bits());
    let baseline_bits: Vec<(String, u64, u64)> = design
        .macros()
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let c = baseline.placement.macro_center(MacroId::from_index(i));
            (m.name.clone(), c.x.to_bits(), c.y.to_bits())
        })
        .collect();
    let macros_match = macro_bits_of_line(&done) == Some(baseline_bits);
    check(
        recovered && resumed && hpwl_match && macros_match,
        format!(
            "journal replay: recovered={recovered} resumed={resumed} hpwl_bits_match={hpwl_match} macro_bits_match={macros_match}"
        ),
    )
}

// ----- disk-fault scenarios --------------------------------------------

/// Runs a checkpointed flow with a fault-armed [`Vfs`] and classifies the
/// graceful-degradation contract: the run must *complete*, match an
/// unfaulted baseline bit-for-bit (checkpointing is result-neutral), and
/// record a checkpoint-stage degradation event. When `require_disabled`
/// is set the fault must also have tripped the disable latch.
fn faulted_flow_degrades(
    kind: ScenarioKind,
    plan: FailPlan,
    require_disabled: bool,
    rng: &mut FaultRng,
    seed: u64,
) -> Outcome {
    let design = matrix_design(rng);
    let baseline = match MacroPlacer::new(matrix_config()).place(&design) {
        Ok(r) => r,
        Err(e) => return check(false, format!("baseline refused a healthy design: {e}")),
    };
    let dir = checkpoint_dir(kind, seed);
    match MacroPlacer::new(matrix_config())
        .with_checkpoints(CheckpointPlan::new(&dir))
        .with_vfs(Vfs::with_plan(plan))
        .place(&design)
    {
        Ok(r) => {
            let bitwise =
                r.hpwl.to_bits() == baseline.hpwl.to_bits() && r.assignment == baseline.assignment;
            let degraded = r.degradation.affects(Stage::Checkpoint);
            let disabled_ok = !require_disabled || r.checkpoint.disabled;
            check(
                bitwise && degraded && disabled_ok,
                format!(
                    "bitwise={bitwise} ckpt_degraded={degraded} disabled={}",
                    r.checkpoint.disabled
                ),
            )
        }
        Err(e) => check(
            false,
            format!("disk fault aborted the run instead of degrading: {e}"),
        ),
    }
}

/// Scenario: a checkpoint envelope's atomic rename fails, stranding the
/// fully-written `.tmp` file. The run must degrade; the next run over
/// the same directory must sweep the orphan and still match the
/// baseline bits.
fn torn_rename(kind: ScenarioKind, rng: &mut FaultRng, seed: u64) -> Outcome {
    let design = matrix_design(rng);
    let baseline = match MacroPlacer::new(matrix_config()).place(&design) {
        Ok(r) => r,
        Err(e) => return check(false, format!("baseline refused a healthy design: {e}")),
    };
    let dir = checkpoint_dir(kind, seed);
    let nth = 1 + rng.pick(3) as u64;
    let first = match MacroPlacer::new(matrix_config())
        .with_checkpoints(CheckpointPlan::new(&dir))
        .with_vfs(Vfs::with_plan(
            FailPlan::new(FaultKind::Eio, nth).on(OpKind::Rename),
        ))
        .place(&design)
    {
        Ok(r) => r,
        Err(e) => return check(false, format!("torn rename aborted the run: {e}")),
    };
    let orphan_left = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        })
        .unwrap_or(false);
    let second = match MacroPlacer::new(matrix_config())
        .with_checkpoints(CheckpointPlan::new(&dir))
        .place(&design)
    {
        Ok(r) => r,
        Err(e) => return check(false, format!("run over the orphaned dir refused: {e}")),
    };
    let swept = second.checkpoint.stale_tmp_removed >= 1;
    let bitwise = second.hpwl.to_bits() == baseline.hpwl.to_bits()
        && second.assignment == baseline.assignment;
    check(
        first.checkpoint.disabled && orphan_left && swept && bitwise,
        format!(
            "disabled={} orphan_left={orphan_left} swept={swept} bitwise={bitwise}",
            first.checkpoint.disabled
        ),
    )
}

/// Scenario: a journal request record is torn mid-write. The daemon must
/// reject the submission with a typed internal error; the next life must
/// quarantine the damaged job dir, sweep the `.tmp` orphan, and keep
/// admitting fresh work.
fn partial_journal_write(kind: ScenarioKind, rng: &mut FaultRng, seed: u64) -> Outcome {
    let dir = checkpoint_dir(kind, seed);
    let torn_line = serve_job_line("submit", "torn", rng);
    let fresh_line = serve_job_line("submit", "fresh", rng);
    // Any cut below the 28-byte envelope header guarantees damage.
    let cut = rng.pick(24);
    let mut cfg = serve_config(dir.clone(), 0);
    cfg.fault_io = Some(
        FailPlan::new(FaultKind::PartialWrite(cut), 1)
            .on(OpKind::Write)
            .matching("request"),
    );
    let life1 = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => return check(false, format!("daemon life 1 failed to start: {e}")),
    };
    let resp = life1.handle_request(&torn_line);
    life1.abort();
    let rejected = resp.contains(r#""ok":false"#) && resp.contains("internal");
    let life2 = match Server::start(serve_config(dir, 0)) {
        Ok(s) => s,
        Err(e) => return check(false, format!("daemon life 2 failed to start: {e}")),
    };
    let quarantined = life2
        .handle_request(r#"{"op":"result","id":"torn"}"#)
        .contains("unknown-job");
    let swept = life2
        .metrics()
        .counters
        .get("ckpt.stale_tmp_removed")
        .copied()
        .unwrap_or(0)
        >= 1;
    let readmits = life2
        .handle_request(&fresh_line)
        .contains(r#""state":"queued""#);
    life2.abort();
    check(
        rejected && quarantined && swept && readmits,
        format!("rejected={rejected} quarantined={quarantined} swept={swept} readmits={readmits}"),
    )
}

/// Scenario: the disk fills while a daemon job writes its checkpoint
/// ladder. The job must complete with checkpointing disabled and the
/// exact bits of a direct baseline run — a degraded job, not a failed
/// one.
fn disk_full_mid_job(kind: ScenarioKind, rng: &mut FaultRng, seed: u64) -> Outcome {
    let dir = checkpoint_dir(kind, seed);
    let line = serve_job_line("submit", "victim", rng);
    let req = match JobRequest::parse(&line) {
        Ok(r) => r,
        Err(e) => return check(false, format!("harness request does not parse: {e}")),
    };
    let design = match req.design.as_ref().map(DesignSpec::materialize) {
        Some(Ok(d)) => d,
        _ => return check(false, "harness design does not materialize"),
    };
    let baseline = match MacroPlacer::new(req.placer_config(&serve_defaults())).place(&design) {
        Ok(r) => r,
        Err(e) => return check(false, format!("baseline refused a healthy job: {e}")),
    };
    let mut cfg = serve_config(dir, 1);
    // Scope the fault to the per-job ladder directory (`.../ckpt/...`),
    // leaving the journal records (`request.ckpt`, `report.ckpt`) alone.
    cfg.fault_io = Some(
        FailPlan::new(FaultKind::Enospc, 1)
            .on(OpKind::Write)
            .matching(&format!("ckpt{}", std::path::MAIN_SEPARATOR)),
    );
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => return check(false, format!("daemon failed to start: {e}")),
    };
    let resp = server.handle_request(&line);
    if !resp.contains(r#""ok":true"#) {
        server.abort();
        return check(false, format!("daemon refused the job: {resp}"));
    }
    let done = serve_poll_done(&server, "victim");
    server.drain();
    let Some(done) = done else {
        return check(false, "degraded job never reached a terminal state");
    };
    let completed = done.contains(r#""state":"done""#);
    let degraded = done.contains(r#""disabled":true"#);
    let hpwl_match = hpwl_bits_of_line(&done) == Some(baseline.hpwl.to_bits());
    let baseline_bits: Vec<(String, u64, u64)> = design
        .macros()
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let c = baseline.placement.macro_center(MacroId::from_index(i));
            (m.name.clone(), c.x.to_bits(), c.y.to_bits())
        })
        .collect();
    let macros_match = macro_bits_of_line(&done) == Some(baseline_bits);
    check(
        completed && degraded && hpwl_match && macros_match,
        format!(
            "completed={completed} ckpt_disabled={degraded} hpwl_bits_match={hpwl_match} macro_bits_match={macros_match}"
        ),
    )
}

/// Runs one scenario. Deterministic: the same `(kind, seed)` always
/// produces the same [`ScenarioReport`].
pub fn run_scenario(kind: ScenarioKind, seed: u64) -> ScenarioReport {
    // Mix the kind into the stream so scenarios don't share fault sites.
    let mut rng = FaultRng::new(seed ^ (kind as u64).wrapping_mul(0x9e37_79b9));
    let outcome = match kind {
        ScenarioKind::TruncatedBookshelf => {
            let text = bookshelf_text(&matrix_design(&mut rng));
            parse_corrupt(&truncate_in_nets(&text, &mut rng))
        }
        ScenarioKind::GarbledNumber => {
            let text = bookshelf_text(&matrix_design(&mut rng));
            parse_corrupt(&garble_in_nets(&text, &mut rng))
        }
        ScenarioKind::UnknownNetNode => {
            let text = "REGION 0 0 100 100\nNODES\nm0 5 5 macro\nNETS\nn0 1 2 : (m0 0 0) (ghost 0 0)\nEND\n";
            parse_corrupt(text)
        }
        ScenarioKind::PoisonedGradients => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.trainer.fault_poison_update = Some(0);
            run_flow(cfg, &design)
        }
        ScenarioKind::NanPriors => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.mcts.fault_nan_priors = true;
            run_flow(cfg, &design)
        }
        ScenarioKind::SequencePairFailure => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.fault_sp_failure = true;
            run_flow(cfg, &design)
        }
        ScenarioKind::ZeroTotalBudget => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.budget = RunBudget::with_total(Duration::ZERO);
            run_flow(cfg, &design)
        }
        ScenarioKind::ZeroTrainBudget => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.budget.train = Some(Duration::ZERO);
            run_flow(cfg, &design)
        }
        ScenarioKind::ZeroSearchBudget => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.budget.search = Some(Duration::ZERO);
            run_flow(cfg, &design)
        }
        ScenarioKind::ZeroLegalizeBudget => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.budget.legalize = Some(Duration::ZERO);
            run_flow(cfg, &design)
        }
        ScenarioKind::ZeroRefineBudget => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.refine = Some(SwapRefineConfig::default());
            cfg.budget.refine = Some(Duration::ZERO);
            run_flow(cfg, &design)
        }
        ScenarioKind::InfeasibleDesign => {
            let mut b =
                mmp_core::DesignBuilder::new("inf", mmp_geom::Rect::new(0.0, 0.0, 10.0, 10.0));
            for i in 0..3 {
                b.add_macro(format!("m{i}"), 7.0, 7.0, "");
            }
            match b.build() {
                Ok(design) => run_flow(matrix_config(), &design),
                Err(e) => Outcome::Check {
                    ok: false,
                    detail: format!("builder rejected the infeasible design early: {e}"),
                },
            }
        }
        ScenarioKind::ZetaMismatch => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.trainer.net.zeta = cfg.trainer.zeta + 1;
            run_flow(cfg, &design)
        }
        ScenarioKind::ZeroEnsembleRuns => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.ensemble_runs = 0;
            run_flow(cfg, &design)
        }
        ScenarioKind::ZeroSpreadCalibration => {
            // All warm-up episodes returned the same wirelength: the Eq. 9
            // denominator is zero and must be guarded, not divided by.
            let w = 100.0 + rng.pick(900) as f64;
            match RewardScale::try_calibrate(RewardKind::default(), &[w, w, w, w]) {
                Ok(scale) => {
                    let r = scale.reward(w);
                    Outcome::Check {
                        ok: r.is_finite(),
                        detail: format!("zero-spread reward({w}) = {r}"),
                    }
                }
                Err(e) => Outcome::Check {
                    ok: false,
                    detail: format!("zero-spread calibration refused: {e}"),
                },
            }
        }
        ScenarioKind::KillMidTrain => {
            kill_and_resume(kind, CrashPoint::after_train_writes(1), &mut rng, seed)
        }
        ScenarioKind::KillMidSearch => {
            kill_and_resume(kind, CrashPoint::after_search_writes(1), &mut rng, seed)
        }
        ScenarioKind::TruncatedCheckpoint
        | ScenarioKind::CorruptCheckpoint
        | ScenarioKind::StaleCheckpointVersion => tampered_checkpoint(kind, &mut rng, seed),
        ScenarioKind::MalformedRequest => malformed_request(kind, &mut rng, seed),
        ScenarioKind::QueueFullBurst => queue_full_burst(kind, &mut rng, seed),
        ScenarioKind::ClientDisconnectMidJob => client_disconnect_mid_job(kind, &mut rng, seed),
        ScenarioKind::KillDaemonMidJob => kill_daemon_mid_job(kind, &mut rng, seed),
        ScenarioKind::PoolWorkerPanic => {
            let design = matrix_design(&mut rng);
            let mut cfg = matrix_config();
            cfg.workers = 2;
            cfg.ensemble_runs = 2;
            // Either worker may be the victim; both must surface the same
            // typed error.
            cfg.fault_pool_panic = Some(rng.pick(2));
            run_flow(cfg, &design)
        }
        ScenarioKind::DiskFullMidTrainCkpt => {
            // The first payload write of a train-stage envelope fails.
            let plan = FailPlan::new(FaultKind::Enospc, 1)
                .on(OpKind::Write)
                .matching("train");
            faulted_flow_degrades(kind, plan, true, &mut rng, seed)
        }
        ScenarioKind::EioOnFsync => {
            // Any of the first few fsyncs — file or directory — fails.
            let nth = 1 + rng.pick(4) as u64;
            let plan = FailPlan::new(FaultKind::Eio, nth).on(OpKind::Fsync);
            faulted_flow_degrades(kind, plan, false, &mut rng, seed)
        }
        ScenarioKind::TornRename => torn_rename(kind, &mut rng, seed),
        ScenarioKind::PartialJournalWrite => partial_journal_write(kind, &mut rng, seed),
        ScenarioKind::DiskFullMidJob => disk_full_mid_job(kind, &mut rng, seed),
    };
    ScenarioReport {
        kind,
        seed,
        outcome,
    }
}

/// Runs the whole matrix with one seed.
pub fn run_all(seed: u64) -> Vec<ScenarioReport> {
    ScenarioKind::ALL
        .iter()
        .map(|&k| run_scenario(k, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_moves() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn truncation_always_cuts_mid_pin_list() {
        let mut rng = FaultRng::new(3);
        let design = matrix_design(&mut rng);
        let text = bookshelf_text(&design);
        for seed in 0..20 {
            let cut = truncate_in_nets(&text, &mut FaultRng::new(seed));
            let last = cut.lines().last().unwrap_or("");
            assert!(last.contains(':'), "cut must land inside a net line");
            assert!(matches!(parse_corrupt(&cut), Outcome::ParseError { .. }));
        }
    }

    #[test]
    fn garbling_always_breaks_the_parse() {
        let mut rng = FaultRng::new(5);
        let design = matrix_design(&mut rng);
        let text = bookshelf_text(&design);
        for seed in 0..20 {
            let bad = garble_in_nets(&text, &mut FaultRng::new(seed));
            assert!(matches!(parse_corrupt(&bad), Outcome::ParseError { .. }));
        }
    }

    #[test]
    fn scenario_names_are_unique() {
        let mut names: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ScenarioKind::ALL.len());
    }
}
