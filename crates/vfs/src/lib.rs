#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Injectable filesystem chokepoint for the MMP workspace.
//!
//! Every durable write in `mmp-ckpt` (the checkpoint envelope) and
//! `mmp-serve` (the journal) goes through a [`Vfs`] handle instead of
//! calling `std::fs` directly. A `Vfs` has two backends:
//!
//! * **real** (the default): forwards straight to `std::fs`. The hot path
//!   costs exactly one branch per operation — `Vfs` is a newtype around
//!   `Option<Arc<_>>` and the real backend is `None`.
//! * **fault plan**: a deterministic op counter plus a [`FailPlan`] that
//!   fails the Nth operation matching a per-kind / per-path filter with a
//!   chosen [`FaultKind`] — `Enospc`, `Eio`, `PartialWrite` (a prefix of
//!   the payload reaches the disk) or `CrashAfter` (the operation
//!   *succeeds* on disk, then a crash-marked error is returned; the
//!   torture driver treats it as process death at the next instruction).
//!
//! The counter is deterministic: operations are counted in program order,
//! so the same seed → same plan → same failing boundary on every run.
//! A plan fires **once** and is then disarmed, which models both a
//! one-shot power loss and a transient I/O error that a retry survives.
//!
//! A third mode, [`Vfs::recording`], performs every operation for real
//! while counting mutation ops. The torture harness uses it to enumerate
//! the write boundaries of a clean run before replaying the run with a
//! fault injected at each boundary in turn.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Marker substring carried by every crash-typed error produced by
/// [`FaultKind::CrashAfter`]. Callers use [`is_crash`] / [`is_crash_detail`]
/// to distinguish "the process died here" (propagate, the torture driver
/// restarts) from an ordinary I/O failure (degrade gracefully).
///
/// The text deliberately matches the `mmp-core` crash-point convention
/// ("injected crash after checkpoint write") so a single predicate covers
/// both injection substrates.
pub const CRASH_MARKER: &str = "injected crash";

/// The filesystem operations the chokepoint distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// File or directory creation (`File::create`, `create_dir_all`).
    Create,
    /// Payload bytes written to an open file.
    Write,
    /// `sync_all` on a file or directory handle.
    Fsync,
    /// Atomic rename of a temp file over its final name.
    Rename,
    /// Whole-file reads and directory listings.
    Read,
    /// File or directory-tree removal.
    Remove,
}

impl OpKind {
    /// Every operation kind, in counter-index order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Create,
        OpKind::Write,
        OpKind::Fsync,
        OpKind::Rename,
        OpKind::Read,
        OpKind::Remove,
    ];

    /// Stable lowercase name, used by `FailPlan::parse` specs.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Write => "write",
            OpKind::Fsync => "fsync",
            OpKind::Rename => "rename",
            OpKind::Read => "read",
            OpKind::Remove => "remove",
        }
    }

    /// Parse a lowercase op name back into a kind.
    pub fn parse(s: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether the op changes on-disk state. Mutation ops are the write
    /// boundaries the torture harness enumerates; `Read` is excluded.
    pub fn is_mutation(self) -> bool {
        self != OpKind::Read
    }
}

/// What happens when a [`FailPlan`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails up front with an ENOSPC-flavoured error;
    /// nothing reaches the disk.
    Enospc,
    /// The operation fails up front with an EIO-flavoured error.
    Eio,
    /// Only for `Write` ops: the first `bytes` bytes reach the disk, then
    /// the write fails. Models a torn write / power brown-out. On other
    /// op kinds it behaves like `Eio`.
    PartialWrite(usize),
    /// The operation completes on disk, then a crash-marked error is
    /// returned. Models power loss immediately after the syscall; the
    /// torture driver treats it as process death.
    CrashAfter,
}

/// A deterministic one-shot fault: fail the `nth` operation (1-based)
/// matching the kind and path filters with `fault`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailPlan {
    /// 1-based index among *matching* operations.
    pub nth: u64,
    /// The failure injected when the plan fires.
    pub fault: FaultKind,
    /// Op kinds the plan matches. Empty = every mutation kind.
    pub kinds: Vec<OpKind>,
    /// Optional substring the operation's path must contain.
    pub path_contains: Option<String>,
}

impl FailPlan {
    /// A plan matching every mutation op, firing on the `nth` one.
    pub fn new(fault: FaultKind, nth: u64) -> FailPlan {
        FailPlan {
            nth: nth.max(1),
            fault,
            kinds: Vec::new(),
            path_contains: None,
        }
    }

    /// Restrict the plan to a single op kind (may be called repeatedly
    /// to build up a set).
    pub fn on(mut self, kind: OpKind) -> FailPlan {
        self.kinds.push(kind);
        self
    }

    /// Restrict the plan to paths containing `substr`.
    pub fn matching(mut self, substr: &str) -> FailPlan {
        self.path_contains = Some(substr.to_owned());
        self
    }

    /// Parse a CLI spec: `FAULT:NTH[:KINDS[:PATH_SUBSTR]]`, where `FAULT`
    /// is `enospc`, `eio`, `crash` or `partial-<bytes>`, `NTH` is the
    /// 1-based matching-op index, and `KINDS` is a `+`-joined list of op
    /// names (or `any` for every mutation op).
    ///
    /// Examples: `crash:5`, `eio:1:fsync`, `partial-16:2:write:request`.
    pub fn parse(spec: &str) -> Result<FailPlan, String> {
        let parts: Vec<&str> = spec.splitn(4, ':').collect();
        if parts.len() < 2 {
            return Err(format!(
                "bad fault spec '{spec}': want FAULT:NTH[:KINDS[:PATH]]"
            ));
        }
        let fault = match parts[0] {
            "enospc" => FaultKind::Enospc,
            "eio" => FaultKind::Eio,
            "crash" => FaultKind::CrashAfter,
            other => match other.strip_prefix("partial-") {
                Some(n) => FaultKind::PartialWrite(
                    n.parse::<usize>()
                        .map_err(|_| format!("bad partial byte count '{n}' in '{spec}'"))?,
                ),
                None => return Err(format!("unknown fault kind '{other}' in '{spec}'")),
            },
        };
        let nth: u64 = parts[1]
            .parse()
            .map_err(|_| format!("bad op index '{}' in '{spec}'", parts[1]))?;
        if nth == 0 {
            return Err(format!("op index must be >= 1 in '{spec}'"));
        }
        let mut plan = FailPlan::new(fault, nth);
        if let Some(kinds) = parts.get(2) {
            if !kinds.is_empty() && *kinds != "any" {
                for name in kinds.split('+') {
                    match OpKind::parse(name) {
                        Some(k) => plan.kinds.push(k),
                        None => return Err(format!("unknown op kind '{name}' in '{spec}'")),
                    }
                }
            }
        }
        if let Some(path) = parts.get(3) {
            if !path.is_empty() {
                plan.path_contains = Some((*path).to_owned());
            }
        }
        Ok(plan)
    }

    fn matches(&self, kind: OpKind, path: &Path) -> bool {
        let kind_ok = if self.kinds.is_empty() {
            kind.is_mutation()
        } else {
            self.kinds.contains(&kind)
        };
        if !kind_ok {
            return false;
        }
        match &self.path_contains {
            Some(sub) => path.to_string_lossy().contains(sub.as_str()),
            None => true,
        }
    }
}

/// Armed plan plus its deterministic matching-op counter.
#[derive(Debug)]
struct Armed {
    plan: FailPlan,
    seen: u64,
}

#[derive(Debug)]
struct State {
    /// `Some` while the plan is armed; taken when it fires.
    armed: Mutex<Option<Armed>>,
    /// Mutation ops performed (or attempted), in program order.
    mutations: AtomicU64,
    /// Per-kind op counts, indexed by `OpKind as usize`.
    per_kind: [AtomicU64; 6],
}

/// The filesystem handle. Cheap to clone; clones share the op counter
/// and fault plan, so one handle can span a daemon's journal and every
/// job it runs while keeping a single deterministic counter.
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    state: Option<Arc<State>>,
}

/// Decision taken for one intercepted operation.
enum Decision {
    Pass,
    Fail(FaultKind),
}

impl Vfs {
    /// The real backend: every op forwards to `std::fs`, one branch of
    /// overhead, nothing counted.
    pub fn real() -> Vfs {
        Vfs { state: None }
    }

    /// A counting backend with an armed fault plan.
    pub fn with_plan(plan: FailPlan) -> Vfs {
        Vfs {
            state: Some(Arc::new(State {
                armed: Mutex::new(Some(Armed { plan, seen: 0 })),
                mutations: AtomicU64::new(0),
                per_kind: Default::default(),
            })),
        }
    }

    /// A counting backend with no plan: every op runs for real while the
    /// mutation counter enumerates write boundaries.
    pub fn recording() -> Vfs {
        Vfs {
            state: Some(Arc::new(State {
                armed: Mutex::new(None),
                mutations: AtomicU64::new(0),
                per_kind: Default::default(),
            })),
        }
    }

    /// Whether this handle can inject faults or count ops at all.
    pub fn is_real(&self) -> bool {
        self.state.is_none()
    }

    /// Mutation ops seen so far (0 on the real backend).
    pub fn mutation_ops(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.mutations.load(Ordering::SeqCst))
    }

    /// Ops of one kind seen so far (0 on the real backend).
    pub fn ops_of(&self, kind: OpKind) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.per_kind[kind as usize].load(Ordering::SeqCst))
    }

    /// Whether a fault plan is still armed (i.e. has not fired yet).
    pub fn plan_armed(&self) -> bool {
        match &self.state {
            None => false,
            Some(s) => match s.armed.lock() {
                Ok(g) => g.is_some(),
                Err(p) => p.into_inner().is_some(),
            },
        }
    }

    /// Count the op and decide whether the armed plan fires on it.
    fn decide(&self, kind: OpKind, path: &Path) -> Decision {
        let Some(state) = &self.state else {
            return Decision::Pass;
        };
        if kind.is_mutation() {
            state.mutations.fetch_add(1, Ordering::SeqCst);
        }
        state.per_kind[kind as usize].fetch_add(1, Ordering::SeqCst);
        let mut guard = match state.armed.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let fires = match guard.as_mut() {
            Some(armed) if armed.plan.matches(kind, path) => {
                armed.seen += 1;
                armed.seen == armed.plan.nth
            }
            _ => false,
        };
        if fires {
            // One-shot: disarm so retries (and the rest of the run) see a
            // healthy filesystem again.
            match guard.take() {
                Some(armed) => Decision::Fail(armed.plan.fault),
                None => Decision::Pass,
            }
        } else {
            Decision::Pass
        }
    }

    /// Run `op` through the chokepoint with full fault semantics.
    fn intercept<T>(
        &self,
        kind: OpKind,
        path: &Path,
        op: impl FnOnce() -> io::Result<T>,
    ) -> io::Result<T> {
        match self.decide(kind, path) {
            Decision::Pass => op(),
            Decision::Fail(FaultKind::Enospc) => Err(injected_err("ENOSPC", kind, path)),
            Decision::Fail(FaultKind::Eio | FaultKind::PartialWrite(_)) => {
                Err(injected_err("EIO", kind, path))
            }
            Decision::Fail(FaultKind::CrashAfter) => {
                op()?;
                Err(crash_err(kind, path))
            }
        }
    }

    /// `std::fs::create_dir_all` through the chokepoint (`Create`).
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.intercept(OpKind::Create, path, || fs::create_dir_all(path))
    }

    /// Create `path` and write `bytes` durably: a `Create`, a `Write` and
    /// a file `Fsync`, each an independently faultable boundary. Under
    /// `PartialWrite` a prefix of `bytes` reaches the disk before the
    /// error surfaces, modelling a torn write.
    pub fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = self.intercept(OpKind::Create, path, || fs::File::create(path))?;
        match self.decide(OpKind::Write, path) {
            Decision::Pass => file.write_all(bytes)?,
            Decision::Fail(FaultKind::Enospc) => {
                return Err(injected_err("ENOSPC", OpKind::Write, path))
            }
            Decision::Fail(FaultKind::Eio) => return Err(injected_err("EIO", OpKind::Write, path)),
            Decision::Fail(FaultKind::PartialWrite(n)) => {
                let cut = n.min(bytes.len());
                file.write_all(&bytes[..cut])?;
                let _ = file.sync_all();
                return Err(io::Error::other(format!(
                    "injected partial write ({cut} of {} bytes) on {}",
                    bytes.len(),
                    path.display()
                )));
            }
            Decision::Fail(FaultKind::CrashAfter) => {
                file.write_all(bytes)?;
                let _ = file.sync_all();
                return Err(crash_err(OpKind::Write, path));
            }
        }
        self.intercept(OpKind::Fsync, path, || file.sync_all())
    }

    /// `std::fs::rename` through the chokepoint (`Rename`, keyed on the
    /// destination path).
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.intercept(OpKind::Rename, to, || fs::rename(from, to))
    }

    /// Open `dir` and `sync_all` it (`Fsync`). Publishes a just-renamed
    /// entry; callers treat failure as degraded-but-survivable unless it
    /// is crash-marked.
    pub fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.intercept(OpKind::Fsync, dir, || fs::File::open(dir)?.sync_all())
    }

    /// `std::fs::read` through the chokepoint (`Read`).
    pub fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.intercept(OpKind::Read, path, || fs::read(path))
    }

    /// Directory listing through the chokepoint (`Read`): entry names,
    /// sorted for determinism.
    pub fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.intercept(OpKind::Read, dir, || {
            let mut names = Vec::new();
            for entry in fs::read_dir(dir)? {
                names.push(entry?.file_name().to_string_lossy().into_owned());
            }
            names.sort();
            Ok(names)
        })
    }

    /// `std::fs::remove_file` through the chokepoint (`Remove`).
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.intercept(OpKind::Remove, path, || fs::remove_file(path))
    }

    /// `std::fs::remove_dir_all` through the chokepoint (`Remove`).
    pub fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.intercept(OpKind::Remove, path, || fs::remove_dir_all(path))
    }
}

fn injected_err(what: &str, kind: OpKind, path: &Path) -> io::Error {
    io::Error::other(format!(
        "injected {what} on {} of {}",
        kind.name(),
        path.display()
    ))
}

fn crash_err(kind: OpKind, path: &Path) -> io::Error {
    io::Error::other(format!(
        "{CRASH_MARKER} after {} of {}",
        kind.name(),
        path.display()
    ))
}

/// Whether an I/O error is crash-marked (see [`CRASH_MARKER`]).
pub fn is_crash(err: &io::Error) -> bool {
    is_crash_detail(&err.to_string())
}

/// Whether an error detail string is crash-marked.
pub fn is_crash_detail(detail: &str) -> bool {
    detail.contains(CRASH_MARKER)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmp-vfs-{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_backend_is_transparent() {
        let dir = tmp_dir("real");
        let vfs = Vfs::real();
        assert!(vfs.is_real());
        let p = dir.join("a.bin");
        vfs.write_file(&p, b"hello").unwrap();
        vfs.rename(&p, &dir.join("b.bin")).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert_eq!(vfs.read_file(&dir.join("b.bin")).unwrap(), b"hello");
        assert_eq!(vfs.read_dir_names(&dir).unwrap(), vec!["b.bin".to_owned()]);
        vfs.remove_file(&dir.join("b.bin")).unwrap();
        assert_eq!(vfs.mutation_ops(), 0, "real backend counts nothing");
    }

    #[test]
    fn recording_counts_every_mutation_boundary() {
        let dir = tmp_dir("recording");
        let vfs = Vfs::recording();
        let p = dir.join("a.bin");
        vfs.write_file(&p, b"payload").unwrap(); // create + write + fsync
        vfs.rename(&p, &dir.join("b.bin")).unwrap(); // rename
        vfs.sync_dir(&dir).unwrap(); // fsync
        let _ = vfs.read_file(&dir.join("b.bin")).unwrap(); // read: not a mutation
        assert_eq!(vfs.mutation_ops(), 5);
        assert_eq!(vfs.ops_of(OpKind::Fsync), 2);
        assert_eq!(vfs.ops_of(OpKind::Read), 1);
    }

    #[test]
    fn enospc_fires_once_on_the_nth_matching_op() {
        let dir = tmp_dir("enospc");
        let vfs = Vfs::with_plan(FailPlan::new(FaultKind::Enospc, 2).on(OpKind::Write));
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        vfs.write_file(&a, b"first").unwrap();
        let err = vfs.write_file(&b, b"second").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert!(!is_crash(&err));
        assert!(!vfs.plan_armed(), "plan is one-shot");
        // Third write sees a healthy filesystem again.
        vfs.write_file(&b, b"third").unwrap();
        assert_eq!(fs::read(&b).unwrap(), b"third");
    }

    #[test]
    fn crash_after_completes_the_op_then_errors() {
        let dir = tmp_dir("crash");
        let vfs = Vfs::with_plan(FailPlan::new(FaultKind::CrashAfter, 1).on(OpKind::Rename));
        let a = dir.join("a.bin");
        vfs.write_file(&a, b"x").unwrap();
        let err = vfs.rename(&a, &dir.join("b.bin")).unwrap_err();
        assert!(is_crash(&err), "{err}");
        // The rename itself happened before the "power loss".
        assert!(dir.join("b.bin").exists());
        assert!(!a.exists());
    }

    #[test]
    fn partial_write_leaves_a_prefix_on_disk() {
        let dir = tmp_dir("partial");
        let vfs = Vfs::with_plan(FailPlan::new(FaultKind::PartialWrite(3), 1).on(OpKind::Write));
        let p = dir.join("a.bin");
        let err = vfs.write_file(&p, b"abcdef").unwrap_err();
        assert!(err.to_string().contains("partial write"), "{err}");
        assert_eq!(fs::read(&p).unwrap(), b"abc");
    }

    #[test]
    fn path_filter_scopes_the_plan() {
        let dir = tmp_dir("pathfilter");
        let vfs = Vfs::with_plan(
            FailPlan::new(FaultKind::Eio, 1)
                .on(OpKind::Write)
                .matching("victim"),
        );
        vfs.write_file(&dir.join("innocent.bin"), b"ok").unwrap();
        let err = vfs.write_file(&dir.join("victim.bin"), b"no").unwrap_err();
        assert!(err.to_string().contains("EIO"), "{err}");
    }

    #[test]
    fn default_kind_filter_is_every_mutation() {
        let dir = tmp_dir("anykind");
        let vfs = Vfs::with_plan(FailPlan::new(FaultKind::Eio, 1));
        // Reads never match the default filter.
        let _ = vfs.read_dir_names(&dir).unwrap();
        let err = vfs.create_dir_all(&dir.join("sub")).unwrap_err();
        assert!(err.to_string().contains("EIO"), "{err}");
    }

    #[test]
    fn counters_are_deterministic_across_identical_runs() {
        let run = |tag: &str| -> (u64, u64) {
            let dir = tmp_dir(tag);
            let vfs = Vfs::recording();
            vfs.create_dir_all(&dir.join("sub")).unwrap();
            vfs.write_file(&dir.join("sub/a.bin"), b"abc").unwrap();
            vfs.rename(&dir.join("sub/a.bin"), &dir.join("sub/b.bin"))
                .unwrap();
            vfs.remove_dir_all(&dir.join("sub")).unwrap();
            (vfs.mutation_ops(), vfs.ops_of(OpKind::Create))
        };
        assert_eq!(run("det-a"), run("det-b"));
    }

    #[test]
    fn parse_round_trips_the_cli_grammar() {
        assert_eq!(
            FailPlan::parse("crash:5").unwrap(),
            FailPlan::new(FaultKind::CrashAfter, 5)
        );
        assert_eq!(
            FailPlan::parse("eio:1:fsync").unwrap(),
            FailPlan::new(FaultKind::Eio, 1).on(OpKind::Fsync)
        );
        assert_eq!(
            FailPlan::parse("partial-16:2:write:request").unwrap(),
            FailPlan::new(FaultKind::PartialWrite(16), 2)
                .on(OpKind::Write)
                .matching("request")
        );
        assert_eq!(
            FailPlan::parse("enospc:3:create+write").unwrap(),
            FailPlan::new(FaultKind::Enospc, 3)
                .on(OpKind::Create)
                .on(OpKind::Write)
        );
        assert_eq!(
            FailPlan::parse("enospc:3:any").unwrap(),
            FailPlan::new(FaultKind::Enospc, 3)
        );
        assert!(FailPlan::parse("bogus:1").is_err());
        assert!(FailPlan::parse("eio:0").is_err());
        assert!(FailPlan::parse("eio").is_err());
        assert!(FailPlan::parse("eio:1:teleport").is_err());
        assert!(FailPlan::parse("partial-x:1").is_err());
    }

    #[test]
    fn clones_share_one_counter() {
        let dir = tmp_dir("clones");
        let vfs = Vfs::recording();
        let other = vfs.clone();
        vfs.write_file(&dir.join("a.bin"), b"x").unwrap();
        other.write_file(&dir.join("b.bin"), b"y").unwrap();
        assert_eq!(vfs.mutation_ops(), 6);
        assert_eq!(other.mutation_ops(), 6);
    }
}
