//! The trained agent: a thin, checkpointable wrapper around the network.

use crate::env::State;
use crate::net::{AgentConfig, NetOutput, PolicyValueNet, StateRef};
use mmp_nn::InferenceCtx;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// An actor-critic agent (π_θ + V_θ). Cloneable (checkpointing for the
/// Fig. 5 experiment) and serialisable (weight files).
///
/// All evaluation methods take `&self` plus a caller-owned
/// [`InferenceCtx`], so one agent can be shared across threads — each
/// worker brings its own scratch context (see `mmp-mcts`'s ensemble).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Agent {
    net: PolicyValueNet,
}

impl Agent {
    /// A freshly-initialised agent.
    pub fn new(config: AgentConfig) -> Self {
        Agent {
            net: PolicyValueNet::new(config),
        }
    }

    /// Wraps an existing network.
    pub fn from_net(net: PolicyValueNet) -> Self {
        Agent { net }
    }

    /// The network size configuration.
    pub fn config(&self) -> &AgentConfig {
        self.net.config()
    }

    /// Mutable access to the underlying network (training).
    pub fn net_mut(&mut self) -> &mut PolicyValueNet {
        &mut self.net
    }

    /// Evaluates π_θ and V_θ on a state. Inference mode: shared `&self`
    /// weights, scratch buffers from `ctx`, running batch-norm statistics.
    pub fn policy_value(&self, state: &State, ctx: &mut InferenceCtx) -> NetOutput {
        self.net
            .forward(&state.s_p, &state.s_a, state.t, state.total, ctx)
    }

    /// Evaluates π_θ and V_θ on a batch of states in one pass through the
    /// network. Returns one output per state, in order; each output equals
    /// the corresponding [`Agent::policy_value`] result.
    pub fn policy_value_batch(&self, states: &[State], ctx: &mut InferenceCtx) -> Vec<NetOutput> {
        let refs: Vec<StateRef<'_>> = states
            .iter()
            .map(|s| StateRef {
                s_p: &s.s_p,
                s_a: &s.s_a,
                t: s.t,
                total: s.total,
            })
            .collect();
        self.net.forward_batch(&refs, ctx)
    }

    /// Samples an action from π_θ.
    ///
    /// Falls back to the most-available cell when the distribution is
    /// degenerate (all cells masked).
    pub fn sample_action<R: Rng>(
        &self,
        state: &State,
        rng: &mut R,
        ctx: &mut InferenceCtx,
    ) -> usize {
        let out = self.policy_value(state, ctx);
        sample_from(&out.probs, rng).unwrap_or_else(|| argmax(&state.s_a))
    }

    /// The greedy (argmax) action of π_θ.
    pub fn greedy_action(&self, state: &State, ctx: &mut InferenceCtx) -> usize {
        let out = self.policy_value(state, ctx);
        argmax(&out.probs)
    }

    /// Serialises the agent as JSON. A mut reference can be passed as the
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates serialisation/I/O failures.
    pub fn save<W: Write>(&self, w: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(w, self)
    }

    /// Reads an agent saved by [`Agent::save`]. A mut reference can be
    /// passed as the reader.
    ///
    /// # Errors
    ///
    /// Propagates deserialisation/I/O failures.
    pub fn load<R: Read>(r: R) -> Result<Self, serde_json::Error> {
        serde_json::from_reader(r)
    }
}

/// Samples an index from an (unnormalised is fine) non-negative weight
/// vector; `None` when all weights vanish.
pub(crate) fn sample_from<R: Rng>(weights: &[f32], rng: &mut R) -> Option<usize> {
    let total: f32 = weights.iter().filter(|w| w.is_finite()).sum();
    if total.is_nan() || total <= 0.0 {
        return None;
    }
    let mut ticket = rng.gen::<f32>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() {
            continue;
        }
        ticket -= w;
        if ticket <= 0.0 {
            return Some(i);
        }
    }
    weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn state(z2: usize) -> State {
        State {
            s_p: vec![0.2; z2],
            s_a: vec![1.0; z2],
            t: 0,
            total: 4,
        }
    }

    fn tiny_agent() -> Agent {
        Agent::new(AgentConfig {
            zeta: 4,
            channels: 4,
            res_blocks: 1,
            seed: 3,
        })
    }

    #[test]
    fn greedy_action_is_deterministic() {
        let a = tiny_agent();
        let mut ctx = InferenceCtx::new();
        let s = state(16);
        assert_eq!(a.greedy_action(&s, &mut ctx), a.greedy_action(&s, &mut ctx));
    }

    #[test]
    fn sampling_respects_mask() {
        let a = tiny_agent();
        let mut ctx = InferenceCtx::new();
        let mut s = state(16);
        for i in 0..16 {
            if i != 7 {
                s.s_a[i] = 0.0;
            }
        }
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(a.sample_action(&s, &mut rng, &mut ctx), 7);
        }
    }

    #[test]
    fn fully_masked_state_falls_back() {
        let a = tiny_agent();
        let mut ctx = InferenceCtx::new();
        let mut s = state(16);
        s.s_a = vec![0.0; 16];
        let mut rng = SmallRng::seed_from_u64(2);
        let act = a.sample_action(&s, &mut rng, &mut ctx);
        assert!(act < 16);
    }

    #[test]
    fn save_load_roundtrip_preserves_behaviour() {
        let a = tiny_agent();
        let mut ctx = InferenceCtx::new();
        let s = state(16);
        let before = a.policy_value(&s, &mut ctx);
        let mut buf = Vec::new();
        a.save(&mut buf).unwrap();
        let b = Agent::load(buf.as_slice()).unwrap();
        let after = b.policy_value(&s, &mut ctx);
        assert_eq!(before, after);
    }

    #[test]
    fn batched_policy_value_matches_singles() {
        let a = tiny_agent();
        let mut ctx = InferenceCtx::new();
        let states: Vec<State> = (0..4)
            .map(|k| {
                let mut s = state(16);
                s.s_p.iter_mut().enumerate().for_each(|(i, v)| {
                    *v = ((i + k) % 3) as f32 * 0.4;
                });
                s.s_a[k] = 0.0;
                s.t = k;
                s
            })
            .collect();
        let batched = a.policy_value_batch(&states, &mut ctx);
        assert_eq!(batched.len(), states.len());
        for (s, b) in states.iter().zip(&batched) {
            let single = a.policy_value(s, &mut ctx);
            assert!((single.value - b.value).abs() < 1e-5);
            for (x, y) in single.probs.iter().zip(&b.probs) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let a = tiny_agent();
        let mut ctx = InferenceCtx::new();
        assert!(a.policy_value_batch(&[], &mut ctx).is_empty());
    }

    #[test]
    fn shared_agent_across_threads_with_private_ctx() {
        // The point of the weights/workspace split: several threads evaluate
        // the same `&Agent` concurrently, each with its own ctx.
        let a = tiny_agent();
        let s = state(16);
        let mut ctx = InferenceCtx::new();
        let want = a.policy_value(&s, &mut ctx);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut ctx = InferenceCtx::new();
                    let got = a.policy_value(&s, &mut ctx);
                    assert_eq!(got, want);
                });
            }
        });
    }

    #[test]
    fn sample_from_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(sample_from(&[0.0, 0.0], &mut rng), None);
        assert_eq!(sample_from(&[0.0, 1.0], &mut rng), Some(1));
        // Distribution roughly follows the weights.
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[sample_from(&[1.0, 3.0], &mut rng).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sample_from_handles_infinities() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Non-finite entries are skipped rather than poisoning the sum.
        let act = sample_from(&[f32::INFINITY, 1.0], &mut rng);
        assert_eq!(act, Some(1));
    }
}
