#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests and benches may unwrap freely). Justified invariant `expect`s
// carry explicit allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Placement optimization by MCTS (paper Sec. IV).
//!
//! One search tree per design: each node is a partial macro-group
//! allocation, each edge carries the AlphaZero-style statistics
//! ⟨N, P, W, Q⟩. Per macro group, γ *explorations* are run — selection by
//! PUCT (Eqs. 10–11, c = 1.05), expansion with priors from the pre-trained
//! π_θ, **evaluation by V_θ for non-terminal leaves** (the paper's runtime
//! trick: the real legalize-and-place pipeline runs only at terminal
//! leaves), and backpropagation of the value along the path (Eq. 12). The
//! most-visited child becomes the next state, and the final allocation is
//! read off the path from the root (Algorithm 1, lines 11–15).
//!
//! # Example
//!
//! ```
//! use mmp_mcts::{MctsConfig, MctsPlacer};
//! use mmp_netlist::SyntheticSpec;
//! use mmp_rl::{Trainer, TrainerConfig};
//!
//! let design = SyntheticSpec::small("m", 6, 0, 8, 40, 70, false, 3).generate();
//! let mut cfg = TrainerConfig::tiny(4);
//! cfg.episodes = 3;
//! let trainer = Trainer::new(&design, cfg);
//! let out = trainer.train();
//! let mcts = MctsPlacer::new(MctsConfig { explorations: 8, ..MctsConfig::default() });
//! let result = mcts.place(&trainer, &out.agent, &out.scale);
//! assert_eq!(result.assignment.len(), trainer.coarse().macro_groups().len());
//! ```

pub mod ensemble;
pub mod search;
pub mod tree;

pub use ensemble::{
    place_ensemble, place_ensemble_with_deadline, EnsembleConfig, EnsembleError, EnsembleOutcome,
};
pub use search::{
    MctsConfig, MctsOutcome, MctsPlacer, SearchCheckpoint, SearchCheckpointSink, SearchStats,
};
pub use tree::{EdgeStats, SearchTree};
