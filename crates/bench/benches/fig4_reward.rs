//! Criterion bench for the Fig. 4 experiment's hot kernel: one training
//! episode (sample → legalize → place cells → reward) under each reward
//! function, plus one A2C update.

use criterion::{criterion_group, criterion_main, Criterion};
use mmp_core::{RewardKind, SyntheticSpec, Trainer, TrainerConfig};

fn bench_training_episode(c: &mut Criterion) {
    let design = SyntheticSpec::small("f4", 8, 0, 12, 120, 200, false, 1).generate();
    let mut group = c.benchmark_group("fig4_reward");
    group.sample_size(10);
    for (label, kind) in [
        ("eq9_with_alpha", RewardKind::Paper { alpha: 0.75 }),
        ("eq9_no_alpha", RewardKind::PaperNoAlpha),
        ("neg_wirelength", RewardKind::NegWirelength),
    ] {
        group.bench_function(format!("train_5_episodes/{label}"), |b| {
            b.iter(|| {
                let mut cfg = TrainerConfig::tiny(8);
                cfg.coarse_eval = false;
                cfg.episodes = 5;
                cfg.calibration_episodes = 2;
                cfg.update_every = 5;
                cfg.reward = kind;
                let out = Trainer::new(&design, cfg).train();
                criterion::black_box(out.history.episode_rewards.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_episode);
criterion_main!(benches);
