//! Convex piecewise-linear wirelength descent under sequence-pair
//! constraints — our equivalent of the white-space LP of Eq. 3.
//!
//! Minimising Σ λ·|x_i − t| subject to the difference constraints of a
//! constraint graph is a linear program. We solve it by iterated weighted-
//! median moves: starting from the feasible longest-path packing, each block
//! moves to the weighted median of its pull targets, clamped to the slack
//! window its neighbours currently allow. Every intermediate state stays
//! feasible (overlap-free), and the objective is non-increasing, so the
//! iteration converges; for this separable convex objective the fixpoint
//! matches the LP optimum up to ties.

use crate::constraint::{pack, ConstraintGraph};
use serde::{Deserialize, Serialize};

/// One weighted pull target on a block along one axis.
///
/// Coordinates refer to the block's **near edge** (lower-left corner
/// component); callers convert center targets by subtracting half the size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxisTarget {
    /// Desired near-edge coordinate.
    pub coord: f64,
    /// Net weight λ.
    pub weight: f64,
}

/// Weighted median of targets: the minimiser of Σ wᵢ·|x − cᵢ|.
///
/// Returns `None` for an empty (or zero-weight) target set.
pub fn weighted_median(targets: &[AxisTarget]) -> Option<f64> {
    let total: f64 = targets.iter().map(|t| t.weight).sum();
    if targets.is_empty() || total <= 0.0 {
        return None;
    }
    let mut sorted: Vec<&AxisTarget> = targets.iter().collect();
    // total_cmp keeps the sort deterministic even for poisoned (NaN)
    // targets instead of panicking mid-legalization.
    sorted.sort_by(|a, b| a.coord.total_cmp(&b.coord));
    let mut acc = 0.0;
    for t in sorted {
        acc += t.weight;
        if acc + 1e-15 >= total / 2.0 {
            return Some(t.coord);
        }
    }
    Some(targets[targets.len() - 1].coord)
}

/// Solves one axis: near-edge coordinates minimising the weighted-median
/// objective subject to the constraint graph, blocks kept inside
/// `[lo, hi]` where the graph allows it.
///
/// `targets[i]` are the pulls on block `i`; a block without targets keeps
/// whatever slack position it has. Returns the coordinates; when the
/// longest-path packing itself exceeds `hi` the result honours the
/// constraint graph but overflows the interval (callers detect this with
/// [`axis_overflow`]).
///
/// # Panics
///
/// Panics when slice lengths disagree.
pub fn optimize_axis(
    graph: &ConstraintGraph,
    sizes: &[f64],
    lo: f64,
    hi: f64,
    targets: &[Vec<AxisTarget>],
    max_iters: usize,
) -> Vec<f64> {
    let n = graph.len();
    assert_eq!(sizes.len(), n, "size count mismatch");
    assert_eq!(targets.len(), n, "target count mismatch");
    let mut coord = pack(graph, sizes, lo);
    if n == 0 {
        return coord;
    }
    let topo: Vec<usize> = graph.topo_order().to_vec();
    for sweep in 0..max_iters {
        let mut moved = 0.0f64;
        // Alternate sweep direction: forward passes push right-slack usage,
        // backward passes pull blocks back toward earlier targets.
        let iter_order: Box<dyn Iterator<Item = &usize>> = if sweep % 2 == 0 {
            Box::new(topo.iter())
        } else {
            Box::new(topo.iter().rev())
        };
        for &i in iter_order {
            let mut low = lo;
            for &p in graph.preds(i) {
                low = low.max(coord[p] + sizes[p]);
            }
            let mut high = hi - sizes[i];
            for &s in graph.succs(i) {
                high = high.min(coord[s] - sizes[i]);
            }
            // Feasibility wrt the graph wins over the interval bound.
            if high < low {
                high = low;
            }
            let desired = weighted_median(&targets[i]).unwrap_or(coord[i]);
            let next = desired.clamp(low, high);
            moved = moved.max((next - coord[i]).abs());
            coord[i] = next;
        }
        if moved < 1e-9 {
            break;
        }
    }
    coord
}

/// How far the packed blocks overflow `[lo, hi]` (0 when everything fits).
pub fn axis_overflow(coord: &[f64], sizes: &[f64], lo: f64, hi: f64) -> f64 {
    let mut over = 0.0f64;
    for (c, s) in coord.iter().zip(sizes) {
        over = over.max(lo - c).max(c + s - hi);
    }
    over.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence_pair::SequencePair;
    use mmp_geom::Point;
    use proptest::prelude::*;

    fn t(coord: f64, weight: f64) -> AxisTarget {
        AxisTarget { coord, weight }
    }

    #[test]
    fn median_of_empty_is_none() {
        assert_eq!(weighted_median(&[]), None);
        assert_eq!(weighted_median(&[t(1.0, 0.0)]), None);
    }

    #[test]
    fn median_unweighted() {
        assert_eq!(
            weighted_median(&[t(1.0, 1.0), t(5.0, 1.0), t(9.0, 1.0)]),
            Some(5.0)
        );
    }

    #[test]
    fn median_respects_weights() {
        // Heavy target at 10 dominates.
        assert_eq!(weighted_median(&[t(0.0, 1.0), t(10.0, 5.0)]), Some(10.0));
    }

    #[test]
    fn median_is_order_independent() {
        let a = weighted_median(&[t(3.0, 1.0), t(1.0, 2.0), t(7.0, 1.5)]);
        let b = weighted_median(&[t(7.0, 1.5), t(3.0, 1.0), t(1.0, 2.0)]);
        assert_eq!(a, b);
    }

    /// One block, free interval: it goes exactly to its target.
    #[test]
    fn single_block_reaches_target() {
        let sp = SequencePair::from_points(&[Point::ORIGIN]);
        let g = ConstraintGraph::from_sequence_pair(&sp, true);
        let out = optimize_axis(&g, &[2.0], 0.0, 100.0, &[vec![t(40.0, 1.0)]], 10);
        assert_eq!(out, vec![40.0]);
    }

    /// Two abutting blocks pulled to the same point: they end adjacent
    /// around it, never overlapping.
    #[test]
    fn contested_target_keeps_blocks_disjoint() {
        let sp = SequencePair::from_points(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let g = ConstraintGraph::from_sequence_pair(&sp, true);
        let sizes = [4.0, 4.0];
        let targets = vec![vec![t(50.0, 1.0)], vec![t(50.0, 1.0)]];
        let out = optimize_axis(&g, &sizes, 0.0, 100.0, &targets, 50);
        assert!(out[0] + sizes[0] <= out[1] + 1e-9, "{out:?}");
        // Both ends near the contested point.
        assert!(out[0] >= 40.0 && out[1] <= 60.0, "{out:?}");
    }

    /// Blocks without targets stay put where packing placed them.
    #[test]
    fn targetless_block_keeps_position() {
        let sp = SequencePair::from_points(&[Point::ORIGIN]);
        let g = ConstraintGraph::from_sequence_pair(&sp, true);
        let out = optimize_axis(&g, &[2.0], 5.0, 100.0, &[vec![]], 10);
        assert_eq!(out, vec![5.0]);
    }

    /// Interval bound is honoured when feasible.
    #[test]
    fn targets_outside_interval_clamp() {
        let sp = SequencePair::from_points(&[Point::ORIGIN]);
        let g = ConstraintGraph::from_sequence_pair(&sp, true);
        let out = optimize_axis(&g, &[10.0], 0.0, 50.0, &[vec![t(1000.0, 1.0)]], 10);
        assert_eq!(out, vec![40.0]);
        assert_eq!(axis_overflow(&out, &[10.0], 0.0, 50.0), 0.0);
    }

    /// Oversubscribed interval: the graph stays satisfied and the overflow
    /// is measurable.
    #[test]
    fn overflow_is_reported_when_blocks_do_not_fit() {
        let sp = SequencePair::from_points(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let g = ConstraintGraph::from_sequence_pair(&sp, true);
        let sizes = [30.0, 30.0];
        let out = optimize_axis(&g, &sizes, 0.0, 50.0, &[vec![], vec![]], 10);
        assert!(out[0] + sizes[0] <= out[1] + 1e-9);
        assert!(axis_overflow(&out, &sizes, 0.0, 50.0) > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn optimizer_preserves_constraints(
            blocks in proptest::collection::vec(
                (-20.0f64..20.0, -20.0f64..20.0, 1.0f64..6.0), 1..10),
            pulls in proptest::collection::vec(0.0f64..80.0, 1..10),
        ) {
            let centers: Vec<Point> = blocks.iter().map(|b| Point::new(b.0, b.1)).collect();
            let sizes: Vec<f64> = blocks.iter().map(|b| b.2).collect();
            let sp = SequencePair::from_points(&centers);
            let g = ConstraintGraph::from_sequence_pair(&sp, true);
            let targets: Vec<Vec<AxisTarget>> = (0..centers.len())
                .map(|i| vec![t(pulls[i % pulls.len()], 1.0)])
                .collect();
            let out = optimize_axis(&g, &sizes, 0.0, 100.0, &targets, 20);
            for i in 0..centers.len() {
                for &s in g.succs(i) {
                    prop_assert!(out[i] + sizes[i] <= out[s] + 1e-9,
                        "edge {}->{} violated: {} + {} > {}", i, s, out[i], sizes[i], out[s]);
                }
            }
        }

        #[test]
        fn median_minimizes_objective(
            targets in proptest::collection::vec((-50.0f64..50.0, 0.1f64..3.0), 1..12),
            probe in -60.0f64..60.0,
        ) {
            let ts: Vec<AxisTarget> = targets.iter().map(|&(c, w)| t(c, w)).collect();
            let med = weighted_median(&ts).unwrap();
            let obj = |x: f64| ts.iter().map(|t| t.weight * (x - t.coord).abs()).sum::<f64>();
            prop_assert!(obj(med) <= obj(probe) + 1e-9);
        }
    }
}
