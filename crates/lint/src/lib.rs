//! `mmp-lint` — workspace static analysis for determinism and
//! stage-invariant conventions.
//!
//! The placement flow (RL pre-training → PUCT-guided MCTS → legalization)
//! is only reproducible if every stage is bitwise deterministic. The
//! conventions that guarantee it — seeded vendored RNG only, `total_cmp`
//! instead of `partial_cmp().unwrap()`, no hash-order-dependent
//! iteration, no wall-clock reads outside the budget/obs layers — cannot
//! all be expressed as clippy lints, so this crate machine-enforces them
//! with a hand-rolled, dependency-free lexer (see [`lexer`]).
//!
//! # Rules
//!
//! | id | scope | enforces |
//! |----|-------|----------|
//! | `hash-order` (R1)  | decision crates | no `HashMap`/`HashSet` whose order could reach decisions |
//! | `partial-cmp` (R2) | all crates | `f64::total_cmp` instead of `partial_cmp` |
//! | `wallclock` (R3)   | all but budget/obs/bench | no `Instant::now`/`SystemTime::now` |
//! | `rng-source` (R4)  | all crates | no `thread_rng`/`rand::random`/`RandomState` |
//! | `allow-why` (R5)   | all crates | `#[allow(..)]` of a denied lint carries a `why:` |
//! | `parallelism` (R6) | all but pool/bench | no `available_parallelism`-derived partitioning |
//! | `fs-route` (R7)    | ckpt/serve lib code | fs mutations only through the `mmp-vfs` chokepoint |
//! | `suppression`      | all crates | suppression comments parse, justify, and bite |
//!
//! # Suppressions
//!
//! A finding is silenced in-source by a plain line comment on the same
//! line or the line directly above, of the form
//!
//! ```text
//! // mmp-lint: allow(hash-order) why: lookup table only, never iterated
//! ```
//!
//! The `why:` text is mandatory and must be non-empty; a malformed,
//! unknown-rule, or unused suppression is itself a (non-suppressible)
//! finding, so stale directives cannot accumulate.

pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{
    ALLOW_WHY, FS_ROUTE, HASH_ORDER, PARALLELISM, PARTIAL_CMP, RNG_SOURCE, RULES, SUPPRESSION,
    WALLCLOCK,
};

/// What the engine enforces where. [`LintConfig::default`] encodes this
/// workspace's conventions; tests construct narrower configs.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crate directory names (under `crates/`) whose code makes or feeds
    /// placement decisions — the `hash-order` rule applies only here.
    pub decision_crates: Vec<String>,
    /// Path prefixes (workspace-relative, `/`-separated) where wall-clock
    /// reads are sanctioned: the budget/obs timing layers and the bench
    /// harness edge.
    pub wallclock_sanctioned: Vec<String>,
    /// Lints that CI denies; `#[allow(..)]`-ing one needs a `why:`.
    pub denied_lints: Vec<String>,
    /// Path prefixes where `available_parallelism` is sanctioned: the
    /// deterministic pool crate (which must never call it for partitioning,
    /// but may reference it in docs/validation) and the bench harness edge
    /// (machine reporting only). Everywhere else the worker count must come
    /// from explicit configuration.
    pub parallelism_sanctioned: Vec<String>,
    /// Path prefixes whose library code must route every filesystem
    /// mutation through the `mmp-vfs` chokepoint (`fs-route` rule): the
    /// checkpoint and serving crates, whose durable writes the torture
    /// harness must be able to intercept. Unit-test modules are exempt.
    pub fs_route_scoped: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|x| (*x).to_owned()).collect();
        LintConfig {
            decision_crates: s(&[
                "analytic", "cluster", "core", "legal", "mcts", "netlist", "rl",
            ]),
            wallclock_sanctioned: s(&[
                "crates/obs/src",
                "crates/core/src/budget.rs",
                "crates/bench/src",
                // The daemon's single clock chokepoint: queue-wait spans
                // and nothing else (placement decisions never see it).
                "crates/serve/src/clock.rs",
            ]),
            denied_lints: s(&[
                "clippy::disallowed_methods",
                "clippy::unwrap_used",
                "clippy::expect_used",
                "clippy::print_stdout",
                "clippy::print_stderr",
            ]),
            parallelism_sanctioned: s(&["crates/pool/src", "crates/bench/src"]),
            fs_route_scoped: s(&["crates/ckpt/src", "crates/serve/src"]),
        }
    }
}

impl LintConfig {
    /// `true` when `path_rel` lives in a decision crate's `src/`.
    pub fn is_decision_crate(&self, path_rel: &str) -> bool {
        self.decision_crates
            .iter()
            .any(|c| path_rel.starts_with(&format!("crates/{c}/src/")))
    }

    /// `true` when `path_rel` is a sanctioned wall-clock module.
    pub fn is_wallclock_sanctioned(&self, path_rel: &str) -> bool {
        self.wallclock_sanctioned
            .iter()
            .any(|p| path_rel.starts_with(p.as_str()))
    }

    /// `true` when `path_rel` may mention `available_parallelism`.
    pub fn is_parallelism_sanctioned(&self, path_rel: &str) -> bool {
        self.parallelism_sanctioned
            .iter()
            .any(|p| path_rel.starts_with(p.as_str()))
    }

    /// `true` when `path_rel` must route fs mutations through `mmp-vfs`.
    pub fn is_fs_route_scoped(&self, path_rel: &str) -> bool {
        self.fs_route_scoped
            .iter()
            .any(|p| path_rel.starts_with(p.as_str()))
    }
}

/// One finding, after suppression matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`hash-order`, `partial-cmp`, ...).
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
    /// `true` when an in-source directive silenced this finding.
    pub suppressed: bool,
    /// The justification text of the matching directive, if suppressed.
    pub why: Option<String>,
}

/// A parsed `mmp-lint: allow(..) why: ..` directive.
struct Suppression {
    line: usize,
    rules: Vec<String>,
    why: String,
    used: bool,
}

/// Lints one file's source. `path_rel` scopes the crate-sensitive rules,
/// so fixtures can pretend to live anywhere in the workspace.
pub fn lint_source(path_rel: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let raw = rules::scan(path_rel, &lexed, cfg);

    let mut findings: Vec<Finding> = Vec::new();
    let mut sups: Vec<Suppression> = Vec::new();
    for c in &lexed.comments {
        match parse_directive(&c.text) {
            Directive::None => {}
            Directive::Malformed(msg) => findings.push(Finding {
                rule: SUPPRESSION.to_owned(),
                path: path_rel.to_owned(),
                line: c.line,
                col: 1,
                message: msg,
                suppressed: false,
                why: None,
            }),
            Directive::Allow { rules, why } => sups.push(Suppression {
                line: c.line,
                rules,
                why,
                used: false,
            }),
        }
    }

    for f in raw {
        let hit = sups.iter_mut().find(|s| {
            (s.line == f.line || s.line + 1 == f.line) && s.rules.iter().any(|r| r == f.rule)
        });
        let (suppressed, why) = match hit {
            Some(s) => {
                s.used = true;
                (true, Some(s.why.clone()))
            }
            None => (false, None),
        };
        findings.push(Finding {
            rule: f.rule.to_owned(),
            path: path_rel.to_owned(),
            line: f.line,
            col: f.col,
            message: f.message,
            suppressed,
            why,
        });
    }

    for s in &sups {
        if !s.used {
            findings.push(Finding {
                rule: SUPPRESSION.to_owned(),
                path: path_rel.to_owned(),
                line: s.line,
                col: 1,
                message: format!(
                    "unused suppression for ({}) — it matches no finding on \
                     this or the next line; remove it",
                    s.rules.join(", ")
                ),
                suppressed: false,
                why: None,
            });
        }
    }

    findings
        .sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    findings
}

enum Directive {
    None,
    Malformed(String),
    Allow { rules: Vec<String>, why: String },
}

/// Parses one comment. Only plain `//` line comments carry directives —
/// doc comments (`///`, `//!`) and block comments never do, so rustdoc
/// can *describe* the syntax without tripping the meta rule.
fn parse_directive(text: &str) -> Directive {
    if !text.starts_with("//") || text.starts_with("///") || text.starts_with("//!") {
        return Directive::None;
    }
    let body = text.trim_start_matches('/').trim_start();
    let Some(rest) = body.strip_prefix("mmp-lint:") else {
        return Directive::None;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Directive::Malformed(
            "malformed mmp-lint directive: expected `mmp-lint: allow(<rule>) why: <text>`"
                .to_owned(),
        );
    };
    let Some(close) = rest.find(')') else {
        return Directive::Malformed(
            "malformed mmp-lint directive: unclosed allow( rule list".to_owned(),
        );
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Directive::Malformed(
            "malformed mmp-lint directive: empty allow( ) rule list".to_owned(),
        );
    }
    for r in &rules {
        if r == SUPPRESSION {
            return Directive::Malformed(
                "the suppression meta rule cannot be suppressed".to_owned(),
            );
        }
        if !rules::known_rule(r) {
            return Directive::Malformed(format!(
                "mmp-lint directive names unknown rule `{r}` (known: {})",
                rules::RULES
                    .iter()
                    .map(|(id, _)| *id)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    let after = rest[close + 1..].trim_start();
    let Some(why) = after.strip_prefix("why:") else {
        return Directive::Malformed(
            "mmp-lint directive is missing its `why:` justification".to_owned(),
        );
    };
    if why.trim().is_empty() {
        return Directive::Malformed(
            "mmp-lint directive has an empty `why:` justification".to_owned(),
        );
    }
    Directive::Allow {
        rules,
        why: why.trim().to_owned(),
    }
}

/// Lints every `crates/*/src/**/*.rs` under `root` (the workspace
/// checkout). `vendor/` is never walked: the vendored stubs mirror
/// external crates and are not held to project conventions.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree (a missing
/// `crates/` directory, unreadable files).
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in crates_dir.read_dir()? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();

    let mut files: Vec<PathBuf> = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&file)?;
        findings.extend(lint_source(&rel, &src, cfg));
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in dir.read_dir()? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Human-readable report: every unsuppressed finding, then a summary
/// line. Suppressed findings are counted but not listed.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    let mut unsuppressed = 0usize;
    for f in findings {
        if f.suppressed {
            continue;
        }
        unsuppressed += 1;
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}",
            f.path, f.line, f.col, f.rule, f.message
        );
    }
    let _ = writeln!(
        out,
        "mmp-lint: {} finding(s), {} unsuppressed, {} suppressed",
        findings.len(),
        unsuppressed,
        findings.len() - unsuppressed
    );
    out
}

/// Machine-readable report. Schema (stable, `version` guards changes):
///
/// ```text
/// {"version":1,"total":N,"unsuppressed":M,
///  "findings":[{"rule":"..","path":"..","line":L,"col":C,
///               "message":"..","suppressed":false,"why":null}, ..]}
/// ```
pub fn render_json(findings: &[Finding]) -> String {
    let unsuppressed = findings.iter().filter(|f| !f.suppressed).count();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":1,\"total\":{},\"unsuppressed\":{},\"findings\":[",
        findings.len(),
        unsuppressed
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\
             \"suppressed\":{},\"why\":{}}}",
            json_str(&f.rule),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message),
            f.suppressed,
            match &f.why {
                Some(w) => json_str(w),
                None => "null".to_owned(),
            }
        );
    }
    out.push_str("]}");
    out
}

/// Escapes a string as a JSON literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_roundtrip() {
        match parse_directive("// mmp-lint: allow(hash-order, wallclock) why: lookup only") {
            Directive::Allow { rules, why } => {
                assert_eq!(rules, vec!["hash-order", "wallclock"]);
                assert_eq!(why, "lookup only");
            }
            _ => panic!("expected Allow"),
        }
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        assert!(matches!(
            parse_directive("/// mmp-lint: allow(hash-order) why: doc example"),
            Directive::None
        ));
    }

    #[test]
    fn missing_why_is_malformed() {
        assert!(matches!(
            parse_directive("// mmp-lint: allow(hash-order)"),
            Directive::Malformed(_)
        ));
        assert!(matches!(
            parse_directive("// mmp-lint: allow(hash-order) why:   "),
            Directive::Malformed(_)
        ));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        assert!(matches!(
            parse_directive("// mmp-lint: allow(no-such-rule) why: x"),
            Directive::Malformed(_)
        ));
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }
}
