//! End-to-end integration of the whole workspace: generator → prototyping
//! placement → clustering → RL → MCTS → legalization → cell placement.

use mmp_core::{MacroPlacer, PlaceError, PlacerConfig, SyntheticSpec};

fn small_config() -> PlacerConfig {
    let mut cfg = PlacerConfig::fast(6);
    cfg.trainer.episodes = 8;
    cfg.trainer.calibration_episodes = 4;
    cfg.mcts.explorations = 12;
    cfg
}

#[test]
fn flow_on_hierarchical_design_with_preplaced_macros() {
    let design = SyntheticSpec::small("it_full", 10, 3, 16, 160, 260, true, 11).generate();
    let result = MacroPlacer::new(small_config()).place(&design).unwrap();

    // Legality of the macro placement.
    assert!(result.placement.macro_overlap_area(&design) < 1e-6);
    assert!(result.placement.macros_inside_region(&design));
    // Preplaced macros untouched.
    for id in design.preplaced_macros() {
        assert_eq!(
            result.placement.macro_center(id),
            design.macro_(id).fixed_center.unwrap()
        );
    }
    // One grid cell per macro group.
    assert!(!result.assignment.is_empty());
    // HPWL is consistent with the returned placement.
    assert!((result.placement.hpwl(&design) - result.hpwl).abs() < 1e-9);
}

#[test]
fn flow_is_deterministic_across_runs() {
    let design = SyntheticSpec::small("it_det", 8, 0, 12, 100, 170, false, 12).generate();
    let placer = MacroPlacer::new(small_config());
    let a = placer.place(&design).unwrap();
    let b = placer.place(&design).unwrap();
    assert_eq!(a.hpwl, b.hpwl);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.placement, b.placement);
}

#[test]
fn different_seeds_give_different_but_legal_placements() {
    let mut cfg = small_config();
    let design = SyntheticSpec::small("it_seed", 8, 0, 12, 100, 170, false, 13).generate();
    let a = MacroPlacer::new(cfg.clone()).place(&design).unwrap();
    cfg.trainer.seed = 99;
    let b = MacroPlacer::new(cfg).place(&design).unwrap();
    assert!(a.placement.macro_overlap_area(&design) < 1e-6);
    assert!(b.placement.macro_overlap_area(&design) < 1e-6);
    // Different RL seeds almost surely give different allocations.
    assert_ne!(a.assignment, b.assignment);
}

#[test]
fn zero_macro_design_takes_the_ibm05_path() {
    let design = SyntheticSpec::small("it_ibm05", 0, 0, 12, 120, 150, false, 14).generate();
    let result = MacroPlacer::new(small_config()).place(&design).unwrap();
    assert!(result.assignment.is_empty());
    assert_eq!(result.mcts_stats.explorations, 0);
    assert!(result.hpwl > 0.0);
}

#[test]
fn infeasible_designs_are_rejected_up_front() {
    use mmp_geom::{Point, Rect};
    let mut b = mmp_netlist::DesignBuilder::new("it_inf", Rect::new(0.0, 0.0, 10.0, 10.0));
    for i in 0..3 {
        b.add_macro(format!("m{i}"), 7.0, 7.0, "");
    }
    let design = b.build().unwrap();
    let _ = Point::ORIGIN;
    let err = MacroPlacer::new(small_config()).place(&design).unwrap_err();
    assert!(matches!(
        err,
        PlaceError::Preprocess(mmp_core::PreprocessError::MacrosExceedRegion { .. })
    ));
    assert_eq!(err.exit_code(), 10);
}

#[test]
fn flow_handles_single_macro_design() {
    use mmp_geom::{Point, Rect};
    let mut b = mmp_netlist::DesignBuilder::new("it_one", Rect::new(0.0, 0.0, 60.0, 60.0));
    let m = b.add_macro("m", 6.0, 6.0, "top");
    let c = b.add_cell("c", 1.0, 1.0, "top");
    let p = b.add_pad("p", Point::new(0.0, 30.0));
    b.add_net(
        "n",
        [
            (m.into(), Point::ORIGIN),
            (c.into(), Point::ORIGIN),
            (p.into(), Point::ORIGIN),
        ],
        1.0,
    )
    .unwrap();
    let design = b.build().unwrap();
    let result = MacroPlacer::new(small_config()).place(&design).unwrap();
    assert_eq!(result.assignment.len(), 1);
    assert!(result.placement.macros_inside_region(&design));
}
