//! The paper's headline claims, checked at miniature scale.

use mmp_core::{RewardKind, SyntheticSpec, Trainer, TrainerConfig};
use mmp_mcts::{MctsConfig, MctsPlacer};

fn trainer_config(episodes: usize, seed: u64) -> TrainerConfig {
    let mut cfg = TrainerConfig::tiny(6);
    cfg.prototype_placement = true;
    cfg.coarse_eval = false;
    cfg.episodes = episodes;
    cfg.calibration_episodes = 6;
    cfg.update_every = 5;
    cfg.seed = seed;
    cfg
}

/// Sec. VI-B / Fig. 5: MCTS post-optimization is at least as good as the
/// greedy rollout of the same agent, even part-way through training.
#[test]
fn mcts_post_optimization_beats_or_matches_rl() {
    let design = SyntheticSpec::small("pc_fig5", 9, 0, 12, 110, 190, false, 21).generate();
    let trainer = Trainer::new(&design, trainer_config(12, 0));
    let out = trainer.train();
    let (_, rl_w) = trainer.greedy_episode(&out.agent);
    let mcts = MctsPlacer::new(MctsConfig {
        explorations: 64,
        ..MctsConfig::default()
    })
    .place(&trainer, &out.agent, &out.scale);
    assert!(
        mcts.wirelength <= rl_w * 1.02,
        "MCTS {} must not lose to greedy RL {}",
        mcts.wirelength,
        rl_w
    );
}

/// Sec. IV-B3: the value network evaluates non-terminal leaves, so real
/// placements (terminal evaluations) are a small share of search effort.
#[test]
fn value_network_carries_most_of_the_search() {
    let design = SyntheticSpec::small("pc_eval", 9, 0, 12, 110, 190, false, 22).generate();
    let trainer = Trainer::new(&design, trainer_config(6, 0));
    let out = trainer.train();
    let mcts = MctsPlacer::new(MctsConfig {
        explorations: 48,
        ..MctsConfig::default()
    })
    .place(&trainer, &out.agent, &out.scale);
    assert!(
        mcts.stats.terminal_evaluations * 2 <= mcts.stats.value_evaluations.max(1) * 3,
        "terminal evals {} should be well below value evals {}",
        mcts.stats.terminal_evaluations,
        mcts.stats.value_evaluations
    );
}

/// Sec. III-E: the calibrated Eq. 9 reward is O(1) while the intuitive −W
/// scales with the design — the scaling pathology Fig. 4 exposes.
#[test]
fn calibrated_rewards_are_order_one() {
    let design = SyntheticSpec::small("pc_rew", 8, 0, 12, 110, 180, false, 23).generate();
    for (kind, bounded) in [
        (RewardKind::Paper { alpha: 0.75 }, true),
        (RewardKind::PaperNoAlpha, true),
        (RewardKind::NegWirelength, false),
    ] {
        let mut cfg = trainer_config(6, 0);
        cfg.reward = kind;
        let out = Trainer::new(&design, cfg).train();
        let max_abs = out
            .history
            .episode_rewards
            .iter()
            .fold(0.0f64, |m, r| m.max(r.abs()));
        if bounded {
            assert!(max_abs < 50.0, "{kind:?} reward {max_abs} not O(1)");
        } else {
            assert!(max_abs > 100.0, "-W reward should scale with wirelength");
        }
    }
}

/// The grouping transform (Sec. II-A) shrinks the decision space: grouped
/// episodes are never longer than per-macro episodes.
#[test]
fn grouping_reduces_episode_length() {
    let design = SyntheticSpec::small("pc_grp", 12, 0, 12, 140, 240, true, 24).generate();
    let grouped = Trainer::new(&design, trainer_config(1, 0));
    let mut ungrouped_cfg = trainer_config(1, 0);
    ungrouped_cfg.group_macros = false;
    let ungrouped = Trainer::new(&design, ungrouped_cfg);
    assert!(grouped.coarse().macro_groups().len() <= ungrouped.coarse().macro_groups().len());
    assert_eq!(ungrouped.coarse().macro_groups().len(), 12);
}

/// Table IV's shape: MCTS work scales with the number of macro groups.
#[test]
fn search_effort_scales_with_macro_count() {
    let mut efforts = Vec::new();
    for macros in [4usize, 12] {
        let design =
            SyntheticSpec::small(format!("pc_rt{macros}"), macros, 0, 12, 80, 140, false, 25)
                .generate();
        let trainer = Trainer::new(&design, trainer_config(4, 0));
        let out = trainer.train();
        let mcts = MctsPlacer::new(MctsConfig {
            explorations: 16,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        efforts.push(mcts.stats.explorations);
    }
    assert!(
        efforts[1] > efforts[0],
        "more macros ⇒ more decisions ⇒ more explorations: {efforts:?}"
    );
}
