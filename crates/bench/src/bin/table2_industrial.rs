//! Table II — HPWL on the industrial-like suite (Cir1–Cir6, with design
//! hierarchy and preplaced macros): SE placer \[26\] vs DREAMPlace \[25\] vs
//! ours.
//!
//! ```sh
//! cargo run --release -p mmp-bench --bin table2_industrial
//! ```
//!
//! Paper expectation (normalized vs ours): SE 1.05, DREAMPlace 1.23,
//! ours 1.00 — i.e. ours wins, the hierarchy-blind analytical placer loses
//! the most.

use mmp_baselines::{score_hpwl, AnalyticOnly, MacroPlacer as Baseline, SePlacer};
use mmp_bench::{header, industrial_scale, run_ours, scaled_count};
use mmp_core::{industrial_suite, normalize_rows, DesignStats, TableRow};

fn main() {
    header(
        "Table II — industrial-like benchmarks (hierarchy + preplaced macros)",
        "contenders: SE-based [26] | DREAMPlace-like [25] | Ours — HPWL in um (lower wins)",
    );
    let scale = industrial_scale();
    println!("scale factor {scale} (MMP_SCALE to change)\n");

    let mut rows = Vec::new();
    println!(
        "{:>6} | {:>5} {:>5} {:>6} {:>8} {:>8} | {:>12} {:>16} {:>12}",
        "Cir.", "#Mov", "#Prep", "#Pads", "#Cells", "#Nets", "SE [26]", "DREAMPlace [25]", "Ours"
    );
    for spec in industrial_suite() {
        let spec = spec.scaled(scale);
        let design = spec.generate();
        let stats = DesignStats::of(&design);

        let se = score_hpwl(
            &design,
            &SePlacer::new(scaled_count(5, 2), 16, 1).place_macros(&design),
        );
        let dreamplace = score_hpwl(&design, &AnalyticOnly::new().place_macros(&design));
        let ours = run_ours(&spec, 16).hpwl;

        println!(
            "{:>6} | {:>5} {:>5} {:>6} {:>8} {:>8} | {:>12.0} {:>16.0} {:>12.0}",
            stats.name,
            stats.movable_macros,
            stats.preplaced_macros,
            stats.io_pads,
            stats.std_cells,
            stats.nets,
            se,
            dreamplace,
            ours
        );
        rows.push(TableRow {
            circuit: stats.name,
            results: vec![
                ("SE [26]".into(), se),
                ("DREAMPlace [25]".into(), dreamplace),
                ("Ours".into(), ours),
            ],
        });
    }

    println!("\nnormalized (geometric mean, Ours = 1.00):");
    println!("{:>18} | {:>8} | {:>8}", "contender", "measured", "paper");
    let paper = [1.05, 1.23, 1.00];
    for ((name, norm), paper_val) in normalize_rows(&rows).into_iter().zip(paper) {
        println!("{name:>18} | {norm:>8.2} | {paper_val:>8.2}");
    }
    println!(
        "\npaper-vs-measured: the paper reports SE 5% and DREAMPlace 23% worse than\n\
         ours; the reproduction should preserve the ordering (Ours best)."
    );
}
