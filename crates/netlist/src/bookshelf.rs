//! Reader/writer for a Bookshelf-format subset.
//!
//! The ICCAD04 mixed-size benchmarks the paper evaluates on are distributed
//! in the GSRC Bookshelf format. We support the subset the placement flow
//! needs — `.nodes` (sizes, `terminal` for pads/preplaced), `.pl`
//! (positions, `/FIXED` markers), `.nets` (hyper-edges with pin offsets) —
//! serialised into a single self-contained text stream with section headers,
//! so designs round-trip through one file.
//!
//! Grammar (line oriented, `#` comments):
//!
//! ```text
//! REGION <x> <y> <width> <height>
//! NODES
//! <name> <width> <height> [macro|cell] [hier=<path>]
//! <name> 0 0 terminal <x> <y>
//! PL
//! <name> <cx> <cy> [/FIXED]
//! NETS
//! <netname> <weight> <degree> : (<node> <dx> <dy>)*
//! END
//! ```

use crate::builder::{BuildDesignError, DesignBuilder};
use crate::design::Design;
use crate::ids::NodeRef;
use crate::Placement;
use mmp_geom::{Point, Rect};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Error reading a bookshelf stream.
#[derive(Debug)]
pub enum ReadBookshelfError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The parsed design failed validation.
    Build(BuildDesignError),
}

impl fmt::Display for ReadBookshelfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadBookshelfError::Io(e) => write!(f, "i/o error reading bookshelf: {e}"),
            ReadBookshelfError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ReadBookshelfError::Build(e) => write!(f, "invalid design in bookshelf: {e}"),
        }
    }
}

impl Error for ReadBookshelfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadBookshelfError::Io(e) => Some(e),
            ReadBookshelfError::Build(e) => Some(e),
            ReadBookshelfError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadBookshelfError {
    fn from(e: std::io::Error) -> Self {
        ReadBookshelfError::Io(e)
    }
}

impl From<BuildDesignError> for ReadBookshelfError {
    fn from(e: BuildDesignError) -> Self {
        ReadBookshelfError::Build(e)
    }
}

/// Writes `design` (and optionally a placement for movable nodes) to `w`.
///
/// A mut reference can be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write<W: Write>(
    design: &Design,
    placement: Option<&Placement>,
    mut w: W,
) -> std::io::Result<()> {
    let r = design.region();
    writeln!(w, "# mmp bookshelf subset — design {}", design.name())?;
    writeln!(w, "REGION {} {} {} {}", r.x, r.y, r.width, r.height)?;
    writeln!(w, "NODES")?;
    for m in design.macros() {
        if let Some(c) = m.fixed_center {
            writeln!(
                w,
                "{} {} {} fixedmacro {} {} hier={}",
                m.name, m.width, m.height, c.x, c.y, m.hierarchy
            )?;
        } else {
            writeln!(
                w,
                "{} {} {} macro hier={}",
                m.name, m.width, m.height, m.hierarchy
            )?;
        }
    }
    for c in design.cells() {
        writeln!(
            w,
            "{} {} {} cell hier={}",
            c.name, c.width, c.height, c.hierarchy
        )?;
    }
    for p in design.pads() {
        writeln!(
            w,
            "{} 0 0 terminal {} {}",
            p.name, p.position.x, p.position.y
        )?;
    }
    if let Some(pl) = placement {
        writeln!(w, "PL")?;
        for (i, m) in design.macros().iter().enumerate() {
            let c = pl.macro_center(crate::MacroId::from_index(i));
            let fixed = if m.is_preplaced() { " /FIXED" } else { "" };
            writeln!(w, "{} {} {}{}", m.name, c.x, c.y, fixed)?;
        }
        for (i, cell) in design.cells().iter().enumerate() {
            let c = pl.cell_center(crate::CellId::from_index(i));
            writeln!(w, "{} {} {}", cell.name, c.x, c.y)?;
        }
    }
    writeln!(w, "NETS")?;
    for n in design.nets() {
        write!(w, "{} {} {} :", n.name, n.weight, n.pins.len())?;
        for pin in &n.pins {
            let name = match pin.node {
                NodeRef::Macro(id) => &design.macro_(id).name,
                NodeRef::Cell(id) => &design.cell(id).name,
                NodeRef::Pad(id) => &design.pad(id).name,
            };
            write!(w, " {} {} {}", name, pin.offset.x, pin.offset.y)?;
        }
        writeln!(w)?;
    }
    writeln!(w, "END")?;
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Prelude,
    Nodes,
    Pl,
    Nets,
    Done,
}

/// Reads a design (and the placement, if a `PL` section is present) written
/// by [`write()`]. A mut reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`ReadBookshelfError`] on I/O failures, malformed lines, unknown
/// node references or designs that fail validation.
pub fn read<R: Read>(name: &str, r: R) -> Result<(Design, Option<Placement>), ReadBookshelfError> {
    let reader = BufReader::new(r);
    let mut builder: Option<DesignBuilder> = None;
    let mut section = Section::Prelude;
    // mmp-lint: allow(hash-order) why: name→node lookup for pin resolution, only probed, never iterated
    let mut node_refs: HashMap<String, NodeRef> = HashMap::new();
    let mut pl_lines: Vec<(String, Point)> = Vec::new();
    let mut saw_pl = false;

    let parse_err = |line: usize, message: &str| ReadBookshelfError::Parse {
        line,
        message: message.to_owned(),
    };

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "NODES" => {
                section = Section::Nodes;
                continue;
            }
            "PL" => {
                section = Section::Pl;
                saw_pl = true;
                continue;
            }
            "NETS" => {
                section = Section::Nets;
                continue;
            }
            "END" => {
                section = Section::Done;
                continue;
            }
            _ => {}
        }
        match section {
            Section::Prelude => {
                let toks: Vec<&str> = line.split_whitespace().collect();
                if toks.len() != 5 || toks[0] != "REGION" {
                    return Err(parse_err(lineno, "expected REGION x y w h"));
                }
                let vals: Result<Vec<f64>, _> = toks[1..].iter().map(|t| t.parse()).collect();
                let vals = vals.map_err(|_| parse_err(lineno, "bad REGION number"))?;
                builder = Some(DesignBuilder::new(
                    name,
                    Rect::new(vals[0], vals[1], vals[2], vals[3]),
                ));
            }
            Section::Nodes => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "NODES before REGION"))?;
                let toks: Vec<&str> = line.split_whitespace().collect();
                if toks.len() < 4 {
                    return Err(parse_err(lineno, "node line needs name w h kind"));
                }
                let nm = toks[0].to_owned();
                let w: f64 = toks[1]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad node width"))?;
                let h: f64 = toks[2]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad node height"))?;
                let hier = toks
                    .iter()
                    .find_map(|t| t.strip_prefix("hier="))
                    .unwrap_or("")
                    .to_owned();
                let node: NodeRef = match toks[3] {
                    "macro" => b.add_macro(nm.clone(), w, h, hier).into(),
                    "cell" => b.add_cell(nm.clone(), w, h, hier).into(),
                    "fixedmacro" => {
                        if toks.len() < 6 {
                            return Err(parse_err(lineno, "fixedmacro needs x y"));
                        }
                        let x: f64 = toks[4]
                            .parse()
                            .map_err(|_| parse_err(lineno, "bad fixedmacro x"))?;
                        let y: f64 = toks[5]
                            .parse()
                            .map_err(|_| parse_err(lineno, "bad fixedmacro y"))?;
                        b.add_preplaced_macro(nm.clone(), w, h, hier, Point::new(x, y))
                            .into()
                    }
                    "terminal" => {
                        if toks.len() < 6 {
                            return Err(parse_err(lineno, "terminal needs x y"));
                        }
                        let x: f64 = toks[4]
                            .parse()
                            .map_err(|_| parse_err(lineno, "bad terminal x"))?;
                        let y: f64 = toks[5]
                            .parse()
                            .map_err(|_| parse_err(lineno, "bad terminal y"))?;
                        b.add_pad(nm.clone(), Point::new(x, y)).into()
                    }
                    other => return Err(parse_err(lineno, &format!("unknown node kind {other}"))),
                };
                node_refs.insert(nm, node);
            }
            Section::Pl => {
                let toks: Vec<&str> = line.split_whitespace().collect();
                if toks.len() < 3 {
                    return Err(parse_err(lineno, "pl line needs name x y"));
                }
                let x: f64 = toks[1].parse().map_err(|_| parse_err(lineno, "bad pl x"))?;
                let y: f64 = toks[2].parse().map_err(|_| parse_err(lineno, "bad pl y"))?;
                pl_lines.push((toks[0].to_owned(), Point::new(x, y)));
            }
            Section::Nets => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "NETS before REGION"))?;
                let (head, tail) = line
                    .split_once(':')
                    .ok_or_else(|| parse_err(lineno, "net line needs ':'"))?;
                let htoks: Vec<&str> = head.split_whitespace().collect();
                if htoks.len() != 3 {
                    return Err(parse_err(lineno, "net head needs name weight degree"));
                }
                let weight: f64 = htoks[1]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad net weight"))?;
                let degree: usize = htoks[2]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad net degree"))?;
                let ttoks: Vec<&str> = tail.split_whitespace().collect();
                if ttoks.len() != degree * 3 {
                    return Err(parse_err(lineno, "net pin count mismatch"));
                }
                let mut pins = Vec::with_capacity(degree);
                for chunk in ttoks.chunks(3) {
                    let node = *node_refs
                        .get(chunk[0])
                        .ok_or_else(|| parse_err(lineno, &format!("unknown node {}", chunk[0])))?;
                    let dx: f64 = chunk[1]
                        .parse()
                        .map_err(|_| parse_err(lineno, "bad pin dx"))?;
                    let dy: f64 = chunk[2]
                        .parse()
                        .map_err(|_| parse_err(lineno, "bad pin dy"))?;
                    pins.push((node, Point::new(dx, dy)));
                }
                b.add_net(htoks[0], pins, weight)?;
            }
            Section::Done => {
                return Err(parse_err(lineno, "content after END"));
            }
        }
    }

    let design = builder
        .ok_or_else(|| parse_err(0, "missing REGION header"))?
        .build()?;
    let placement = if saw_pl {
        let mut pl = Placement::initial(&design);
        for (nm, p) in pl_lines {
            match node_refs.get(&nm) {
                Some(NodeRef::Macro(id)) => pl.set_macro_center(*id, p),
                Some(NodeRef::Cell(id)) => pl.set_cell_center(*id, p),
                Some(NodeRef::Pad(_)) | None => {}
            }
        }
        Some(pl)
    } else {
        None
    };
    Ok((design, placement))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticSpec;
    use crate::MacroId;

    #[test]
    fn roundtrip_preserves_design_and_placement() {
        let spec = SyntheticSpec::small("rt", 6, 2, 8, 40, 60, true, 7);
        let design = spec.generate();
        let mut pl = Placement::initial(&design);
        pl.set_macro_center(MacroId(0), Point::new(12.5, 13.5));
        let mut buf = Vec::new();
        write(&design, Some(&pl), &mut buf).unwrap();
        let (d2, pl2) = read("rt", buf.as_slice()).unwrap();
        let pl2 = pl2.expect("placement present");
        assert_eq!(design.macros().len(), d2.macros().len());
        assert_eq!(design.cells().len(), d2.cells().len());
        assert_eq!(design.pads().len(), d2.pads().len());
        assert_eq!(design.nets().len(), d2.nets().len());
        assert_eq!(pl2.macro_center(MacroId(0)), Point::new(12.5, 13.5));
        // HPWL must be identical under the same coordinates.
        assert!((pl.hpwl(&design) - pl2.hpwl(&d2)).abs() < 1e-9);
    }

    #[test]
    fn missing_region_is_an_error() {
        let err = read("x", "NODES\nEND\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadBookshelfError::Parse { .. }));
    }

    #[test]
    fn bad_number_reports_line() {
        let src = "REGION 0 0 ten 10\n";
        match read("x", src.as_bytes()).unwrap_err() {
            ReadBookshelfError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_net_node_is_an_error() {
        let src =
            "REGION 0 0 10 10\nNODES\nm 1 1 macro hier=\nNETS\nn 1 2 : m 0 0 ghost 0 0\nEND\n";
        let err = read("x", src.as_bytes()).unwrap_err();
        match err {
            ReadBookshelfError::Parse { message, .. } => {
                assert!(message.contains("ghost"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn pin_count_mismatch_is_an_error() {
        let src = "REGION 0 0 10 10\nNODES\nm 1 1 macro hier=\nNETS\nn 1 2 : m 0 0\nEND\n";
        assert!(read("x", src.as_bytes()).is_err());
    }

    #[test]
    fn content_after_end_is_rejected() {
        let src = "REGION 0 0 10 10\nEND\nstray\n";
        assert!(read("x", src.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "# hello\n\nREGION 0 0 10 10\n# more\nEND\n";
        let (d, pl) = read("x", src.as_bytes()).unwrap();
        assert_eq!(d.macros().len(), 0);
        assert!(pl.is_none());
    }
}
