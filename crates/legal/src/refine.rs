//! IncreMacro-style boundary refinement (cf. Pu et al., ISPD'24, cited as
//! \[31\] by the paper).
//!
//! Production flows prefer macros hugging the chip boundary: the center
//! stays free for standard cells and routing. IncreMacro shifts
//! center-placed macros toward the periphery with gradient steps; this
//! module implements the discrete analogue — for every movable macro in
//! the central window, try projecting it onto each of the four boundaries,
//! keep the best wirelength-improving move, and re-legalize with the
//! global sequence-pair pass. Purely optional: the core flow does not run
//! it; examples and ablations do.

use crate::flow::MacroLegalizer;
use mmp_geom::{Point, Rect};
use mmp_netlist::{Design, IncrementalHpwl, Placement};

/// Configuration of the boundary refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryRefiner {
    /// Macros whose center lies within this central fraction of the region
    /// (per axis) are candidates; 0.5 means the middle 50% band.
    pub central_fraction: f64,
    /// Greedy improvement rounds.
    pub rounds: usize,
    /// Accept a move only when it improves HPWL by at least this relative
    /// margin (guards against churn from re-legalization noise).
    pub min_gain: f64,
}

impl Default for BoundaryRefiner {
    fn default() -> Self {
        BoundaryRefiner {
            central_fraction: 0.5,
            rounds: 2,
            min_gain: 1e-4,
        }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// The refined (legal) placement.
    pub placement: Placement,
    /// HPWL before refinement.
    pub hpwl_before: f64,
    /// HPWL after refinement (≤ before, or equal when nothing helped).
    pub hpwl_after: f64,
    /// Macros actually moved.
    pub moves: usize,
}

impl BoundaryRefiner {
    /// Creates a refiner with default settings.
    pub fn new() -> Self {
        BoundaryRefiner::default()
    }

    fn central_window(&self, region: &Rect) -> Rect {
        let fw = region.width * self.central_fraction;
        let fh = region.height * self.central_fraction;
        Rect::centered_at(region.center(), fw, fh)
    }

    /// Runs the refinement on a legal placement.
    ///
    /// Cells are held fixed; only macro-to-boundary moves are tried, each
    /// followed by the global legalization pass. The refined placement is
    /// kept only when strictly better, so the result never regresses.
    pub fn refine(&self, design: &Design, placement: &Placement) -> RefineOutcome {
        let region = *design.region();
        let window = self.central_window(&region);
        let legalizer = MacroLegalizer::new();
        let movable = design.movable_macros();

        // Trial moves are scored by the delta evaluator: only the nets of
        // macros the re-legalization actually displaced are re-scored, and
        // its totals reproduce `Placement::hpwl` bit for bit.
        let mut inc = IncrementalHpwl::new(design, placement.clone());
        let hpwl_before = inc.total();
        let mut best_hpwl = hpwl_before;
        let mut moves = 0usize;

        for _ in 0..self.rounds.max(1) {
            let mut improved_this_round = false;
            for &id in &movable {
                let c = inc.placement().macro_center(id);
                if !window.contains_point(c) {
                    continue;
                }
                let m = design.macro_(id);
                // Candidate boundary projections (centers clamped so the
                // outline stays inside).
                let candidates = [
                    Point::new(region.x + m.width / 2.0, c.y),
                    Point::new(region.right() - m.width / 2.0, c.y),
                    Point::new(c.x, region.y + m.height / 2.0),
                    Point::new(c.x, region.top() - m.height / 2.0),
                ];
                for cand in candidates {
                    // Build the target set: everyone keeps their position
                    // except `id`, which goes to the candidate.
                    let targets: Vec<Point> = movable
                        .iter()
                        .map(|&other| {
                            if other == id {
                                cand
                            } else {
                                inc.placement().macro_center(other)
                            }
                        })
                        .collect();
                    let (legal, _, overlap) = legalizer.legalize_targets(design, &targets);
                    if overlap > 1e-6 {
                        continue;
                    }
                    // Apply only macros the legalizer actually displaced;
                    // cells keep the incumbent's coordinates.
                    for &other in &movable {
                        let to = legal.macro_center(other);
                        if inc.placement().macro_center(other) != to {
                            inc.move_macro(other, to);
                        }
                    }
                    let h = inc.total();
                    if h < best_hpwl * (1.0 - self.min_gain) {
                        inc.commit();
                        best_hpwl = h;
                        moves += 1;
                        improved_this_round = true;
                        break; // re-evaluate remaining macros on the new base
                    }
                    inc.revert();
                }
            }
            if !improved_this_round {
                break;
            }
        }

        RefineOutcome {
            placement: inc.into_placement(),
            hpwl_before,
            hpwl_after: best_hpwl,
            moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::Grid;
    use mmp_netlist::{DesignBuilder, NodeRef, SyntheticSpec};

    #[test]
    fn refinement_never_regresses() {
        let d = SyntheticSpec::small("rf", 8, 1, 10, 80, 140, true, 6).generate();
        // Start from a legal placement produced by the legalizer on a
        // center-heavy assignment.
        let grid = Grid::new(*d.region(), 8);
        let coarse =
            mmp_cluster::Coarsener::new(&mmp_cluster::ClusterParams::paper(grid.cell_area()))
                .coarsen(&d, &Placement::initial(&d));
        let assignment: Vec<_> = (0..coarse.macro_groups().len())
            .map(|g| grid.unflatten(27 + (g % 2)))
            .collect();
        let legal = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        let out = BoundaryRefiner::new().refine(&d, &legal.placement);
        assert!(out.hpwl_after <= out.hpwl_before + 1e-9);
        assert!(out.placement.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn boundary_pull_moves_a_center_macro_when_profitable() {
        // A macro netted only to a left-boundary pad but parked at the
        // center: refinement must move it to the left edge.
        let mut b = DesignBuilder::new("pull", mmp_geom::Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_macro("m", 10.0, 10.0, "");
        let p = b.add_pad("p", Point::new(0.0, 50.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::ORIGIN),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m, Point::new(50.0, 50.0));
        let out = BoundaryRefiner::new().refine(&d, &pl);
        assert!(out.moves >= 1, "expected a boundary move");
        assert!(
            out.placement.macro_center(m).x < 10.0,
            "macro should hug the left edge, got {}",
            out.placement.macro_center(m)
        );
        assert!(out.hpwl_after < out.hpwl_before);
    }

    #[test]
    fn macros_already_at_boundary_are_left_alone() {
        let mut b = DesignBuilder::new("edge", mmp_geom::Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_macro("m", 10.0, 10.0, "");
        let p = b.add_pad("p", Point::new(0.0, 50.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::ORIGIN),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m, Point::new(5.0, 50.0)); // at the edge already
        let out = BoundaryRefiner::new().refine(&d, &pl);
        assert_eq!(out.moves, 0);
        assert_eq!(out.placement, pl);
    }

    #[test]
    fn default_window_is_centered() {
        let r = BoundaryRefiner::new();
        let w = r.central_window(&mmp_geom::Rect::new(0.0, 0.0, 100.0, 100.0));
        assert_eq!(w, mmp_geom::Rect::new(25.0, 25.0, 50.0, 50.0));
    }
}
