//! Blocked single-precision matrix multiplication — the compute kernel
//! behind conv (im2col) and linear layers.

/// `c += a · b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all
/// row-major.
///
/// Blocked over k with an inner loop the compiler auto-vectorises; fast
/// enough for the laptop-scale networks this workspace trains (the paper's
/// full 128-channel tower also runs, just slower).
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "output size mismatch");
    const KB: usize = 64;
    for k0 in (0..k).step_by(KB) {
        let k1 = (k0 + KB).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for kk in k0..k1 {
                // No zero-skip here: the branch costs more than it saves on
                // dense activations (post-BN values are rarely exactly 0)
                // and it stalls the straight-line FMA stream.
                let aik = a_row[kk];
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

/// `c += aᵀ · b` where `a` is `k×m` (transposed use), `b` is `k×n`,
/// `c` is `m×n`.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "output size mismatch");
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for i in 0..m {
            let aik = a_row[i];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// `c += a · bᵀ` where `a` is `m×k`, `b` is `n×k`, `c` is `m×n`.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), n * k, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "output size mismatch");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulates_into_c() {
        let a = [1.0];
        let b = [2.0];
        let mut c = vec![10.0];
        matmul(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn dimension_check() {
        let mut c = vec![0.0; 4];
        matmul(&[0.0; 3], &[0.0; 4], &mut c, 2, 2, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn blocked_matches_naive(
            m in 1usize..6, k in 1usize..70, n in 1usize..6,
            seed in 0u64..1000,
        ) {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            };
            let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
            let want = naive(&a, &b, m, k, n);
            let mut c = vec![0.0; m * n];
            matmul(&a, &b, &mut c, m, k, n);
            for (x, y) in c.iter().zip(&want) {
                prop_assert!((x - y).abs() < 1e-3);
            }
            // a^T * b with a stored transposed.
            let mut at = vec![0.0; k * m];
            for i in 0..m { for kk in 0..k { at[kk * m + i] = a[i * k + kk]; } }
            let mut c2 = vec![0.0; m * n];
            matmul_at_b(&at, &b, &mut c2, m, k, n);
            for (x, y) in c2.iter().zip(&want) {
                prop_assert!((x - y).abs() < 1e-3);
            }
            // a * b^T with b stored transposed.
            let mut bt = vec![0.0; n * k];
            for kk in 0..k { for j in 0..n { bt[j * k + kk] = b[kk * n + j]; } }
            let mut c3 = vec![0.0; m * n];
            matmul_a_bt(&a, &bt, &mut c3, m, k, n);
            for (x, y) in c3.iter().zip(&want) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
