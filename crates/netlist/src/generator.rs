//! Deterministic synthetic benchmark generation.
//!
//! The paper evaluates on the ICCAD04 mixed-size suite (`ibm01`–`ibm18`,
//! Table III) and on proprietary industrial designs (`Cir1`–`Cir8`,
//! Table II). Neither dataset is redistributable here, so this module
//! synthesises designs that reproduce the *published statistics* of each
//! circuit — macro/cell/net/pad counts, hierarchy presence and preplaced
//! macros — with realistic structure:
//!
//! * macro areas drawn from a heavy-tailed distribution,
//! * standard cells of near-unit size,
//! * hierarchical modules with strong intra-module net locality (a Rent-like
//!   connectivity shape),
//! * every macro guaranteed a minimum number of incident nets,
//! * pads distributed around the region boundary,
//! * preplaced macros packed along the boundary (as real designs fix RAMs at
//!   the periphery).
//!
//! Everything is seeded: the same [`SyntheticSpec`] always yields the same
//! [`Design`].

use crate::builder::DesignBuilder;
use crate::design::Design;
use crate::ids::NodeRef;
use mmp_geom::{Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Target area utilization of generated designs (fraction of the region
/// covered by macros + cells). Mixed-size academic benchmarks sit around
/// this value.
const TARGET_UTILIZATION: f64 = 0.45;

/// Minimum number of nets each movable macro participates in.
const MIN_MACRO_NETS: usize = 4;

/// A recipe for one synthetic benchmark circuit.
///
/// # Example
///
/// ```
/// use mmp_netlist::SyntheticSpec;
///
/// let spec = SyntheticSpec::small("demo", 8, 0, 16, 100, 150, false, 42);
/// let design = spec.generate();
/// assert_eq!(design.movable_macros().len(), 8);
/// assert_eq!(design.nets().len(), 150);
/// // Deterministic: the same spec generates the same design.
/// assert_eq!(design, spec.generate());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Circuit name (e.g. `"ibm01"`).
    pub name: String,
    /// Number of movable macros.
    pub movable_macros: usize,
    /// Number of preplaced (fixed) macros.
    pub preplaced_macros: usize,
    /// Number of boundary I/O pads.
    pub io_pads: usize,
    /// Number of standard cells.
    pub std_cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Whether nodes carry design-hierarchy names (industrial suite: yes;
    /// ICCAD04 suite: no — the paper notes ICCAD04 lacks hierarchy).
    pub with_hierarchy: bool,
    /// RNG seed; generation is fully deterministic in the spec.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Convenience constructor with all fields positional.
    #[allow(clippy::too_many_arguments)]
    pub fn small(
        name: impl Into<String>,
        movable_macros: usize,
        preplaced_macros: usize,
        io_pads: usize,
        std_cells: usize,
        nets: usize,
        with_hierarchy: bool,
        seed: u64,
    ) -> Self {
        SyntheticSpec {
            name: name.into(),
            movable_macros,
            preplaced_macros,
            io_pads,
            std_cells,
            nets,
            with_hierarchy,
            seed,
        }
    }

    /// A proportionally shrunk copy of the spec: cells, nets and pads scale
    /// by `factor`; macro counts scale by `sqrt(factor)` (macros dominate
    /// the placer's decision space, so they shrink more gently). Minimums
    /// keep the circuit meaningful (≥4 movable macros, ≥16 cells, ≥24 nets).
    ///
    /// Benches use this to run the paper's experiment *shapes* at laptop
    /// scale; `factor = 1.0` reproduces the published sizes.
    pub fn scaled(&self, factor: f64) -> SyntheticSpec {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let sq = factor.sqrt();
        SyntheticSpec {
            name: self.name.clone(),
            movable_macros: scale_count(self.movable_macros, sq, 4),
            preplaced_macros: scale_count(self.preplaced_macros, sq, 0),
            io_pads: scale_count(self.io_pads, factor, 4),
            std_cells: scale_count(self.std_cells, factor, 16),
            nets: scale_count(self.nets, factor, 24),
            with_hierarchy: self.with_hierarchy,
            seed: self.seed,
        }
    }

    /// Generates the design.
    ///
    /// # Panics
    ///
    /// Never panics for specs with at least one node; a spec with zero
    /// macros *and* zero cells and nonzero nets cannot be satisfied and
    /// will panic while sampling pins.
    pub fn generate(&self) -> Design {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x6d6d_7067_656e);

        // --- sizes -----------------------------------------------------
        let total_macros = self.movable_macros + self.preplaced_macros;
        let mut macro_dims = Vec::with_capacity(total_macros);
        let mut macro_area_total = 0.0;
        for _ in 0..total_macros {
            // Heavy-tailed macro areas: a few large RAMs, many small blocks.
            let scale = 10.0 * (-(rng.gen::<f64>()).ln()).exp().min(8.0);
            let area = 40.0 + 60.0 * scale * rng.gen::<f64>();
            let aspect = 0.5 + rng.gen::<f64>(); // 0.5 .. 1.5
            let w = (area * aspect).sqrt();
            let h = area / w;
            macro_area_total += w * h;
            macro_dims.push((w, h));
        }
        let cell_dims: Vec<(f64, f64)> = (0..self.std_cells)
            .map(|_| (1.0 + rng.gen::<f64>() * 3.0, 1.0))
            .collect();
        let cell_area_total: f64 = cell_dims.iter().map(|(w, h)| w * h).sum();
        let side = ((macro_area_total + cell_area_total) / TARGET_UTILIZATION)
            .sqrt()
            .max(16.0);
        let region = Rect::new(0.0, 0.0, side, side);

        let mut b = DesignBuilder::new(self.name.clone(), region);

        // --- hierarchy modules -----------------------------------------
        let module_count = (total_macros.max(self.std_cells / 64) / 6).clamp(2, 64);
        let module_names: Vec<String> = (0..module_count)
            .map(|i| {
                if self.with_hierarchy {
                    format!("top/unit{}/blk{}", i / 4, i % 4)
                } else {
                    String::new()
                }
            })
            .collect();
        let module_of = |rng: &mut SmallRng| rng.gen_range(0..module_count);

        // --- nodes ------------------------------------------------------
        let mut macro_module = Vec::with_capacity(total_macros);
        let mut movable_ids = Vec::with_capacity(self.movable_macros);
        for (i, &(w, h)) in macro_dims.iter().take(self.movable_macros).enumerate() {
            let m = module_of(&mut rng);
            macro_module.push(m);
            movable_ids.push(b.add_macro(
                format!("m{i}"),
                w.min(side * 0.45),
                h.min(side * 0.45),
                module_names[m].clone(),
            ));
        }
        // Preplaced macros: packed along the bottom and top boundaries in
        // bands. When a band fills, the next one opens on the opposite side,
        // offset inward by the heights already stacked there — so a third or
        // fourth band never wraps back onto an earlier one.
        // Small halo between neighbours, as real fixed RAMs keep spacing; it
        // also keeps exactly-abutting edges (and their float-reconstruction
        // jitter) out of the overlap checks downstream.
        let gap = side * 1e-3;
        let mut px = 0.0;
        let mut on_top = false;
        let mut bottom_stack = 0.0;
        let mut top_stack = 0.0;
        let mut band_height: f64 = 0.0;
        let mut preplaced_ids = Vec::with_capacity(self.preplaced_macros);
        for (i, &(w, h)) in macro_dims
            .iter()
            .skip(self.movable_macros)
            .take(self.preplaced_macros)
            .enumerate()
        {
            let w = w.min(side * 0.3);
            let h = h.min(side * 0.3);
            if px + w > side {
                if on_top {
                    top_stack += band_height + gap;
                } else {
                    bottom_stack += band_height + gap;
                }
                band_height = 0.0;
                px = 0.0;
                on_top = !on_top;
            }
            band_height = band_height.max(h);
            let cy = if on_top {
                side - top_stack - h / 2.0
            } else {
                bottom_stack + h / 2.0
            };
            let m = module_of(&mut rng);
            macro_module.push(m);
            preplaced_ids.push(b.add_preplaced_macro(
                format!("pm{i}"),
                w,
                h,
                module_names[m].clone(),
                Point::new(px + w / 2.0, cy),
            ));
            px += w + gap;
        }
        let mut cell_module = Vec::with_capacity(self.std_cells);
        let mut cell_ids = Vec::with_capacity(self.std_cells);
        for (i, &(w, h)) in cell_dims.iter().enumerate() {
            let m = module_of(&mut rng);
            cell_module.push(m);
            cell_ids.push(b.add_cell(format!("c{i}"), w, h, module_names[m].clone()));
        }
        // Pads around the perimeter.
        let mut pad_ids = Vec::with_capacity(self.io_pads);
        for i in 0..self.io_pads {
            let t = i as f64 / self.io_pads.max(1) as f64 * 4.0;
            // mmp-lint: allow(cast-truncation) why: t is in [0, 4); truncation toward zero selects the perimeter side
            let pos = match t as usize {
                0 => Point::new(side * (t - 0.0), 0.0),
                1 => Point::new(side, side * (t - 1.0)),
                2 => Point::new(side * (3.0 - t), side),
                _ => Point::new(0.0, side * (4.0 - t)),
            };
            pad_ids.push(b.add_pad(format!("io{i}"), pos));
        }

        // Index nodes by module for locality sampling.
        let mut module_macros: Vec<Vec<usize>> = vec![Vec::new(); module_count];
        for (i, &m) in macro_module.iter().enumerate() {
            module_macros[m].push(i);
        }
        let mut module_cells: Vec<Vec<usize>> = vec![Vec::new(); module_count];
        for (i, &m) in cell_module.iter().enumerate() {
            module_cells[m].push(i);
        }

        let all_macros: Vec<NodeRef> = movable_ids
            .iter()
            .copied()
            .map(NodeRef::Macro)
            .chain(preplaced_ids.iter().copied().map(NodeRef::Macro))
            .collect();

        let pin_offset = |rng: &mut SmallRng, node: NodeRef, dims: &[(f64, f64)]| -> Point {
            match node {
                NodeRef::Macro(id) => {
                    let (w, h) = dims[id.index()];
                    Point::new(
                        (rng.gen::<f64>() - 0.5) * 0.8 * w.min(side * 0.45),
                        (rng.gen::<f64>() - 0.5) * 0.8 * h.min(side * 0.45),
                    )
                }
                _ => Point::ORIGIN,
            }
        };

        // --- nets --------------------------------------------------------
        let mut macro_net_count = vec![0usize; total_macros];
        let mut net_no = 0usize;
        fn push_net(
            b: &mut DesignBuilder,
            rng: &mut SmallRng,
            pins: Vec<(NodeRef, Point)>,
            macro_net_count: &mut [usize],
            net_no: &mut usize,
        ) {
            for (node, _) in &pins {
                if let NodeRef::Macro(id) = node {
                    macro_net_count[id.index()] += 1;
                }
            }
            let weight = if rng.gen::<f64>() < 0.05 { 2.0 } else { 1.0 };
            // why: invariant, not input: the generator only emits nets over nodes
            // it just created, so `add_net` cannot see an unknown reference.
            #[allow(clippy::expect_used)]
            b.add_net(format!("n{net_no}"), pins, weight)
                .expect("generated net is valid");
            *net_no += 1;
        }

        let sample_degree = |rng: &mut SmallRng| -> usize {
            let u: f64 = rng.gen();
            if u < 0.55 {
                2
            } else if u < 0.75 {
                3
            } else if u < 0.85 {
                4
            } else {
                // geometric tail 5..=12
                let mut d = 5;
                while d < 12 && rng.gen::<f64>() < 0.55 {
                    d += 1;
                }
                d
            }
        };

        // First pass: guarantee macro connectivity.
        let mut guaranteed = 0usize;
        if !cell_ids.is_empty() || all_macros.len() > 1 {
            'outer: for round in 0..MIN_MACRO_NETS {
                for (mi, &mid) in movable_ids.iter().enumerate() {
                    if guaranteed >= self.nets / 2 || guaranteed >= self.nets {
                        break 'outer;
                    }
                    let module = macro_module[mi];
                    let mut pins = vec![(
                        NodeRef::Macro(mid),
                        pin_offset(&mut rng, NodeRef::Macro(mid), &macro_dims),
                    )];
                    // partner: same-module cell if any, else any cell, else another macro
                    let partner: NodeRef = if !module_cells[module].is_empty() && round % 2 == 0 {
                        let k = module_cells[module][rng.gen_range(0..module_cells[module].len())];
                        NodeRef::Cell(cell_ids[k])
                    } else if !cell_ids.is_empty() {
                        NodeRef::Cell(cell_ids[rng.gen_range(0..cell_ids.len())])
                    } else if all_macros.len() > 1 {
                        let mut other = all_macros[rng.gen_range(0..all_macros.len())];
                        while other == NodeRef::Macro(mid) {
                            other = all_macros[rng.gen_range(0..all_macros.len())];
                        }
                        other
                    } else {
                        continue;
                    };
                    pins.push((partner, pin_offset(&mut rng, partner, &macro_dims)));
                    // sometimes widen with one extra cell
                    if rng.gen::<f64>() < 0.3 && !cell_ids.is_empty() {
                        let extra = NodeRef::Cell(cell_ids[rng.gen_range(0..cell_ids.len())]);
                        pins.push((extra, Point::ORIGIN));
                    }
                    push_net(&mut b, &mut rng, pins, &mut macro_net_count, &mut net_no);
                    guaranteed += 1;
                }
            }
        }

        // Second pass: the remaining nets with module locality.
        let macro_pick_prob = if cell_ids.is_empty() {
            1.0
        } else {
            (total_macros as f64 * 6.0 / self.nets.max(1) as f64).min(0.25)
        };
        while net_no < self.nets {
            let degree = sample_degree(&mut rng);
            let home = module_of(&mut rng);
            let mut pins: Vec<(NodeRef, Point)> = Vec::with_capacity(degree);
            for _ in 0..degree {
                let u: f64 = rng.gen();
                let node: NodeRef = if u < macro_pick_prob && !all_macros.is_empty() {
                    // prefer a macro from the home module
                    if !module_macros[home].is_empty() && rng.gen::<f64>() < 0.7 {
                        let k = module_macros[home][rng.gen_range(0..module_macros[home].len())];
                        if k < self.movable_macros {
                            NodeRef::Macro(movable_ids[k])
                        } else {
                            NodeRef::Macro(preplaced_ids[k - self.movable_macros])
                        }
                    } else {
                        all_macros[rng.gen_range(0..all_macros.len())]
                    }
                } else if u > 0.98 && !pad_ids.is_empty() {
                    NodeRef::Pad(pad_ids[rng.gen_range(0..pad_ids.len())])
                } else if !cell_ids.is_empty() {
                    if !module_cells[home].is_empty() && rng.gen::<f64>() < 0.8 {
                        let k = module_cells[home][rng.gen_range(0..module_cells[home].len())];
                        NodeRef::Cell(cell_ids[k])
                    } else {
                        NodeRef::Cell(cell_ids[rng.gen_range(0..cell_ids.len())])
                    }
                } else if !all_macros.is_empty() {
                    all_macros[rng.gen_range(0..all_macros.len())]
                } else {
                    NodeRef::Pad(pad_ids[rng.gen_range(0..pad_ids.len())])
                };
                pins.push((node, pin_offset(&mut rng, node, &macro_dims)));
            }
            // Ensure at least two distinct nodes so the net is meaningful.
            if pins.len() >= 2 && pins.iter().all(|(n, _)| *n == pins[0].0) {
                let alt = if !cell_ids.is_empty() {
                    NodeRef::Cell(cell_ids[rng.gen_range(0..cell_ids.len())])
                } else if !pad_ids.is_empty() {
                    NodeRef::Pad(pad_ids[rng.gen_range(0..pad_ids.len())])
                } else {
                    pins[0].0
                };
                pins[0].0 = alt;
            }
            push_net(&mut b, &mut rng, pins, &mut macro_net_count, &mut net_no);
        }

        // why: invariant, not input: the spec clamps sizes to the region, so the
        // synthesized design always validates.
        #[allow(clippy::expect_used)]
        b.build().expect("generated design is valid")
    }
}

/// Scales a count by `factor` and clamps it to `floor`. Counts round-trip
/// through `f64`, which is exact for every value below 2^53.
fn scale_count(n: usize, factor: f64, floor: usize) -> usize {
    // mmp-lint: allow(cast-truncation) why: round() makes the operand an integral, non-negative f64 far below 2^53
    ((n as f64 * factor).round() as usize).max(floor)
}

/// Paper row: (name, movable macros, std cells, nets) of Table III.
/// `ibm05` carries zero macros — the paper excludes it from comparison and
/// we keep it to exercise the zero-macro code path.
const ICCAD04_ROWS: &[(&str, usize, usize, usize)] = &[
    ("ibm01", 246, 12_000, 14_000),
    ("ibm02", 280, 19_000, 19_000),
    ("ibm03", 290, 22_000, 27_000),
    ("ibm04", 608, 26_000, 31_000),
    ("ibm05", 0, 28_000, 28_000),
    ("ibm06", 178, 32_000, 34_000),
    ("ibm07", 507, 45_000, 48_000),
    ("ibm08", 309, 51_000, 50_000),
    ("ibm09", 253, 53_000, 60_000),
    ("ibm10", 786, 68_000, 75_000),
    ("ibm11", 373, 70_000, 81_000),
    ("ibm12", 651, 70_000, 77_000),
    ("ibm13", 424, 83_000, 99_000),
    ("ibm14", 614, 146_000, 152_000),
    ("ibm15", 393, 161_000, 186_000),
    ("ibm16", 458, 183_000, 190_000),
    ("ibm17", 760, 184_000, 189_000),
    ("ibm18", 285, 210_000, 201_000),
];

/// Paper row: (name, movable, preplaced, pads, cells, nets) of Table II.
const INDUSTRIAL_ROWS: &[(&str, usize, usize, usize, usize, usize)] = &[
    ("Cir1", 30, 13, 130, 157_000, 181_000),
    ("Cir2", 71, 47, 365, 1_098_000, 1_126_000),
    ("Cir3", 55, 15, 219, 232_000, 235_000),
    ("Cir4", 38, 15, 169, 321_000, 327_000),
    ("Cir5", 32, 12, 351, 347_000, 352_000),
    ("Cir6", 66, 3, 481, 209_000, 217_000),
];

/// Specs for the ICCAD04-like suite (`ibm01`–`ibm18`, Table III statistics).
///
/// No hierarchy, no preplaced macros, as the paper notes for this suite.
/// Scale with [`SyntheticSpec::scaled`] before generating if full size is
/// not needed.
pub fn iccad04_suite() -> Vec<SyntheticSpec> {
    ICCAD04_ROWS
        .iter()
        .enumerate()
        .map(|(i, &(name, macros, cells, nets))| SyntheticSpec {
            name: name.to_owned(),
            movable_macros: macros,
            preplaced_macros: 0,
            io_pads: 160 + 8 * i,
            std_cells: cells,
            nets,
            with_hierarchy: false,
            // mmp-lint: allow(cast-truncation) why: usize to u64 is widening on every supported target
            seed: 0x1B_u64.wrapping_add(i as u64 * 7919),
        })
        .collect()
}

/// Specs for the industrial-like suite (`Cir1`–`Cir6`, Table II statistics):
/// hierarchy names and preplaced macros present.
pub fn industrial_suite() -> Vec<SyntheticSpec> {
    INDUSTRIAL_ROWS
        .iter()
        .enumerate()
        .map(
            |(i, &(name, movable, preplaced, pads, cells, nets))| SyntheticSpec {
                name: name.to_owned(),
                movable_macros: movable,
                preplaced_macros: preplaced,
                io_pads: pads,
                std_cells: cells,
                nets,
                with_hierarchy: true,
                // mmp-lint: allow(cast-truncation) why: usize to u64 is widening on every supported target
                seed: 0xC1C_u64.wrapping_add(i as u64 * 104_729),
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DesignStats;

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::small("det", 10, 3, 12, 200, 300, true, 99);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSpec::small("s", 10, 0, 12, 200, 300, false, 1).generate();
        let b = SyntheticSpec::small("s", 10, 0, 12, 200, 300, false, 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn counts_match_spec_exactly() {
        let spec = SyntheticSpec::small("c", 7, 2, 9, 123, 245, true, 5);
        let d = spec.generate();
        let s = DesignStats::of(&d);
        assert_eq!(s.movable_macros, 7);
        assert_eq!(s.preplaced_macros, 2);
        assert_eq!(s.io_pads, 9);
        assert_eq!(s.std_cells, 123);
        assert_eq!(s.nets, 245);
    }

    #[test]
    fn utilization_is_reasonable() {
        let d = SyntheticSpec::small("u", 12, 2, 16, 400, 600, false, 11).generate();
        let u = d.utilization();
        assert!(u > 0.2 && u < 0.7, "utilization {u} out of expected band");
    }

    #[test]
    fn every_movable_macro_is_connected() {
        let d = SyntheticSpec::small("conn", 15, 3, 8, 300, 500, true, 3).generate();
        for id in d.movable_macros() {
            assert!(
                d.nets_of_macro(id).len() >= MIN_MACRO_NETS.min(2),
                "macro {id} underconnected"
            );
        }
    }

    #[test]
    fn preplaced_macros_do_not_overlap_each_other() {
        let d = SyntheticSpec::small("pp", 4, 8, 8, 100, 160, true, 21).generate();
        let pre = d.preplaced_macros();
        let pl = crate::Placement::initial(&d);
        for (a_i, &a) in pre.iter().enumerate() {
            for &b in &pre[a_i + 1..] {
                let ra = pl.macro_rect(&d, a);
                let rb = pl.macro_rect(&d, b);
                assert!(
                    !ra.overlaps(&rb),
                    "preplaced {a} overlaps {b}: {ra} vs {rb}"
                );
            }
        }
    }

    #[test]
    fn preplaced_macros_stay_inside_region() {
        let d = SyntheticSpec::small("ppin", 4, 10, 8, 100, 160, true, 22).generate();
        let pl = crate::Placement::initial(&d);
        for id in d.preplaced_macros() {
            assert!(d.region().contains_rect(&pl.macro_rect(&d, id)));
        }
    }

    #[test]
    fn nets_have_at_least_two_distinct_nodes_mostly() {
        let d = SyntheticSpec::small("deg", 8, 0, 8, 200, 400, false, 17).generate();
        let degenerate = d
            .nets()
            .iter()
            .filter(|n| {
                let first = n.pins[0].node;
                n.pins.iter().all(|p| p.node == first)
            })
            .count();
        assert_eq!(degenerate, 0, "{degenerate} single-node nets");
    }

    #[test]
    fn suites_have_expected_sizes() {
        let iccad = iccad04_suite();
        assert_eq!(iccad.len(), 18);
        assert_eq!(iccad[0].name, "ibm01");
        assert_eq!(iccad[0].movable_macros, 246);
        assert_eq!(iccad[4].movable_macros, 0); // ibm05
        assert!(iccad.iter().all(|s| !s.with_hierarchy));
        let ind = industrial_suite();
        assert_eq!(ind.len(), 6);
        assert!(ind.iter().all(|s| s.with_hierarchy));
        assert_eq!(ind[1].std_cells, 1_098_000);
    }

    #[test]
    fn scaled_reduces_proportionally_with_floors() {
        let spec = &iccad04_suite()[0];
        let s = spec.scaled(0.01);
        assert!(s.std_cells >= 16);
        assert!(s.movable_macros >= 4);
        assert!(s.nets >= 24);
        assert!(s.std_cells < spec.std_cells);
        // macros shrink by sqrt(factor)
        assert_eq!(
            s.movable_macros,
            ((spec.movable_macros as f64 * 0.1).round() as usize).max(4)
        );
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_bad_factor() {
        let _ = iccad04_suite()[0].scaled(0.0);
    }

    #[test]
    fn zero_macro_design_generates() {
        // The ibm05 path: no macros at all.
        let spec = SyntheticSpec::small("nomacro", 0, 0, 8, 100, 150, false, 4);
        let d = spec.generate();
        assert!(d.movable_macros().is_empty());
        assert_eq!(d.nets().len(), 150);
    }

    #[test]
    fn generated_scaled_ibm_has_sane_structure() {
        let spec = iccad04_suite()[0].scaled(0.01); // tiny ibm01
        let d = spec.generate();
        let s = DesignStats::of(&d);
        assert!(s.avg_net_degree >= 2.0 && s.avg_net_degree < 5.0);
        assert!(d.utilization() < 0.8);
    }

    #[test]
    fn macro_pins_are_inside_outlines() {
        let d = SyntheticSpec::small("pins", 6, 2, 8, 80, 150, true, 8).generate();
        for net in d.nets() {
            for pin in &net.pins {
                if let NodeRef::Macro(id) = pin.node {
                    let m = d.macro_(id);
                    assert!(pin.offset.x.abs() <= m.width / 2.0 + 1e-9);
                    assert!(pin.offset.y.abs() <= m.height / 2.0 + 1e-9);
                }
            }
        }
    }
}
