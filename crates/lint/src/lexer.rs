//! A minimal Rust lexer: line/column-tracked tokens, string/comment aware.
//!
//! This is deliberately *not* a full Rust parser — the lint rules only
//! need to see identifiers and punctuation with source positions, and to
//! know that text inside string literals and comments is not code.
//! Comments are captured separately so suppression directives and
//! `why:` justifications can be matched against findings by line.

/// What a [`Tok`] is. Literal payloads are not retained — the rules only
/// match identifiers and punctuation; literals merely need to be skipped
/// correctly so their contents never masquerade as code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `use`, `partial_cmp`, ...).
    Ident,
    /// One punctuation character (`::` arrives as two `Punct(':')`).
    Punct(char),
    /// String / raw-string / byte-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal (scanned loosely; text preserved so the
    /// float-reduction rule can recognise float literals like `0.0`).
    Num,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier or numeric-literal text; empty for other tokens.
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Tok {
    /// `true` when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment (line or block) with the line it starts on. The text
/// includes the comment markers (`//`, `///`, `/*`), so callers can
/// distinguish doc comments from plain ones.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
}

/// The lexed file: code tokens plus the comment side-table.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// literals or comments are closed at end of input, which is the useful
/// behaviour for a linter (rustc will reject the file anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    out: Lexed,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if c == '"' {
                self.cooked_string();
                self.push(TokKind::Str, String::new(), line, col);
            } else if c == '\'' {
                self.char_or_lifetime(line, col);
            } else if self.raw_or_byte_string_start(c) {
                self.push(TokKind::Str, String::new(), line, col);
            } else if c == 'r'
                && self.peek(1) == Some('#')
                && matches!(self.peek(2), Some(ch) if ch.is_alphabetic() || ch == '_')
            {
                // Raw identifier (`r#match`, `r#type`): one Ident token.
                // `raw_or_byte_string_start` already rejected this position
                // (no quote after the hashes), so without this arm the
                // prefix would mislex as `r`, `#`, `match` — and a stray
                // `#` token is exactly what the attribute scanner keys on.
                // The text keeps the `r#` prefix so a raw identifier never
                // masquerades as the keyword it escapes (`r#use` ≠ `use`).
                let mut text = String::from("r#");
                self.bump();
                self.bump();
                while let Some(ch) = self.peek(0) {
                    if ch.is_alphanumeric() || ch == '_' {
                        text.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Ident, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump(); // b
                self.char_literal();
                self.push(TokKind::Char, String::new(), line, col);
            } else if c.is_ascii_digit() {
                let text = self.number();
                self.push(TokKind::Num, text, line, col);
            } else if c.is_alphabetic() || c == '_' {
                let mut text = String::new();
                while let Some(ch) = self.peek(0) {
                    if ch.is_alphanumeric() || ch == '_' {
                        text.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Ident, text, line, col);
            } else {
                self.bump();
                self.push(TokKind::Punct(c), String::new(), line, col);
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize, col: usize) {
        self.out.tokens.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// Consumes a `"..."` string body, honouring `\` escapes.
    fn cooked_string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
    }

    /// Detects and consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and
    /// friends. Returns `false` (consuming nothing) when the current
    /// position is not a raw/byte string start.
    fn raw_or_byte_string_start(&mut self, c: char) -> bool {
        let mut ahead = 0usize;
        if c == 'b' {
            ahead = 1;
        }
        match self.peek(ahead) {
            Some('r') => ahead += 1,
            Some('"') if c == 'b' => {
                // b"..." — a cooked byte string.
                self.bump(); // b
                self.cooked_string();
                return true;
            }
            _ => return false,
        }
        // Count `#`s after `r` / `br`.
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false; // `r` was just an identifier start (e.g. `rows`)
        }
        for _ in 0..(ahead + hashes + 1) {
            self.bump(); // prefix, hashes, opening quote
        }
        // Scan to `"` followed by `hashes` `#`s.
        while let Some(ch) = self.bump() {
            if ch == '"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        true
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: usize, col: usize) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(ch) if ch.is_alphabetic() || ch == '_') && after != Some('\'');
        if is_lifetime {
            self.bump(); // '
            while let Some(ch) = self.peek(0) {
                if ch.is_alphanumeric() || ch == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, String::new(), line, col);
        } else {
            self.char_literal();
            self.push(TokKind::Char, String::new(), line, col);
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening '
        match self.bump() {
            Some('\\') => {
                self.bump(); // escaped char (enough for \n, \', \u{..} start)
                             // Consume to the closing quote (covers \u{1F600}).
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        return;
                    }
                }
            }
            _ => {
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
        }
    }

    /// Loose numeric scan: digits, `_`, alphanumeric suffixes, and a
    /// fraction part when `.` is followed by a digit. Exponent signs are
    /// left as separate punctuation — rules never look inside numbers.
    fn number(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let fraction = c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit());
            if c.is_alphanumeric() || c == '_' || fraction {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_carry_positions() {
        let l = lex("fn main() {\n    let x = 1;\n}\n");
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn string_contents_are_not_tokens() {
        assert_eq!(idents(r#"let s = "HashMap::new()";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_and_hashes_are_skipped() {
        let src = "let s = r#\"Instant::now() \"quoted\" \"#; let t = 1;";
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn byte_strings_are_skipped() {
        assert_eq!(idents(r#"let b = b"SystemTime"; x"#), vec!["let", "b", "x"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("// HashMap here\nlet y = 2; /* block\nspans */ z");
        assert_eq!(idents("// HashMap here\nlet y = 2;"), vec!["let", "y"]);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.starts_with("//"));
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let l = lex("/* a /* b */ c */ real");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Ident).count(),
            1
        );
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetimes_do_not_eat_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
        assert!(l.tokens.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn floats_do_not_split_method_calls() {
        // `1.max(2)` must keep `max` as an identifier.
        assert_eq!(idents("let v = 1.max(2) + 1.5e3;"), vec!["let", "v", "max"]);
    }

    #[test]
    fn raw_identifiers_lex_as_one_token() {
        // `r#match` must not split into `r`, `#`, `match`.
        let l = lex("let r#match = 1; let r#type = 2;");
        assert!(l.tokens.iter().any(|t| t.is_ident("r#match")));
        assert!(l.tokens.iter().any(|t| t.is_ident("r#type")));
        assert!(!l.tokens.iter().any(|t| t.is_punct('#')));
        // A raw identifier never impersonates the keyword it escapes.
        assert!(!l.tokens.iter().any(|t| t.is_ident("match")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn raw_identifiers_coexist_with_raw_strings() {
        // The `r#` prefix must still dispatch to the raw-string scanner
        // when a quote follows the hashes.
        let src = "let r#fn = r#\"Instant::now() #\"#; let r#use = r\"x\"; y";
        let l = lex(src);
        assert_eq!(
            idents(src),
            vec!["let", "r#fn", "let", "r#use", "y"],
            "raw identifiers next to raw strings mislexed"
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            2
        );
    }

    #[test]
    fn raw_identifier_positions_are_tracked() {
        let l = lex("fn f() {\n    let r#loop = 3;\n}\n");
        let t = l.tokens.iter().find(|t| t.is_ident("r#loop")).unwrap();
        assert_eq!((t.line, t.col), (2, 9));
    }

    #[test]
    fn double_colon_arrives_as_two_puncts() {
        let l = lex("Instant::now()");
        let t = &l.tokens;
        assert!(t[0].is_ident("Instant"));
        assert!(t[1].is_punct(':') && t[2].is_punct(':'));
        assert!(t[3].is_ident("now"));
    }
}
