//! Criterion bench for Table IV: MCTS search throughput as a function of
//! macro count (the table's runtime-vs-size correlation).

use criterion::{criterion_group, criterion_main, Criterion};
use mmp_core::{SyntheticSpec, Trainer, TrainerConfig};
use mmp_mcts::{MctsConfig, MctsPlacer};

fn bench_mcts_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_runtime");
    group.sample_size(10);
    for macros in [6usize, 12, 24] {
        let design = SyntheticSpec::small(
            format!("t4_{macros}"),
            macros,
            0,
            12,
            40 * macros,
            70 * macros,
            false,
            9,
        )
        .generate();
        let mut cfg = TrainerConfig::tiny(8);
        cfg.episodes = 4;
        cfg.calibration_episodes = 2;
        let trainer = Trainer::new(&design, cfg);
        let out = trainer.train();
        group.bench_function(format!("mcts_place/{macros}_macros"), |b| {
            b.iter(|| {
                let placer = MctsPlacer::new(MctsConfig {
                    explorations: 16,
                    ..MctsConfig::default()
                });
                criterion::black_box(placer.place(&trainer, &out.agent, &out.scale).wirelength)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mcts_scaling);
criterion_main!(benches);
