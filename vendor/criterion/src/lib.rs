//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! plain timing loop instead of criterion's statistical machinery. Each
//! sample times one batch of iterations; mean/min/max are printed to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: u64,
    durations: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one duration per sample. The routine's result is
    /// passed through [`black_box`] so it is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: keep very fast routines above timer noise by
        // batching iterations, without multiplying slow benches.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        self.iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        } else {
            1
        };
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.durations.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn report(name: &str, bencher: &Bencher) {
    if bencher.durations.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let per_iter: Vec<Duration> = bencher
        .durations
        .iter()
        .map(|d| *d / bencher.iters_per_sample as u32)
        .collect();
    let total: Duration = per_iter.iter().sum();
    let mean = total / per_iter.len() as u32;
    let min = *per_iter.iter().min().unwrap();
    let max = *per_iter.iter().max().unwrap();
    println!(
        "{name}: mean {} (min {}, max {}) over {} samples x {} iters",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        per_iter.len(),
        bencher.iters_per_sample,
    );
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for compatibility; the stub has no target measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.into()), &bencher);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    /// Sets the default number of samples for benches run directly on
    /// `Criterion`.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut bencher = Bencher {
            samples: if self.sample_size == 0 {
                20
            } else {
                self.sample_size
            },
            durations: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        report(&id.into(), &bencher);
    }

    /// No-op in the stub (upstream writes reports here).
    pub fn final_summary(&mut self) {}
}

/// Declares a function bundling benchmark targets, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            })
        });
        group.finish();
        assert!(runs >= 5);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
