//! The global placement driver: iterated B2B solves + cell shifting.

use crate::b2b::{build_system, Axis};
use crate::cg;
use crate::density::SpreadGrid;
use mmp_geom::Point;
use mmp_netlist::{Design, MacroId, NodeRef, Placement};
use mmp_obs::{field, Obs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning of the [`GlobalPlacer`] loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalPlacerConfig {
    /// Outer solve/spread iterations.
    pub iterations: usize,
    /// CG relative-residual target.
    pub cg_tol: f64,
    /// CG iteration budget per solve.
    pub cg_max_iters: usize,
    /// Spreading bins per axis (0 = auto from node count).
    pub bins: usize,
    /// Cell-shift blend strength in `(0, 1]`.
    pub spread_strength: f64,
    /// Initial anchor pseudo-net weight.
    pub anchor_weight: f64,
    /// Multiplicative anchor growth per iteration.
    pub anchor_growth: f64,
    /// Stop early once the peak bin utilization falls below this.
    pub target_utilization: f64,
}

impl GlobalPlacerConfig {
    /// Fast preset for tests and inner-loop reward evaluation.
    pub fn fast() -> Self {
        GlobalPlacerConfig {
            iterations: 6,
            cg_tol: 1e-5,
            cg_max_iters: 60,
            bins: 0,
            spread_strength: 0.9,
            anchor_weight: 0.15,
            anchor_growth: 1.8,
            target_utilization: 1.2,
        }
    }

    /// Quality preset for final placements.
    pub fn quality() -> Self {
        GlobalPlacerConfig {
            iterations: 16,
            cg_tol: 1e-6,
            cg_max_iters: 150,
            bins: 0,
            spread_strength: 0.8,
            anchor_weight: 0.08,
            anchor_growth: 1.6,
            target_utilization: 1.05,
        }
    }
}

impl Default for GlobalPlacerConfig {
    fn default() -> Self {
        GlobalPlacerConfig::quality()
    }
}

/// Outcome of a cells-only placement: the placement plus its measured HPWL —
/// the value the paper's pipeline feeds into the reward function (Sec. II-C:
/// the mixed-size placer "also returns a measured wirelength value").
#[derive(Debug, Clone, PartialEq)]
pub struct CellPlaceOutcome {
    /// The placement with cells placed (macros untouched).
    pub placement: Placement,
    /// Full-netlist HPWL of the outcome.
    pub hpwl: f64,
}

/// Quadratic global placer: B2B net model + preconditioned CG + cell
/// shifting with anchor pseudo-nets. See the crate docs for its role as the
/// DREAMPlace substitute.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlacer {
    config: GlobalPlacerConfig,
    obs: Obs,
    pool: mmp_pool::ThreadPool,
}

impl GlobalPlacer {
    /// Creates a placer with the given configuration (observability off,
    /// inline single-worker pool).
    pub fn new(config: GlobalPlacerConfig) -> Self {
        GlobalPlacer {
            config,
            obs: Obs::off(),
            pool: mmp_pool::ThreadPool::single(),
        }
    }

    /// Attaches an observability handle: spread iterations emit
    /// `analytic.spread` events and the CG/QP effort counters
    /// (`analytic.cg_iters`, `analytic.qp_solves`, `analytic.spread_iters`)
    /// feed its metrics registry.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Selects the deterministic executor for the CG solves and the density
    /// spreading passes. The placement is bitwise identical at any worker
    /// count.
    #[must_use]
    pub fn with_pool(mut self, pool: mmp_pool::ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &GlobalPlacerConfig {
        &self.config
    }

    /// Mixed-size prototyping placement: movable macros **and** cells are
    /// variables. This is the initial placement that feeds clustering
    /// (Sec. II-A cites \[23\]).
    pub fn place_mixed(&self, design: &Design) -> Placement {
        let movables: Vec<NodeRef> = design
            .movable_macros()
            .into_iter()
            .map(NodeRef::Macro)
            .chain(
                (0..design.cells().len())
                    .map(|i| NodeRef::Cell(mmp_netlist::CellId::from_index(i))),
            )
            .collect();
        self.run(design, movables, Placement::initial(design))
    }

    /// Cells-only placement with every macro fixed at its position in
    /// `macro_placement` — the cell placement + HPWL measurement step
    /// (Sec. II-C).
    pub fn place_cells(&self, design: &Design, macro_placement: &Placement) -> CellPlaceOutcome {
        let movables: Vec<NodeRef> = (0..design.cells().len())
            .map(|i| NodeRef::Cell(mmp_netlist::CellId::from_index(i)))
            .collect();
        let placement = self.run(design, movables, macro_placement.clone());
        let hpwl = placement.hpwl(design);
        CellPlaceOutcome { placement, hpwl }
    }

    fn auto_bins(&self, n: usize) -> usize {
        if self.config.bins > 0 {
            self.config.bins
        } else {
            ((n as f64).sqrt() as usize / 2).clamp(8, 64)
        }
    }

    fn run(&self, design: &Design, movables: Vec<NodeRef>, initial: Placement) -> Placement {
        let n = movables.len();
        if n == 0 || design.nets().is_empty() {
            return initial;
        }
        let cfg = &self.config;
        let region = *design.region();
        let nbins = self.auto_bins(n);

        // mmp-lint: allow(hash-order) why: node→column lookup built once and only probed, never iterated
        let mut var_index: HashMap<NodeRef, usize> = HashMap::with_capacity(n);
        for (i, &node) in movables.iter().enumerate() {
            var_index.insert(node, i);
        }
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut areas = Vec::with_capacity(n);
        let mut half_w = Vec::with_capacity(n);
        let mut half_h = Vec::with_capacity(n);
        for &node in &movables {
            let p = match node {
                NodeRef::Macro(id) => initial.macro_center(id),
                NodeRef::Cell(id) => initial.cell_center(id),
                NodeRef::Pad(_) => unreachable!("pads are never movable"),
            };
            let (w, h) = design.node_size(node);
            xs.push(p.x);
            ys.push(p.y);
            areas.push((w * h).max(1e-9));
            half_w.push(w / 2.0);
            half_h.push(h / 2.0);
        }

        // Spreading grid with fixed macros (preplaced, or frozen by the
        // caller) blocked out of bin capacity.
        let mut grid = SpreadGrid::new(region.x, region.y, region.width, region.height, nbins);
        {
            // mmp-lint: allow(hash-order) why: membership probe over the macro loop below, never iterated
            let movable_set: std::collections::HashSet<NodeRef> =
                movables.iter().copied().collect();
            for i in 0..design.macros().len() {
                let id = MacroId::from_index(i);
                if movable_set.contains(&NodeRef::Macro(id)) {
                    continue;
                }
                let r = initial.macro_rect(design, id);
                grid.block(r.x, r.y, r.width, r.height);
            }
        }

        let mut anchor_x: Option<Vec<f64>> = None;
        let mut anchor_y: Option<Vec<f64>> = None;
        let mut anchor_w = cfg.anchor_weight;

        for iter in 0..cfg.iterations {
            // Snapshot for the closures.
            let snap_x = xs.clone();
            let snap_y = ys.clone();
            let initial_ref = &initial;
            let var_ref = &var_index;
            let pos_of = move |node: NodeRef| -> Point {
                if let Some(&v) = var_ref.get(&node) {
                    Point::new(snap_x[v], snap_y[v])
                } else {
                    match node {
                        NodeRef::Macro(id) => initial_ref.macro_center(id),
                        NodeRef::Cell(id) => initial_ref.cell_center(id),
                        NodeRef::Pad(id) => design.pad(id).position,
                    }
                }
            };
            let var_of = |node: NodeRef| var_index.get(&node).copied();

            for (axis, pos, anchor, half, lo, hi) in [
                (
                    Axis::X,
                    &mut xs,
                    &anchor_x,
                    &half_w,
                    region.x,
                    region.right(),
                ),
                (Axis::Y, &mut ys, &anchor_y, &half_h, region.y, region.top()),
            ] {
                let (mut a, mut b) = build_system(design, axis, &var_of, &pos_of, n);
                if let Some(anchors) = anchor {
                    // Anchor strength is relative to each node's own net
                    // connectivity so spreading forces keep pace with
                    // wirelength forces (the FastPlace recipe).
                    let diag = a.diagonal();
                    // mmp-lint: allow(float-reduction) why: sequential sum over the diagonal slice, order fixed by construction
                    let mean_diag = diag.iter().sum::<f64>() / (n as f64).max(1.0);
                    for i in 0..n {
                        let w = anchor_w * diag[i].max(0.1 * mean_diag);
                        a.add(i, i, w);
                        b[i] += w * anchors[i];
                    }
                }
                let out = cg::solve_pooled(
                    &self.pool,
                    &a.to_csr(),
                    &b,
                    pos,
                    cfg.cg_tol,
                    cfg.cg_max_iters,
                );
                if self.obs.enabled() {
                    self.obs.count("analytic.qp_solves", 1);
                    self.obs.count("analytic.cg_iters", out.iterations as u64);
                }
                *pos = out.x;
                for i in 0..n {
                    let l = lo + half[i].min((hi - lo) / 2.0);
                    let h = hi - half[i].min((hi - lo) / 2.0);
                    pos[i] = pos[i].clamp(l, h.max(l));
                }
            }

            // Spreading pass → anchors for the next iteration.
            let full_w: Vec<f64> = half_w.iter().map(|h| h * 2.0).collect();
            let full_h: Vec<f64> = half_h.iter().map(|h| h * 2.0).collect();
            let peak = grid.peak_utilization(&xs, &ys, &full_w, &full_h);
            let (shifted_x, shifted_y) =
                grid.shift_pooled(&self.pool, &xs, &ys, &areas, cfg.spread_strength);
            // One branch when observability is off — never an env-var read
            // or any formatting in this per-iteration path.
            if self.obs.enabled() {
                self.obs.count("analytic.spread_iters", 1);
                if self.obs.tracing() {
                    // Fixed-chunk pool reductions so trace payloads match
                    // across worker counts, like every other sum on this path.
                    let mx = self.pool.sum_f64(&xs) / n as f64;
                    let my = self.pool.sum_f64(&ys) / n as f64;
                    let ax = self.pool.sum_f64(&shifted_x) / n as f64;
                    let ay = self.pool.sum_f64(&shifted_y) / n as f64;
                    self.obs.event(
                        "analytic.spread",
                        "iter",
                        &[
                            field("iter", iter),
                            field("qp_mean_x", mx),
                            field("qp_mean_y", my),
                            field("peak_utilization", peak),
                            field("anchor_mean_x", ax),
                            field("anchor_mean_y", ay),
                            field("anchor_weight", anchor_w),
                        ],
                    );
                }
            }
            anchor_x = Some(shifted_x);
            anchor_y = Some(shifted_y);
            if iter > 0 {
                anchor_w *= cfg.anchor_growth;
            }
            if peak <= cfg.target_utilization {
                break;
            }
        }

        // Final wirelength relaxation: one more B2B solve anchored firmly to
        // the last spread positions. Raw spread coordinates are density-fair
        // but wirelength-blind; the extra solve recovers most of the HPWL
        // the last shift gave away while staying near the spread layout.
        if let (Some(ax), Some(ay)) = (&anchor_x, &anchor_y) {
            xs[..n].copy_from_slice(&ax[..n]);
            ys[..n].copy_from_slice(&ay[..n]);
            let snap_x = xs.clone();
            let snap_y = ys.clone();
            let initial_ref = &initial;
            let var_ref = &var_index;
            let pos_of = move |node: NodeRef| -> Point {
                if let Some(&v) = var_ref.get(&node) {
                    Point::new(snap_x[v], snap_y[v])
                } else {
                    match node {
                        NodeRef::Macro(id) => initial_ref.macro_center(id),
                        NodeRef::Cell(id) => initial_ref.cell_center(id),
                        NodeRef::Pad(id) => design.pad(id).position,
                    }
                }
            };
            let var_of = |node: NodeRef| var_index.get(&node).copied();
            let final_w = anchor_w.max(0.5);
            for (axis, pos, anchors) in [(Axis::X, &mut xs, ax), (Axis::Y, &mut ys, ay)] {
                let (mut a, mut b) = build_system(design, axis, &var_of, &pos_of, n);
                let diag = a.diagonal();
                // mmp-lint: allow(float-reduction) why: sequential sum over the diagonal slice, order fixed by construction
                let mean_diag = diag.iter().sum::<f64>() / (n as f64).max(1.0);
                for i in 0..n {
                    let w = final_w * diag[i].max(0.1 * mean_diag);
                    a.add(i, i, w);
                    b[i] += w * anchors[i];
                }
                let out = cg::solve_pooled(
                    &self.pool,
                    &a.to_csr(),
                    &b,
                    pos,
                    cfg.cg_tol,
                    cfg.cg_max_iters,
                );
                if self.obs.enabled() {
                    self.obs.count("analytic.qp_solves", 1);
                    self.obs.count("analytic.cg_iters", out.iterations as u64);
                }
                *pos = out.x;
            }
        }
        for i in 0..n {
            let l = region.x + half_w[i].min(region.width / 2.0);
            let h = (region.right() - half_w[i].min(region.width / 2.0)).max(l);
            xs[i] = xs[i].clamp(l, h);
            let l = region.y + half_h[i].min(region.height / 2.0);
            let h = (region.top() - half_h[i].min(region.height / 2.0)).max(l);
            ys[i] = ys[i].clamp(l, h);
        }

        let mut out = initial;
        for (i, &node) in movables.iter().enumerate() {
            let p = Point::new(xs[i], ys[i]);
            match node {
                NodeRef::Macro(id) => out.set_macro_center(id, p),
                NodeRef::Cell(id) => out.set_cell_center(id, p),
                NodeRef::Pad(_) => unreachable!("pads are never movable"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::Rect;
    use mmp_netlist::{DesignBuilder, SyntheticSpec};

    #[test]
    fn no_movables_returns_initial() {
        let mut b = DesignBuilder::new("f", Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_preplaced_macro("m", 2.0, 2.0, "", Point::new(5.0, 5.0));
        let d = b.build().unwrap();
        let placer = GlobalPlacer::new(GlobalPlacerConfig::fast());
        let out = placer.place_mixed(&d);
        assert_eq!(out, Placement::initial(&d));
    }

    #[test]
    fn mixed_placement_improves_hpwl_over_random() {
        use rand::{Rng, SeedableRng};
        let d = SyntheticSpec::small("imp", 8, 0, 16, 150, 250, false, 77).generate();
        let placer = GlobalPlacer::new(GlobalPlacerConfig::fast());
        let placed = placer.place_mixed(&d);
        // Random baseline.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut random = Placement::initial(&d);
        let r = d.region();
        for id in d.movable_macros() {
            random.set_macro_center(
                id,
                Point::new(
                    r.x + rng.gen::<f64>() * r.width,
                    r.y + rng.gen::<f64>() * r.height,
                ),
            );
        }
        for i in 0..d.cells().len() {
            random.set_cell_center(
                mmp_netlist::CellId::from_index(i),
                Point::new(
                    r.x + rng.gen::<f64>() * r.width,
                    r.y + rng.gen::<f64>() * r.height,
                ),
            );
        }
        assert!(
            placed.hpwl(&d) < random.hpwl(&d),
            "analytical {} vs random {}",
            placed.hpwl(&d),
            random.hpwl(&d)
        );
    }

    #[test]
    fn placement_spreads_cells() {
        let d = SyntheticSpec::small("spread", 4, 0, 8, 200, 300, false, 3).generate();
        let placer = GlobalPlacer::new(GlobalPlacerConfig::fast());
        let placed = placer.place_mixed(&d);
        // Cells must not all sit at one point: measure the spatial spread.
        let xs: Vec<f64> = (0..d.cells().len())
            .map(|i| placed.cell_center(mmp_netlist::CellId::from_index(i)).x)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(
            var.sqrt() > d.region().width * 0.05,
            "stddev {} too small",
            var.sqrt()
        );
    }

    #[test]
    fn macros_stay_inside_region() {
        let d = SyntheticSpec::small("in", 10, 2, 8, 100, 180, true, 41).generate();
        let placer = GlobalPlacer::new(GlobalPlacerConfig::fast());
        let placed = placer.place_mixed(&d);
        assert!(placed.macros_inside_region(&d));
    }

    #[test]
    fn place_cells_keeps_macros_fixed() {
        let d = SyntheticSpec::small("fix", 6, 0, 8, 80, 140, false, 9).generate();
        let mut macro_pl = Placement::initial(&d);
        for (k, id) in d.movable_macros().into_iter().enumerate() {
            macro_pl.set_macro_center(id, Point::new(20.0 + 7.0 * k as f64, 30.0));
        }
        let placer = GlobalPlacer::new(GlobalPlacerConfig::fast());
        let out = placer.place_cells(&d, &macro_pl);
        for id in d.movable_macros() {
            assert_eq!(out.placement.macro_center(id), macro_pl.macro_center(id));
        }
        assert!((out.hpwl - out.placement.hpwl(&d)).abs() < 1e-9);
    }

    #[test]
    fn place_cells_is_deterministic() {
        let d = SyntheticSpec::small("det", 5, 0, 8, 60, 100, false, 10).generate();
        let macro_pl = Placement::initial(&d);
        let placer = GlobalPlacer::new(GlobalPlacerConfig::fast());
        let a = placer.place_cells(&d, &macro_pl);
        let b = placer.place_cells(&d, &macro_pl);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.hpwl, b.hpwl);
    }

    #[test]
    fn netless_design_is_a_noop() {
        let mut b = DesignBuilder::new("nn", Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_macro("m", 2.0, 2.0, "");
        let d = b.build().unwrap();
        let placer = GlobalPlacer::new(GlobalPlacerConfig::fast());
        let out = placer.place_mixed(&d);
        assert_eq!(out, Placement::initial(&d));
    }

    #[test]
    fn presets_differ() {
        assert!(GlobalPlacerConfig::fast().iterations < GlobalPlacerConfig::quality().iterations);
        assert_eq!(GlobalPlacerConfig::default(), GlobalPlacerConfig::quality());
    }
}
