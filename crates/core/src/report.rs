//! Experiment reporting helpers: the normalized comparison rows of the
//! paper's tables.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Malformed table input to [`try_normalize_rows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The row list was empty — there is nothing to normalize.
    EmptyRows,
    /// The first row carried no contenders, so no reference exists.
    NoContenders,
    /// A row's contender list disagrees with the first row's.
    ContenderMismatch {
        /// Circuit name of the offending row.
        circuit: String,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::EmptyRows => write!(f, "need at least one row"),
            ReportError::NoContenders => write!(f, "need at least one contender"),
            ReportError::ContenderMismatch { circuit } => {
                write!(f, "contender lists differ between rows (row {circuit:?})")
            }
        }
    }
}

impl Error for ReportError {}

/// One row of a comparison table: a circuit and the HPWL each contender
/// achieved on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Circuit name (e.g. `"ibm01"`).
    pub circuit: String,
    /// `(placer name, HPWL)` pairs, one per contender.
    pub results: Vec<(String, f64)>,
}

/// Geometric mean of positive values (0 for an empty slice) — the "Nor."
/// aggregation of Tables II and III.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// The normalized summary of a comparison table: per contender, the
/// geometric mean of its per-circuit HPWL ratio against the **last**
/// contender (the paper normalizes against "Ours", listed last).
///
/// Returns `(name, normalized)` pairs; the reference contender reads 1.0.
///
/// # Panics
///
/// Panics when rows disagree on the contender list or the list is empty;
/// see [`try_normalize_rows`] for the fallible variant.
pub fn normalize_rows(rows: &[TableRow]) -> Vec<(String, f64)> {
    match try_normalize_rows(rows) {
        Ok(norm) => norm,
        // The wrapper preserves the historical assert messages.
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`normalize_rows`]: returns a typed [`ReportError`] instead of
/// panicking on malformed input (empty row list, empty contender list,
/// rows disagreeing on contenders).
///
/// # Errors
///
/// See [`ReportError`].
pub fn try_normalize_rows(rows: &[TableRow]) -> Result<Vec<(String, f64)>, ReportError> {
    let first = rows.first().ok_or(ReportError::EmptyRows)?;
    let names: Vec<String> = first.results.iter().map(|(n, _)| n.clone()).collect();
    if names.is_empty() {
        return Err(ReportError::NoContenders);
    }
    for row in rows {
        let row_names: Vec<&String> = row.results.iter().map(|(n, _)| n).collect();
        if row_names.len() != names.len() || row_names.iter().zip(&names).any(|(a, b)| *a != b) {
            return Err(ReportError::ContenderMismatch {
                circuit: row.circuit.clone(),
            });
        }
    }
    let reference = names.len() - 1;
    Ok(names
        .iter()
        .enumerate()
        .map(|(k, name)| {
            let ratios: Vec<f64> = rows
                .iter()
                .map(|row| row.results[k].1 / row.results[reference].1.max(1e-300))
                .collect();
            (name.clone(), geometric_mean(&ratios))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(circuit: &str, ours: f64, other: f64) -> TableRow {
        TableRow {
            circuit: circuit.into(),
            results: vec![("Other".into(), other), ("Ours".into(), ours)],
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_reads_one_for_reference() {
        let rows = vec![row("c1", 10.0, 11.0), row("c2", 20.0, 26.0)];
        let norm = normalize_rows(&rows);
        assert_eq!(norm[1].0, "Ours");
        assert!((norm[1].1 - 1.0).abs() < 1e-12);
        // Other is 10% and 30% worse: geomean of (1.1, 1.3) ≈ 1.196.
        assert!((norm[0].1 - (1.1f64 * 1.3).sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "differ between rows")]
    fn mismatched_contender_lists_panic() {
        let a = row("c1", 1.0, 1.0);
        let mut b = row("c2", 1.0, 1.0);
        b.results[0].0 = "Different".into();
        let _ = normalize_rows(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_rows_panic() {
        let _ = normalize_rows(&[]);
    }

    #[test]
    fn try_normalize_returns_typed_errors_instead_of_panicking() {
        assert_eq!(try_normalize_rows(&[]), Err(ReportError::EmptyRows));

        let empty = TableRow {
            circuit: "c0".into(),
            results: vec![],
        };
        assert_eq!(try_normalize_rows(&[empty]), Err(ReportError::NoContenders));

        let a = row("c1", 1.0, 1.0);
        let mut b = row("c2", 1.0, 1.0);
        b.results[0].0 = "Different".into();
        assert_eq!(
            try_normalize_rows(&[a.clone(), b]),
            Err(ReportError::ContenderMismatch {
                circuit: "c2".into()
            })
        );

        // A row with a truncated contender list is a mismatch too (the
        // panicking ancestor would have indexed out of bounds instead).
        let mut short = row("c3", 1.0, 1.0);
        short.results.pop();
        assert_eq!(
            try_normalize_rows(&[a.clone(), short]),
            Err(ReportError::ContenderMismatch {
                circuit: "c3".into()
            })
        );

        let ok = try_normalize_rows(&[a]).unwrap();
        assert_eq!(ok.len(), 2);
    }
}
