//! `mmpd` — the placement-as-a-service daemon.
//!
//! ```text
//! mmpd --addr 127.0.0.1:7177 --state-dir ./mmpd-state --workers 2
//! ```
//!
//! Speaks newline-delimited JSON over TCP (see `mmp_serve::protocol`).
//! On startup the state directory's journal is replayed: completed jobs
//! keep their stored reports, interrupted jobs resume from their own
//! checkpoint ladders. A `{"op":"shutdown"}` request drains in-flight
//! work and exits cleanly.
//!
//! | exit code | meaning                                        |
//! |-----------|------------------------------------------------|
//! | 0         | clean shutdown (drained)                       |
//! | 1         | I/O error (bind failure, unusable state dir)   |
//! | 2         | usage error (bad flags)                        |

use mmp_serve::{BackoffConfig, JobDefaults, ServeConfig, Server};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

enum CliError {
    /// Wrong invocation: prints the usage text, exits 2.
    Usage(String),
    /// Bind / state-dir trouble: exits 1.
    Io(String),
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n\
         \x20 mmpd [--addr HOST:PORT] [--state-dir DIR] [--workers N] \\\n\
         \x20      [--queue-capacity N] [--max-attempts N] [--max-budget-ms N] \\\n\
         \x20      [--max-design-nodes N] [--zeta N] [--episodes N] \\\n\
         \x20      [--explorations N] [--default-budget-ms N] \\\n\
         \x20      [--backoff-base-ms N] [--backoff-cap-ms N] [--no-policy-cache] \\\n\
         \x20      [--keep-completed N] [--fault-io SPEC]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, CliError> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            return Err(CliError::Usage(format!("unexpected argument {}", args[i])));
        };
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            flags.insert(name.to_owned(), args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(name.to_owned(), String::from("true"));
            i += 1;
        }
    }
    Ok(flags)
}

/// Prints a status line without panicking when stdout is a pipe whose
/// reader already hung up (supervisors often close it after the banner);
/// a daemon must never die over unread telemetry.
fn say(msg: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let mut out = std::io::stdout();
    let _ = writeln!(out, "{msg}");
    let _ = out.flush();
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args)?;
    for key in flags.keys() {
        const KNOWN: [&str; 16] = [
            "addr",
            "state-dir",
            "workers",
            "queue-capacity",
            "max-attempts",
            "max-budget-ms",
            "max-design-nodes",
            "zeta",
            "episodes",
            "explorations",
            "default-budget-ms",
            "backoff-base-ms",
            "backoff-cap-ms",
            "no-policy-cache",
            "keep-completed",
            "fault-io",
        ];
        if !KNOWN.contains(&key.as_str()) {
            return Err(CliError::Usage(format!("unknown flag --{key}")));
        }
    }
    let get_u64 = |k: &str| -> Result<Option<u64>, CliError> {
        match flags.get(k) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("bad --{k}: {v}"))),
        }
    };
    let get_usize = |k: &str, d: usize| -> Result<usize, CliError> {
        Ok(get_u64(k)?.map_or(d, |v| v as usize))
    };

    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7177".to_owned());
    let config = ServeConfig {
        state_dir: PathBuf::from(
            flags
                .get("state-dir")
                .cloned()
                .unwrap_or_else(|| "mmpd-state".to_owned()),
        ),
        workers: get_usize("workers", 1)?.max(1),
        queue_capacity: get_usize("queue-capacity", 16)?,
        max_attempts: get_usize("max-attempts", 3)?.max(1),
        max_budget_ms: get_u64("max-budget-ms")?,
        max_design_nodes: get_usize("max-design-nodes", 2_000_000)?,
        defaults: JobDefaults {
            zeta: get_usize("zeta", 8)?,
            episodes: get_u64("episodes")?.map(|v| v as usize),
            explorations: get_u64("explorations")?.map(|v| v as usize),
            budget: get_u64("default-budget-ms")?.map(Duration::from_millis),
        },
        backoff: BackoffConfig {
            base: Duration::from_millis(get_u64("backoff-base-ms")?.unwrap_or(50)),
            cap: Duration::from_millis(get_u64("backoff-cap-ms")?.unwrap_or(2000)),
        },
        policy_cache: !flags.contains_key("no-policy-cache"),
        keep_completed: match get_u64("keep-completed")? {
            None => Some(1024),
            Some(0) => None, // 0 = unbounded, the pre-retention behavior
            Some(n) => Some(n as usize),
        },
        fault_io: match flags.get("fault-io") {
            None => None,
            Some(spec) => Some(
                mmp_serve::FailPlan::parse(spec)
                    .map_err(|e| CliError::Usage(format!("bad --fault-io: {e}")))?,
            ),
        },
    };

    let listener =
        TcpListener::bind(&addr).map_err(|e| CliError::Io(format!("bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::Io(format!("local addr: {e}")))?;
    let server = Server::start(config).map_err(|e| CliError::Io(e.to_string()))?;
    // The e2e harness (and humans) read this line to learn the bound
    // port when --addr used port 0.
    say(format_args!("mmpd listening on {local}"));
    server
        .serve(listener)
        .map_err(|e| CliError::Io(format!("serve: {e}")))?;
    server.drain();
    say(format_args!("mmpd drained and stopped"));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("mmpd: {msg}");
            usage()
        }
        Err(CliError::Io(msg)) => {
            eprintln!("mmpd: {msg}");
            ExitCode::FAILURE
        }
    }
}
