//! Cross-crate observability guarantees: instrumentation must never
//! change a placement, traces must be valid JSONL, and the run report
//! must capture the whole flow.

use mmp_core::{MacroPlacer, PlacerConfig, RunBudget, RunReport};
use mmp_netlist::{Design, MacroId, SyntheticSpec};
use mmp_obs::{JsonlSink, MemorySink, Obs};
use std::time::Duration;

fn fast_config() -> PlacerConfig {
    let mut cfg = PlacerConfig::fast(4);
    cfg.trainer.episodes = 4;
    cfg.mcts.explorations = 6;
    cfg
}

fn design() -> Design {
    SyntheticSpec::small("obs", 6, 1, 8, 50, 90, true, 1).generate()
}

/// Bitwise comparison of two runs: HPWL, assignment and every macro
/// coordinate must be exactly equal.
fn assert_identical(
    a: &mmp_core::PlacementResult,
    b: &mmp_core::PlacementResult,
    d: &Design,
    what: &str,
) {
    assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits(), "{what}: hpwl differs");
    assert_eq!(a.assignment, b.assignment, "{what}: assignment differs");
    for i in 0..d.macros().len() {
        let ca = a.placement.macro_center(MacroId::from_index(i));
        let cb = b.placement.macro_center(MacroId::from_index(i));
        assert_eq!(
            (ca.x.to_bits(), ca.y.to_bits()),
            (cb.x.to_bits(), cb.y.to_bits()),
            "{what}: macro {i} moved"
        );
    }
}

#[test]
fn tracing_does_not_change_the_placement() {
    let d = design();
    let cfg = fast_config();
    let off = MacroPlacer::new(cfg.clone()).place(&d).unwrap();

    let sink = MemorySink::shared();
    let obs = Obs::new(Box::new(sink.clone()));
    let on = MacroPlacer::new(cfg)
        .with_obs(obs.clone())
        .place(&d)
        .unwrap();

    assert_identical(&off, &on, &d, "clean run");
    assert!(!sink.is_empty(), "tracing produced no events");
    // The metrics registry saw the run too.
    let snap = obs.snapshot();
    assert!(snap.counter("rl.episodes").unwrap_or(0) >= 4);
    assert!(snap.counter("analytic.cg_iters").unwrap_or(0) > 0);
    assert!(snap.counter("mcts.groups").unwrap_or(0) > 0);
}

#[test]
fn tracing_does_not_change_a_degraded_run() {
    // Fault-matrix scenario: injected sequence-pair failure plus a zero
    // training budget — both degradation paths are exercised and must
    // stay bitwise identical under tracing.
    let d = design();
    let mut cfg = fast_config();
    cfg.fault_sp_failure = true;
    cfg.budget.train = Some(Duration::ZERO);

    let off = MacroPlacer::new(cfg.clone()).place(&d).unwrap();
    let sink = MemorySink::shared();
    let on = MacroPlacer::new(cfg)
        .with_obs(Obs::new(Box::new(sink.clone())))
        .place(&d)
        .unwrap();

    assert_identical(&off, &on, &d, "degraded run");
    assert_eq!(
        off.degradation.degraded_stages(),
        on.degradation.degraded_stages()
    );
    assert!(!sink.is_empty());
}

#[test]
fn zero_total_budget_is_deterministic_under_tracing() {
    let d = design();
    let mut cfg = fast_config();
    cfg.budget = RunBudget::with_total(Duration::ZERO);
    let off = MacroPlacer::new(cfg.clone()).place(&d).unwrap();
    let on = MacroPlacer::new(cfg)
        .with_obs(Obs::new(Box::new(MemorySink::shared())))
        .place(&d)
        .unwrap();
    assert_identical(&off, &on, &d, "zero-budget run");
}

#[test]
fn trace_file_is_valid_jsonl_with_stage_spans() {
    let d = design();
    let path = std::env::temp_dir().join(format!("mmp_obs_trace_{}.jsonl", std::process::id()));
    let obs = Obs::new(Box::new(JsonlSink::create(&path).unwrap()));
    let _ = MacroPlacer::new(fast_config())
        .with_obs(obs.clone())
        .place(&d)
        .unwrap();
    obs.flush();

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(!text.is_empty());
    let str_of = |v: &serde::Value| match v {
        serde::Value::Str(s) => s.clone(),
        other => panic!("expected string, got {other:?}"),
    };
    let mut span_closes = Vec::new();
    for line in text.lines() {
        let v = serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        for key in ["t_us", "scope", "name", "fields"] {
            assert!(serde::map_get(&v, key).is_some(), "missing {key}: {line}");
        }
        let scope = str_of(serde::map_get(&v, "scope").unwrap());
        let name = str_of(serde::map_get(&v, "name").unwrap());
        if scope.starts_with("stage.") && name == "close" {
            span_closes.push(scope);
        }
    }
    for stage in [
        "stage.preprocess",
        "stage.train",
        "stage.search",
        "stage.finalize",
    ] {
        assert!(
            span_closes.iter().any(|s| s == stage),
            "no span close for {stage}; saw {span_closes:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_report_covers_the_whole_flow_and_round_trips() {
    let d = design();
    let obs = Obs::metrics_only();
    let result = MacroPlacer::new(fast_config())
        .with_obs(obs.clone())
        .place(&d)
        .unwrap();

    let report = RunReport::new("obs", &result, &obs.snapshot());
    assert_eq!(report.circuit, "obs");
    assert_eq!(report.hpwl, result.hpwl);
    assert_eq!(report.training.episodes, 4);
    assert!(report.counters.contains_key("analytic.qp_solves"));
    assert!(report.span_ms.contains_key("stage.train"));

    // Stage wall-clocks must fill (and never exceed) the recorded total.
    let t = &report.timings;
    assert!(t.total_ms > 0.0);
    assert!(t.stage_sum_ms() <= t.total_ms * 1.001 + 0.1);
    assert!(t.stage_sum_ms() >= t.total_ms * 0.5);

    let json = report.to_json().unwrap();
    let back = RunReport::from_json(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn disabled_handle_records_nothing() {
    let d = design();
    let obs = Obs::off();
    let _ = MacroPlacer::new(fast_config())
        .with_obs(obs.clone())
        .place(&d)
        .unwrap();
    let snap = obs.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
}
