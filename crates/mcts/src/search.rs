//! The exploration loop: selection → expansion → evaluation →
//! backpropagation (Sec. IV-B, Fig. 3).
//!
//! Explorations run in *speculative waves*: up to [`MctsConfig::wave`]
//! distinct non-terminal leaves are pre-selected per wave and evaluated
//! with one batched network call ([`Agent::policy_value_batch`]).
//! Speculation stays virtual-loss-free — pending paths receive in-flight
//! *virtual visits* that enter only the PUCT exploration term (the
//! visit-count denominator and ΣN), never Q, so no fake losses are mixed
//! into value estimates. The wave then *replays* plain sequential
//! selection, applying a pre-computed evaluation only when the replayed
//! selection lands on that exact leaf and discarding the rest on the first
//! misprediction. Search results are therefore bitwise identical for every
//! wave size — batching trades speculative (possibly wasted) network work
//! for fewer, larger calls.

use crate::tree::SearchTree;
use mmp_ckpt::CkptError;
use mmp_geom::GridIndex;
use mmp_obs::{field, Obs};
use mmp_rl::{Agent, InferenceCtx, PlacementEnv, RewardScale, State, Trainer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// MCTS parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MctsConfig {
    /// PUCT exploration constant c (paper: 1.05).
    pub c_puct: f64,
    /// Explorations γ per macro-group decision.
    pub explorations: usize,
    /// Multiplicative noise amplitude applied to expansion priors
    /// (AlphaZero-style root-diversification). 0 keeps the search fully
    /// deterministic; the [`ensemble`](crate::ensemble) uses small positive
    /// values with distinct seeds per worker.
    pub prior_noise: f32,
    /// Seed for the prior noise (ignored when `prior_noise == 0`).
    pub noise_seed: u64,
    /// Leaf-evaluation wave size: how many pending leaves are batched into
    /// one network call. 0 and 1 both mean sequential search (and absent
    /// fields in serialized configs deserialize to the sequential default).
    #[serde(default)]
    pub wave: usize,
    /// Fault injection (test support): replace every network prior vector
    /// with NaN before expansion so the numerical-health guard can be
    /// exercised deterministically. `false` in production.
    #[serde(default)]
    pub fault_nan_priors: bool,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            c_puct: 1.05,
            explorations: 64,
            prior_noise: 0.0,
            noise_seed: 0,
            wave: 1,
            fault_nan_priors: false,
        }
    }
}

/// Search effort counters — the evidence behind the paper's runtime claim
/// (real placements run only at terminal leaves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Explorations performed.
    pub explorations: usize,
    /// Leaves evaluated by V_θ and expanded (cheap).
    pub value_evaluations: usize,
    /// Batched network calls issued for leaf evaluation (≤
    /// `value_evaluations + wasted_evaluations`; equal to
    /// `value_evaluations` when `wave == 1`).
    #[serde(default)]
    pub batched_calls: usize,
    /// Speculatively evaluated leaves discarded because sequential replay
    /// selected a different leaf (0 when `wave == 1`).
    #[serde(default)]
    pub wasted_evaluations: usize,
    /// Leaves evaluated by the real legalize-and-place pipeline
    /// (expensive).
    pub terminal_evaluations: usize,
    /// Nodes allocated in the tree.
    pub nodes: usize,
    /// `true` when the search deadline expired before every group received
    /// its full exploration budget; the remaining groups were committed
    /// best-so-far or allocated policy-greedily.
    #[serde(default)]
    pub deadline_expired: bool,
    /// Groups allocated by the greedy policy fallback instead of tree
    /// search (only ever non-zero when `deadline_expired`).
    #[serde(default)]
    pub policy_greedy_groups: usize,
    /// Network evaluations whose priors or value came back NaN/Inf and were
    /// replaced by uniform priors / zero value.
    #[serde(default)]
    pub nan_evaluations: usize,
}

/// The complete mid-search state captured after a committed macro group.
///
/// The tree is carried whole: [`SearchTree::advance_root`] reuses the
/// committed child's subtree across groups, so resuming from the actions
/// alone would rebuild different statistics. Restoring the tree, the
/// effort counters and the prior-noise RNG stream makes the continuation
/// bitwise-identical to an uninterrupted search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// Macro groups committed so far.
    pub groups_done: usize,
    /// The flat grid action committed for each finished group, in order.
    pub actions: Vec<usize>,
    /// The search tree, rooted at the next group's decision.
    pub tree: SearchTree,
    /// Effort counters accumulated so far.
    pub stats: SearchStats,
    /// The prior-noise RNG's exact stream position.
    pub rng: [u64; 4],
}

/// Receiver for the partial [`SearchCheckpoint`]s
/// [`MctsPlacer::place_resumable`] emits after each committed group; a
/// sink error aborts the search.
pub type SearchCheckpointSink<'a> = &'a mut dyn FnMut(&SearchCheckpoint) -> Result<(), CkptError>;

/// Result of one MCTS placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct MctsOutcome {
    /// Grid cell per macro group.
    pub assignment: Vec<GridIndex>,
    /// Wirelength of the final allocation (trainer's evaluator).
    pub wirelength: f64,
    /// Reward 𝔇(W) of the final allocation.
    pub reward: f64,
    /// Search effort counters.
    pub stats: SearchStats,
}

/// Total order for committing a root edge: most visits first, ties broken
/// by higher Q then higher prior. NaN Q (impossible for visited edges, but
/// cheap to rule out) sorts below every real Q, so it can never win a tie.
pub(crate) fn commit_key_cmp(a: (u32, f64, f32), b: (u32, f64, f32)) -> std::cmp::Ordering {
    let sane = |q: f64| if q.is_nan() { f64::NEG_INFINITY } else { q };
    a.0.cmp(&b.0)
        .then_with(|| sane(a.1).total_cmp(&sane(b.1)))
        .then_with(|| a.2.total_cmp(&b.2))
}

/// One speculatively selected leaf awaiting batched evaluation.
struct PendingLeaf {
    node: usize,
    state: State,
}

/// The MCTS placement-optimization stage (Algorithm 1, lines 11–16).
#[derive(Debug)]
pub struct MctsPlacer {
    config: MctsConfig,
    noise: RefCell<SmallRng>,
    obs: Obs,
}

impl Default for MctsPlacer {
    fn default() -> Self {
        MctsPlacer::new(MctsConfig::default())
    }
}

impl Clone for MctsPlacer {
    fn clone(&self) -> Self {
        MctsPlacer::new(self.config.clone()).with_obs(self.obs.clone())
    }
}

impl MctsPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(config: MctsConfig) -> Self {
        let noise = RefCell::new(SmallRng::seed_from_u64(config.noise_seed ^ 0x0153));
        MctsPlacer {
            config,
            noise,
            obs: Obs::off(),
        }
    }

    /// Attaches an observability handle.
    ///
    /// With tracing enabled the search emits one `mcts.search`/`commit`
    /// event per committed macro group and a final `done` event; counters
    /// `mcts.groups` and `mcts.explorations` accumulate in the handle's
    /// metrics registry either way. Instrumentation only reads search
    /// state, so results are identical with or without a handle.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MctsConfig {
        &self.config
    }

    /// Runs the full search with an internal scratch context; see
    /// [`MctsPlacer::place_with_ctx`].
    pub fn place(&self, trainer: &Trainer<'_>, agent: &Agent, scale: &RewardScale) -> MctsOutcome {
        let mut ctx = InferenceCtx::new();
        self.place_with_ctx(trainer, agent, scale, &mut ctx)
    }

    /// Runs the full search with an internal scratch context and a
    /// wall-clock deadline; see [`MctsPlacer::place_with_ctx_deadline`].
    pub fn place_with_deadline(
        &self,
        trainer: &Trainer<'_>,
        agent: &Agent,
        scale: &RewardScale,
        deadline: Option<Instant>,
    ) -> MctsOutcome {
        let mut ctx = InferenceCtx::new();
        self.place_with_ctx_deadline(trainer, agent, scale, &mut ctx, deadline)
    }

    /// Runs the full search: γ explorations per macro group, committing the
    /// most-visited child each time, then scores the final allocation.
    ///
    /// The agent is only read (`&Agent`); all network scratch lives in
    /// `ctx`, so concurrent searches can share one agent with per-thread
    /// contexts.
    pub fn place_with_ctx(
        &self,
        trainer: &Trainer<'_>,
        agent: &Agent,
        scale: &RewardScale,
        ctx: &mut InferenceCtx,
    ) -> MctsOutcome {
        self.place_with_ctx_deadline(trainer, agent, scale, ctx, None)
    }

    /// [`MctsPlacer::place_with_ctx`] with graceful degradation under a
    /// wall-clock deadline.
    ///
    /// The deadline is checked between exploration waves. Once it expires,
    /// the group being searched is committed from the best-so-far tree
    /// statistics, and any group whose search never ran is allocated with
    /// the greedy policy π_θ instead ([`SearchStats::policy_greedy_groups`]
    /// counts them, [`SearchStats::deadline_expired`] flags the run). The
    /// run always produces a complete assignment.
    pub fn place_with_ctx_deadline(
        &self,
        trainer: &Trainer<'_>,
        agent: &Agent,
        scale: &RewardScale,
        ctx: &mut InferenceCtx,
        deadline: Option<Instant>,
    ) -> MctsOutcome {
        match self.place_resumable(trainer, agent, scale, ctx, deadline, None, None) {
            Ok(out) => out,
            // No sink and no resume checkpoint means no fallible operation
            // runs; this arm is structurally unreachable.
            Err(e) => panic!("checkpoint-free search cannot fail: {e}"),
        }
    }

    /// [`MctsPlacer::place_with_ctx_deadline`] with crash-safe
    /// checkpointing.
    ///
    /// `sink` is invoked with a fresh [`SearchCheckpoint`] after every
    /// committed macro group; with `resume = Some(ck)` the committed
    /// actions are replayed through a fresh environment, the search tree
    /// and noise stream are restored, and the search continues at group
    /// `ck.groups_done` — bitwise-identical to an uninterrupted run. The
    /// deadline-degraded greedy fallback writes no checkpoints (it is
    /// already the cheapest path to completion).
    ///
    /// # Errors
    ///
    /// [`CkptError::Invalid`] when the resume checkpoint does not fit this
    /// problem (wrong group/action counts, out-of-grid actions); any error
    /// the sink returns is propagated.
    #[allow(clippy::too_many_arguments)]
    pub fn place_resumable(
        &self,
        trainer: &Trainer<'_>,
        agent: &Agent,
        scale: &RewardScale,
        ctx: &mut InferenceCtx,
        deadline: Option<Instant>,
        resume: Option<SearchCheckpoint>,
        mut sink: Option<SearchCheckpointSink<'_>>,
    ) -> Result<MctsOutcome, CkptError> {
        let mut env = PlacementEnv::new(trainer.design(), trainer.coarse(), trainer.grid().clone());
        let steps = env.episode_len();
        let cells = trainer.grid().cell_count();

        let (mut tree, mut stats, mut committed, start_group);
        match resume {
            Some(ck) => {
                if ck.actions.len() != ck.groups_done || ck.groups_done > steps {
                    return Err(CkptError::Invalid {
                        detail: format!(
                            "search checkpoint claims {} groups with {} actions for a \
                             {steps}-group problem",
                            ck.groups_done,
                            ck.actions.len()
                        ),
                    });
                }
                if let Some(&bad) = ck.actions.iter().find(|&&a| a >= cells) {
                    return Err(CkptError::Invalid {
                        detail: format!(
                            "search checkpoint action {bad} is outside the {cells}-cell grid"
                        ),
                    });
                }
                if ck.tree.root() >= ck.tree.len() {
                    return Err(CkptError::Invalid {
                        detail: format!(
                            "search checkpoint tree root {} is outside its {} nodes",
                            ck.tree.root(),
                            ck.tree.len()
                        ),
                    });
                }
                // Replay the committed prefix through a fresh environment;
                // occupancy and assignment land exactly where the
                // interrupted run left them.
                for &a in &ck.actions {
                    env.step(a);
                }
                *self.noise.borrow_mut() = SmallRng::from_state(ck.rng);
                tree = ck.tree;
                stats = ck.stats;
                start_group = ck.groups_done;
                committed = ck.actions;
            }
            None => {
                tree = SearchTree::new();
                stats = SearchStats::default();
                committed = Vec::new();
                start_group = 0;
            }
        }

        'groups: for group in start_group..steps {
            let goal = self.config.explorations.max(1);
            let mut done = 0;
            while done < goal {
                // mmp-lint: allow(wallclock) why: budget-deadline probe; expiry only degrades to the deterministic policy-greedy path
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    stats.deadline_expired = true;
                    break;
                }
                done += self.explore_wave(
                    &mut tree,
                    &env,
                    trainer,
                    agent,
                    scale,
                    &mut stats,
                    ctx,
                    goal - done,
                );
            }
            // Commit the most-visited edge (ties: higher Q, then prior).
            let root = tree.root();
            let best = tree.node(root).edges.as_ref().and_then(|edges| {
                edges
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| commit_key_cmp((a.n, a.q(), a.p), (b.n, b.q(), b.p)))
                    .map(|(i, e)| (i, e.action))
            });
            match best {
                Some((edge_idx, action)) => {
                    // One branch when observability is off: the commit path
                    // runs once per macro group, never per exploration.
                    if self.obs.enabled() {
                        self.obs.count("mcts.groups", 1);
                        self.obs.count("mcts.explorations", done as u64);
                        if self.obs.tracing() {
                            let visits = tree
                                .node(root)
                                .edges
                                .as_ref()
                                .and_then(|edges| edges.get(edge_idx).map(|e| e.n))
                                .unwrap_or(0);
                            self.obs.event(
                                "mcts.search",
                                "commit",
                                &[
                                    field("group", group),
                                    field("explorations", done),
                                    field("visits", u64::from(visits)),
                                ],
                            );
                        }
                    }
                    env.step(action);
                    let child = tree.child_of(root, edge_idx);
                    tree.advance_root(child);
                    committed.push(action);
                    if let Some(sink) = sink.as_deref_mut() {
                        let ck = SearchCheckpoint {
                            groups_done: group + 1,
                            actions: committed.clone(),
                            tree: tree.clone(),
                            stats,
                            rng: self.noise.borrow().state(),
                        };
                        sink(&ck)?;
                        if self.obs.enabled() {
                            self.obs.count("ckpt.search_writes", 1);
                        }
                    }
                }
                None => {
                    // The deadline expired before this group saw a single
                    // exploration: allocate it and every remaining group
                    // with the greedy policy so the run still completes.
                    while !env.is_terminal() {
                        let s = env.state();
                        let action = agent.greedy_action(&s, ctx);
                        env.step(action);
                        stats.policy_greedy_groups += 1;
                    }
                    break 'groups;
                }
            }
        }

        // Terminal scoring goes through the trainer's evaluator; in coarse
        // mode that is the incremental `CoarseHpwlCache`-backed evaluator,
        // which re-scores only groups whose center changed since the last
        // call while staying bitwise-equal to a full recompute.
        let wirelength = trainer.wirelength_of(&env);
        stats.nodes = tree.len();
        if self.obs.tracing() {
            self.obs.event(
                "mcts.search",
                "done",
                &[
                    field("wirelength", wirelength),
                    field("nodes", stats.nodes),
                    field("value_evaluations", stats.value_evaluations),
                    field("nan_evaluations", stats.nan_evaluations),
                    field("deadline_expired", stats.deadline_expired),
                ],
            );
        }
        Ok(MctsOutcome {
            assignment: env.assignment().to_vec(),
            wirelength,
            reward: scale.reward(wirelength),
            stats,
        })
    }

    /// Selects a leaf by PUCT from the current root. `inflight` (per-edge
    /// and per-node virtual visit counts) biases only the exploration term;
    /// pass empty maps for plain sequential selection.
    fn select_leaf<'a>(
        &self,
        tree: &mut SearchTree,
        root_env: &PlacementEnv<'a>,
        inflight_edge: &BTreeMap<(usize, usize), u32>,
        inflight_node: &BTreeMap<usize, u32>,
    ) -> (Vec<(usize, usize)>, usize, PlacementEnv<'a>) {
        let mut sim = root_env.clone();
        let mut node = tree.root();
        let mut path: Vec<(usize, usize)> = Vec::new();
        // NaN-sane total order: a non-finite PUCT score (poisoned Q or
        // prior that slipped past the expansion guard) sorts below every
        // real score instead of panicking the comparison.
        let sane = |u: f64| if u.is_nan() { f64::NEG_INFINITY } else { u };
        while !sim.is_terminal() {
            let sum_n =
                tree.visit_sum(node) as f64 + inflight_node.get(&node).copied().unwrap_or(0) as f64;
            // √ΣN of Eq. 11, floored at 1 so priors break the all-zero tie
            // on a freshly expanded node.
            let sqrt_sum = sum_n.sqrt().max(1.0);
            let (edge_idx, action) = {
                let Some(edges) = tree.node(node).edges.as_ref() else {
                    break;
                };
                let Some(best) = edges.iter().enumerate().max_by(|(ia, a), (ib, b)| {
                    let fa = inflight_edge.get(&(node, *ia)).copied().unwrap_or(0);
                    let fb = inflight_edge.get(&(node, *ib)).copied().unwrap_or(0);
                    let ua = a.q()
                        + self.config.c_puct * a.p as f64 * sqrt_sum / (1.0 + (a.n + fa) as f64);
                    let ub = b.q()
                        + self.config.c_puct * b.p as f64 * sqrt_sum / (1.0 + (b.n + fb) as f64);
                    sane(ua).total_cmp(&sane(ub))
                }) else {
                    break;
                };
                (best.0, best.1.action)
            };
            path.push((node, edge_idx));
            sim.step(action);
            node = tree.child_of(node, edge_idx);
        }
        (path, node, sim)
    }

    /// Applies one network output to a leaf: expand with (optionally
    /// noised) π_θ priors, backpropagate V_θ (Sec. IV-B3).
    ///
    /// Numerical-health guard: a prior vector containing NaN/Inf is
    /// replaced wholesale by uniform priors and a non-finite value estimate
    /// by 0, so one poisoned network evaluation degrades the search locally
    /// instead of propagating NaN through Q and PUCT.
    fn apply_evaluation(
        &self,
        tree: &mut SearchTree,
        path: &[(usize, usize)],
        node: usize,
        out: &mmp_rl::NetOutput,
        stats: &mut SearchStats,
    ) {
        let mut priors: Vec<f32> = if self.config.prior_noise > 0.0 {
            let mut rng = self.noise.borrow_mut();
            let amp = self.config.prior_noise;
            out.probs
                .iter()
                .map(|&p| p * (1.0 + amp * (rng.gen::<f32>() - 0.5)))
                .collect()
        } else {
            out.probs.clone()
        };
        if self.config.fault_nan_priors {
            priors.iter_mut().for_each(|p| *p = f32::NAN);
        }
        let mut value = out.value as f64;
        let priors_poisoned = priors.iter().any(|p| !p.is_finite());
        if priors_poisoned {
            let uniform = 1.0 / priors.len().max(1) as f32;
            priors.iter_mut().for_each(|p| *p = uniform);
        }
        if priors_poisoned || !value.is_finite() {
            stats.nan_evaluations += 1;
            if !value.is_finite() {
                value = 0.0;
            }
        }
        tree.expand(node, &priors);
        tree.backpropagate(path, value);
    }

    /// Runs one exploration wave from the current root.
    ///
    /// Phase 1 (speculation, `wave > 1` only): select up to `wave` distinct
    /// non-terminal leaves under virtual in-flight visits and evaluate them
    /// with one batched network call. Phase 2 (replay): run plain
    /// sequential explorations; a leaf whose evaluation was pre-computed is
    /// expanded from the batch, terminal leaves run the real pipeline as
    /// usual, and the first sequential selection that was *not* speculated
    /// ends the wave, discarding unused batch entries. Every committed
    /// update is exactly what `wave == 1` would have done, so results are
    /// wave-size-invariant. Returns the explorations consumed (≥ 1).
    #[allow(clippy::too_many_arguments)]
    fn explore_wave(
        &self,
        tree: &mut SearchTree,
        root_env: &PlacementEnv<'_>,
        trainer: &Trainer<'_>,
        agent: &Agent,
        scale: &RewardScale,
        stats: &mut SearchStats,
        ctx: &mut InferenceCtx,
        budget: usize,
    ) -> usize {
        let wave = self.config.wave.max(1).min(budget.max(1));
        let no_inflight: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        let no_inflight_node: BTreeMap<usize, u32> = BTreeMap::new();

        // --- Phase 1: speculate and batch-evaluate -----------------------
        let mut results: BTreeMap<usize, mmp_rl::NetOutput> = BTreeMap::new();
        if wave > 1 {
            let mut inflight_edge: BTreeMap<(usize, usize), u32> = BTreeMap::new();
            let mut inflight_node: BTreeMap<usize, u32> = BTreeMap::new();
            let mut pending: Vec<PendingLeaf> = Vec::new();
            while pending.len() < wave {
                let (path, node, sim) =
                    self.select_leaf(tree, root_env, &inflight_edge, &inflight_node);
                // Terminal leaves need no network; replay handles them.
                // A revisited pending leaf means the tree has no more
                // distinct work this wave.
                if sim.is_terminal() || pending.iter().any(|p| p.node == node) {
                    break;
                }
                for &(n, e) in &path {
                    *inflight_edge.entry((n, e)).or_insert(0) += 1;
                    *inflight_node.entry(n).or_insert(0) += 1;
                }
                pending.push(PendingLeaf {
                    node,
                    state: sim.state(),
                });
            }
            if !pending.is_empty() {
                let states: Vec<State> = pending.iter().map(|p| p.state.clone()).collect();
                let outs = agent.policy_value_batch(&states, ctx);
                stats.batched_calls += 1;
                for (leaf, out) in pending.into_iter().zip(outs) {
                    results.insert(leaf.node, out);
                }
            }
        }

        // --- Phase 2: sequential replay ----------------------------------
        let mut consumed = 0usize;
        while consumed < budget {
            let (path, node, sim) =
                self.select_leaf(tree, root_env, &no_inflight, &no_inflight_node);
            if sim.is_terminal() {
                // Terminal: run the real pipeline once, cache the reward.
                let value = match tree.node(node).terminal_reward {
                    Some(r) => r,
                    None => {
                        stats.terminal_evaluations += 1;
                        let r = scale.reward(trainer.wirelength_of(&sim));
                        tree.node_mut(node).terminal_reward = Some(r);
                        r
                    }
                };
                tree.backpropagate(&path, value);
                stats.explorations += 1;
                consumed += 1;
                continue;
            }
            if let Some(out) = results.remove(&node) {
                // Speculation hit: the batch already evaluated this leaf.
                self.apply_evaluation(tree, &path, node, &out, stats);
                stats.value_evaluations += 1;
                stats.explorations += 1;
                consumed += 1;
                if results.is_empty() {
                    break; // batch exhausted — next wave re-speculates
                }
                continue;
            }
            if consumed > 0 {
                // Misprediction: sequential search went somewhere the
                // speculation did not — discard the leftovers.
                break;
            }
            // Nothing speculated (wave == 1, or speculation stopped at a
            // terminal): evaluate the single leaf directly.
            let Some(out) = agent.policy_value_batch(&[sim.state()], ctx).pop() else {
                break; // unreachable: one state yields one output
            };
            stats.batched_calls += 1;
            self.apply_evaluation(tree, &path, node, &out, stats);
            stats.value_evaluations += 1;
            stats.explorations += 1;
            consumed += 1;
            break;
        }
        stats.wasted_evaluations += results.len();
        consumed.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;
    use mmp_rl::TrainerConfig;

    fn trained(seed: u64, episodes: usize) -> (mmp_netlist::Design, TrainerConfig) {
        let d = SyntheticSpec::small("ms", 6, 0, 8, 40, 70, false, seed).generate();
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = episodes;
        (d, cfg)
    }

    #[test]
    fn mcts_places_every_group() {
        let (d, cfg) = trained(1, 3);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 6,
            ..MctsConfig::default()
        });
        let result = placer.place(&trainer, &out.agent, &out.scale);
        assert_eq!(
            result.assignment.len(),
            trainer.coarse().macro_groups().len()
        );
        assert!(result.wirelength > 0.0);
        assert!(result.stats.nodes > 1);
        assert_eq!(
            result.stats.explorations,
            6 * trainer.coarse().macro_groups().len()
        );
    }

    #[test]
    fn mcts_is_deterministic() {
        let (d, cfg) = trained(2, 2);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 4,
            ..MctsConfig::default()
        });
        let a = placer.place(&trainer, &out.agent, &out.scale);
        let b = placer.place(&trainer, &out.agent, &out.scale);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.wirelength, b.wirelength);
    }

    #[test]
    fn wave_batching_reproduces_sequential_search() {
        // Virtual visits only redirect *within* a wave; the committed
        // assignment must match the sequential (wave = 1) search.
        let (d, cfg) = trained(7, 3);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let sequential = MctsPlacer::new(MctsConfig {
            explorations: 12,
            wave: 1,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        let waved = MctsPlacer::new(MctsConfig {
            explorations: 12,
            wave: 8,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        assert_eq!(sequential.assignment, waved.assignment);
        assert_eq!(sequential.wirelength, waved.wirelength);
        // The waved run must actually have batched: fewer network calls
        // than leaf evaluations.
        assert!(
            waved.stats.batched_calls < waved.stats.value_evaluations,
            "wave=8 did not batch: {:?}",
            waved.stats
        );
        assert_eq!(
            sequential.stats.batched_calls,
            sequential.stats.value_evaluations
        );
    }

    #[test]
    fn wave_zero_behaves_as_sequential() {
        // 0 (e.g. from a serialized config without the field) means 1.
        let (d, cfg) = trained(8, 2);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let a = MctsPlacer::new(MctsConfig {
            explorations: 6,
            wave: 0,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        let b = MctsPlacer::new(MctsConfig {
            explorations: 6,
            wave: 1,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn value_evaluations_dominate_terminal_evaluations() {
        // The paper's runtime claim: non-terminal leaves are scored by V_θ,
        // so real placements are rare.
        let (d, cfg) = trained(3, 2);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 8,
            ..MctsConfig::default()
        });
        let result = placer.place(&trainer, &out.agent, &out.scale);
        assert!(
            result.stats.value_evaluations >= result.stats.terminal_evaluations,
            "{:?}",
            result.stats
        );
    }

    #[test]
    fn more_explorations_never_hurt_much() {
        // Not a strict guarantee, but with the same agent a deeper search
        // should not be wildly worse; this guards sign errors in PUCT.
        let (d, cfg) = trained(4, 3);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let shallow = MctsPlacer::new(MctsConfig {
            explorations: 2,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        let deep = MctsPlacer::new(MctsConfig {
            explorations: 24,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        assert!(
            deep.wirelength <= shallow.wirelength * 1.5,
            "deep {} vs shallow {}",
            deep.wirelength,
            shallow.wirelength
        );
    }

    #[test]
    fn mcts_beats_or_matches_greedy_rl() {
        // The Fig. 5 claim at miniature scale: MCTS post-optimization is at
        // least as good as the greedy RL rollout of the same agent.
        let (d, cfg) = trained(5, 6);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let (_, rl_w) = trainer.greedy_episode(&out.agent);
        let mcts = MctsPlacer::new(MctsConfig {
            explorations: 32,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        assert!(
            mcts.wirelength <= rl_w * 1.05,
            "mcts {} should not lose to greedy RL {} by >5%",
            mcts.wirelength,
            rl_w
        );
    }

    #[test]
    fn expired_deadline_degrades_to_policy_greedy_and_still_places() {
        let (d, cfg) = trained(9, 2);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 64,
            ..MctsConfig::default()
        });
        let result =
            // mmp-lint: allow(wallclock) why: test constructs an already-expired deadline on purpose
            placer.place_with_deadline(&trainer, &out.agent, &out.scale, Some(Instant::now()));
        let groups = trainer.coarse().macro_groups().len();
        assert!(result.stats.deadline_expired);
        assert_eq!(result.stats.policy_greedy_groups, groups);
        assert_eq!(result.assignment.len(), groups);
        assert!(result.wirelength.is_finite() && result.wirelength > 0.0);
        // The degraded allocation is exactly the greedy-policy rollout.
        let (greedy, _) = trainer.greedy_episode(&out.agent);
        assert_eq!(result.assignment, greedy);
    }

    #[test]
    fn expired_deadline_run_is_deterministic() {
        let (d, cfg) = trained(10, 2);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig::default());
        // mmp-lint: allow(wallclock) why: test constructs an already-expired deadline on purpose
        let past = Instant::now();
        let a = placer.place_with_deadline(&trainer, &out.agent, &out.scale, Some(past));
        let b = placer.place_with_deadline(&trainer, &out.agent, &out.scale, Some(past));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.wirelength, b.wirelength);
    }

    #[test]
    fn nan_priors_are_replaced_by_uniform_and_search_completes() {
        let (d, cfg) = trained(11, 2);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 6,
            fault_nan_priors: true,
            ..MctsConfig::default()
        });
        let result = placer.place(&trainer, &out.agent, &out.scale);
        assert!(result.stats.nan_evaluations > 0);
        assert_eq!(
            result.assignment.len(),
            trainer.coarse().macro_groups().len()
        );
        assert!(result.wirelength.is_finite() && result.wirelength > 0.0);
    }

    #[test]
    fn no_deadline_matches_plain_search() {
        let (d, cfg) = trained(12, 2);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 6,
            ..MctsConfig::default()
        });
        let plain = placer.place(&trainer, &out.agent, &out.scale);
        let dl = placer.place_with_deadline(&trainer, &out.agent, &out.scale, None);
        assert_eq!(plain.assignment, dl.assignment);
        assert!(!dl.stats.deadline_expired);
        assert_eq!(dl.stats.policy_greedy_groups, 0);
    }

    /// Runs a full search while recording every per-group checkpoint.
    fn search_recording(
        placer: &MctsPlacer,
        trainer: &Trainer<'_>,
        agent: &Agent,
        scale: &RewardScale,
    ) -> (MctsOutcome, Vec<SearchCheckpoint>) {
        let mut ctx = InferenceCtx::new();
        let mut taken: Vec<SearchCheckpoint> = Vec::new();
        let mut sink = |ck: &SearchCheckpoint| {
            taken.push(ck.clone());
            Ok(())
        };
        let out = placer
            .place_resumable(trainer, agent, scale, &mut ctx, None, None, Some(&mut sink))
            .unwrap();
        (out, taken)
    }

    #[test]
    fn interrupted_search_resumes_bitwise_identically() {
        let (d, cfg) = trained(13, 3);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let mcts_cfg = MctsConfig {
            explorations: 6,
            ..MctsConfig::default()
        };
        let placer = MctsPlacer::new(mcts_cfg.clone());
        let full = placer.place(&trainer, &out.agent, &out.scale);
        let (recorded, taken) = search_recording(&placer, &trainer, &out.agent, &out.scale);
        assert_eq!(recorded.assignment, full.assignment);
        let groups = trainer.coarse().macro_groups().len();
        assert_eq!(taken.len(), groups, "one checkpoint per committed group");
        // Resume from every mid-run checkpoint with a *fresh* placer (no
        // hidden state may be needed beyond the checkpoint itself).
        for ck in taken.into_iter().take(groups.saturating_sub(1)) {
            let mut ctx = InferenceCtx::new();
            let resumed = MctsPlacer::new(mcts_cfg.clone())
                .place_resumable(
                    &trainer,
                    &out.agent,
                    &out.scale,
                    &mut ctx,
                    None,
                    Some(ck),
                    None,
                )
                .unwrap();
            assert_eq!(resumed.assignment, full.assignment);
            assert_eq!(resumed.wirelength, full.wirelength);
            assert_eq!(resumed.stats, full.stats);
        }
    }

    #[test]
    fn noisy_interrupted_search_resumes_bitwise_identically() {
        // prior_noise > 0 exercises the RNG stream restore: the resumed
        // search must draw exactly the noise the uninterrupted one did.
        let (d, cfg) = trained(14, 3);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let mcts_cfg = MctsConfig {
            explorations: 6,
            prior_noise: 0.4,
            noise_seed: 9,
            ..MctsConfig::default()
        };
        let placer = MctsPlacer::new(mcts_cfg.clone());
        let (full, taken) = search_recording(&placer, &trainer, &out.agent, &out.scale);
        let mid = taken.len() / 2;
        let ck = taken.into_iter().nth(mid).unwrap();
        // Round-trip through JSON too: what the flow persists is the
        // serialized form.
        let ck: SearchCheckpoint =
            serde_json::from_str(&serde_json::to_string(&ck).unwrap()).unwrap();
        let mut ctx = InferenceCtx::new();
        let resumed = MctsPlacer::new(mcts_cfg)
            .place_resumable(
                &trainer,
                &out.agent,
                &out.scale,
                &mut ctx,
                None,
                Some(ck),
                None,
            )
            .unwrap();
        assert_eq!(resumed.assignment, full.assignment);
        assert_eq!(resumed.wirelength, full.wirelength);
        assert_eq!(resumed.stats, full.stats);
    }

    #[test]
    fn unusable_search_checkpoint_is_a_typed_error() {
        let (d, cfg) = trained(15, 2);
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 4,
            ..MctsConfig::default()
        });
        let (_, taken) = search_recording(&placer, &trainer, &out.agent, &out.scale);
        let mut ctx = InferenceCtx::new();

        // Action/group count mismatch.
        let mut bad = taken[0].clone();
        bad.groups_done += 1;
        let err = placer
            .place_resumable(
                &trainer,
                &out.agent,
                &out.scale,
                &mut ctx,
                None,
                Some(bad),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, CkptError::Invalid { .. }), "{err}");

        // Out-of-grid action.
        let mut bad = taken[0].clone();
        bad.actions[0] = trainer.grid().cell_count() + 7;
        let err = placer
            .place_resumable(
                &trainer,
                &out.agent,
                &out.scale,
                &mut ctx,
                None,
                Some(bad),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, CkptError::Invalid { .. }), "{err}");
    }

    #[test]
    fn default_config_matches_paper_constant() {
        let cfg = MctsConfig::default();
        assert_eq!(cfg.c_puct, 1.05);
        assert_eq!(cfg.wave, 1);
    }

    #[test]
    fn commit_key_prefers_visits_then_q_then_prior() {
        use std::cmp::Ordering;
        // Visits dominate regardless of Q.
        assert_eq!(
            commit_key_cmp((3, -1.0, 0.0), (2, 5.0, 1.0)),
            Ordering::Greater
        );
        // Equal visits: Q breaks the tie.
        assert_eq!(
            commit_key_cmp((4, 0.5, 0.0), (4, 0.2, 1.0)),
            Ordering::Greater
        );
        // Equal visits and Q: prior breaks the tie.
        assert_eq!(
            commit_key_cmp((4, 0.5, 0.9), (4, 0.5, 0.1)),
            Ordering::Greater
        );
        assert_eq!(
            commit_key_cmp((4, 0.5, 0.9), (4, 0.5, 0.9)),
            Ordering::Equal
        );
    }

    #[test]
    fn commit_key_nan_q_never_wins() {
        use std::cmp::Ordering;
        // A NaN Q sorts below any real Q at equal visit counts — it must
        // not flip the ordering or poison max_by.
        assert_eq!(
            commit_key_cmp((4, f64::NAN, 1.0), (4, -10.0, 0.0)),
            Ordering::Less
        );
        assert_eq!(
            commit_key_cmp((4, -10.0, 0.0), (4, f64::NAN, 1.0)),
            Ordering::Greater
        );
        // Two NaNs fall through to the prior tiebreak, still totally
        // ordered.
        assert_eq!(
            commit_key_cmp((4, f64::NAN, 0.7), (4, f64::NAN, 0.2)),
            Ordering::Greater
        );
        // Visit counts still dominate a NaN Q.
        assert_eq!(
            commit_key_cmp((5, f64::NAN, 0.0), (4, 1.0, 1.0)),
            Ordering::Greater
        );
    }
}
