//! Macro grouping with the score function Γ of Eq. 1.
//!
//! Γ(gᵢ, gⱼ) = 1/ΔD + δ·H + ε·w + κ·1/(ΔA + 1)
//!
//! where ΔD is the distance between the groups in the initial placement,
//! H the shared hierarchy depth, w the connectivity and ΔA the area
//! difference. Pairs are merged greedily highest-Γ-first until every group
//! reaches one grid cell in area or the best score drops below ν.

use crate::params::ClusterParams;
use mmp_geom::Point;
use mmp_netlist::{hierarchy_affinity, Design, MacroId, Placement};
use serde::{Deserialize, Serialize};

/// A cluster of macros treated as one placeable unit by RL and MCTS.
///
/// The group's outline is a square of equivalent area (`width == height ==
/// √area`): the paper places groups on grid cells by occupancy, so only the
/// area footprint matters, and a square is the least-biased shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacroGroup {
    /// Member macros, in merge order.
    pub members: Vec<MacroId>,
    /// Total member area (µm²).
    pub area: f64,
    /// Equivalent-square width (µm).
    pub width: f64,
    /// Equivalent-square height (µm).
    pub height: f64,
    /// Area-weighted centroid in the initial placement (µm).
    pub center: Point,
    /// Hierarchy path of the largest member (the group's representative).
    pub hierarchy: String,
}

impl MacroGroup {
    fn singleton(design: &Design, placement: &Placement, id: MacroId) -> Self {
        let m = design.macro_(id);
        MacroGroup {
            members: vec![id],
            area: m.area(),
            width: m.area().sqrt(),
            height: m.area().sqrt(),
            center: placement.macro_center(id),
            hierarchy: m.hierarchy.clone(),
        }
    }

    fn merged(a: &MacroGroup, b: &MacroGroup) -> MacroGroup {
        let area = a.area + b.area;
        let center = Point::new(
            (a.center.x * a.area + b.center.x * b.area) / area,
            (a.center.y * a.area + b.center.y * b.area) / area,
        );
        let (big, small) = if a.area >= b.area { (a, b) } else { (b, a) };
        let mut members = big.members.clone();
        members.extend_from_slice(&small.members);
        MacroGroup {
            members,
            area,
            width: area.sqrt(),
            height: area.sqrt(),
            center,
            hierarchy: big.hierarchy.clone(),
        }
    }

    /// Number of member macros.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the group has no members (never produced by clustering).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The score Γ of Eq. 1 for a candidate merge.
fn gamma(a: &MacroGroup, b: &MacroGroup, connectivity: f64, params: &ClusterParams) -> f64 {
    let dd = a.center.euclidean_distance(b.center).max(1e-9);
    let h = hierarchy_affinity(&a.hierarchy, &b.hierarchy) as f64;
    let da = (a.area - b.area).abs();
    1.0 / dd + params.delta * h + params.epsilon * connectivity + params.kappa / (da + 1.0)
}

/// Greedy agglomerative macro clustering per Sec. II-A.
///
/// Returns groups sorted by **non-increasing area** — the macro placement
/// sequence of Algorithm 1 ("macro groups with larger areas ... are given
/// higher priority").
///
/// `placement` supplies the initial positions for the ΔD term (the paper
/// runs an analytical global placement first; pass
/// [`Placement::initial`] if none is available — all-equal distances simply
/// neutralise the term).
pub fn cluster_macros(
    design: &Design,
    placement: &Placement,
    params: &ClusterParams,
) -> Vec<MacroGroup> {
    let ids = design.movable_macros();
    let n = ids.len();
    let mut groups: Vec<Option<MacroGroup>> = ids
        .iter()
        .map(|&id| Some(MacroGroup::singleton(design, placement, id)))
        .collect();

    // Pairwise connectivity between current groups, merged additively.
    let mut conn: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w = design.macro_connectivity(ids[i], ids[j]);
            conn[i][j] = w;
            conn[j][i] = w;
        }
    }

    loop {
        // Find the best mergeable pair. Groups at or above one grid cell in
        // area no longer merge.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            let Some(gi) = groups[i].as_ref() else {
                continue;
            };
            if gi.area >= params.grid_area {
                continue;
            }
            for j in (i + 1)..n {
                let Some(gj) = groups[j].as_ref() else {
                    continue;
                };
                if gj.area >= params.grid_area {
                    continue;
                }
                let score = gamma(gi, gj, conn[i][j], params);
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((i, j, score));
                }
            }
        }
        let Some((i, j, score)) = best else { break };
        if score < params.nu {
            break;
        }
        let (Some(gi), Some(gj)) = (groups[i].as_ref(), groups[j].as_ref()) else {
            break; // unreachable: `best` only records live indices
        };
        let merged = MacroGroup::merged(gi, gj);
        groups[i] = Some(merged);
        groups[j] = None;
        // Cross-pattern update over rows i, j and column k of the symmetric
        // matrix — indexing is clearer than iterator juggling here.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            if k != i {
                conn[i][k] += conn[j][k];
                conn[k][i] = conn[i][k];
            }
            conn[j][k] = 0.0;
            conn[k][j] = 0.0;
        }
    }

    let mut out: Vec<MacroGroup> = groups.into_iter().flatten().collect();
    out.sort_by(|a, b| b.area.total_cmp(&a.area));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::Rect;
    use mmp_netlist::{DesignBuilder, NodeRef, SyntheticSpec};

    fn params(grid_area: f64) -> ClusterParams {
        ClusterParams::paper(grid_area)
    }

    #[test]
    fn empty_design_yields_no_groups() {
        let d = DesignBuilder::new("e", Rect::new(0.0, 0.0, 10.0, 10.0))
            .build()
            .unwrap();
        let pl = Placement::initial(&d);
        assert!(cluster_macros(&d, &pl, &params(1.0)).is_empty());
    }

    #[test]
    fn single_macro_is_one_group() {
        let mut b = DesignBuilder::new("s", Rect::new(0.0, 0.0, 10.0, 10.0));
        let m = b.add_macro("m", 2.0, 3.0, "top");
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        let gs = cluster_macros(&d, &pl, &params(1.0));
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].members, vec![m]);
        assert_eq!(gs[0].area, 6.0);
        assert!((gs[0].width - 6f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn preplaced_macros_are_excluded() {
        let mut b = DesignBuilder::new("p", Rect::new(0.0, 0.0, 100.0, 100.0));
        b.add_macro("m", 2.0, 2.0, "");
        b.add_preplaced_macro("f", 2.0, 2.0, "", Point::new(50.0, 50.0));
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        let gs = cluster_macros(&d, &pl, &params(1e6));
        let member_count: usize = gs.iter().map(|g| g.len()).sum();
        assert_eq!(member_count, 1);
    }

    #[test]
    fn close_connected_same_hierarchy_macros_merge_first() {
        // Four macros: m0,m1 near each other / connected / same hierarchy;
        // m2,m3 far away, unconnected, different hierarchy.
        let mut b = DesignBuilder::new("m", Rect::new(0.0, 0.0, 1000.0, 1000.0));
        let m0 = b.add_macro("m0", 2.0, 2.0, "top/a");
        let m1 = b.add_macro("m1", 2.0, 2.0, "top/a");
        let m2 = b.add_macro("m2", 2.0, 2.0, "top/b");
        let m3 = b.add_macro("m3", 2.0, 2.0, "top/c");
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m0), Point::ORIGIN),
                (NodeRef::Macro(m1), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m0, Point::new(10.0, 10.0));
        pl.set_macro_center(m1, Point::new(12.0, 10.0));
        pl.set_macro_center(m2, Point::new(900.0, 900.0));
        pl.set_macro_center(m3, Point::new(100.0, 900.0));
        // Grid area big enough for exactly one merge of the small macros
        // (2x2 macros have area 4; grid area 8 lets singletons merge once,
        // after which every resulting pair is >= 8).
        let p = params(8.0);
        let gs = cluster_macros(&d, &pl, &p);
        // m0+m1 must be in one group.
        let g01 = gs
            .iter()
            .find(|g| g.members.contains(&m0))
            .expect("group with m0");
        assert!(g01.members.contains(&m1), "m0 and m1 should merge first");
    }

    #[test]
    fn groups_stop_growing_at_grid_area() {
        let d = SyntheticSpec::small("g", 20, 0, 8, 50, 120, true, 42).generate();
        let pl = Placement::initial(&d);
        let grid_area = d.region().area() / 256.0;
        let gs = cluster_macros(&d, &pl, &params(grid_area));
        // No *merged* group may exceed 2x the grid area (one merge combines
        // two sub-grid-area groups). Singleton macros may be any size.
        for g in &gs {
            if g.len() >= 2 {
                assert!(
                    g.area < 2.0 * grid_area + 1e-9,
                    "group area {} too big",
                    g.area
                );
            }
        }
        // All macros are covered exactly once.
        let mut seen: Vec<MacroId> = gs.iter().flat_map(|g| g.members.clone()).collect();
        seen.sort();
        assert_eq!(seen, d.movable_macros());
    }

    #[test]
    fn output_sorted_by_nonincreasing_area() {
        let d = SyntheticSpec::small("s", 24, 0, 8, 60, 140, false, 7).generate();
        let pl = Placement::initial(&d);
        let gs = cluster_macros(&d, &pl, &params(d.region().area() / 256.0));
        for w in gs.windows(2) {
            assert!(w[0].area >= w[1].area);
        }
    }

    #[test]
    fn nu_threshold_stops_merging() {
        // With an astronomically high nu nothing merges.
        let d = SyntheticSpec::small("t", 10, 0, 8, 30, 60, false, 9).generate();
        let pl = Placement::initial(&d);
        let mut p = params(1e12);
        p.nu = f64::INFINITY;
        let gs = cluster_macros(&d, &pl, &p);
        assert_eq!(gs.len(), 10, "no merges expected");
    }

    #[test]
    fn merged_centroid_is_area_weighted() {
        let mut b = DesignBuilder::new("c", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m0 = b.add_macro("m0", 2.0, 2.0, "h"); // area 4
        let m1 = b.add_macro("m1", 4.0, 3.0, "h"); // area 12
        let d = b.build().unwrap();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m0, Point::new(0.0, 0.0));
        pl.set_macro_center(m1, Point::new(16.0, 0.0));
        let gs = cluster_macros(&d, &pl, &params(1e9));
        assert_eq!(gs.len(), 1);
        // centroid = (4*0 + 12*16)/16 = 12
        assert!((gs[0].center.x - 12.0).abs() < 1e-9);
        // representative hierarchy from the larger member
        assert_eq!(gs[0].hierarchy, "h");
        assert_eq!(gs[0].members[0], m1, "largest member listed first");
    }
}
