#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests may unwrap freely). Justified invariant `expect`s carry explicit
// allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI.
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Deterministic fixed-partition thread pool.
//!
//! Every multicore fan-out in the workspace goes through [`ThreadPool`],
//! which is deliberately *not* a work-stealing executor:
//!
//! * the worker count comes from **config only** — this crate never calls
//!   `std::thread::available_parallelism()` (an mmp-lint rule bans it
//!   workspace-wide), so scheduling never varies across machines;
//! * the work partition is **fixed**: `tasks` indices are split into
//!   contiguous ranges of `ceil(tasks / workers)`, worker `w` taking range
//!   `w` — no stealing, no racing for indices;
//! * results are collected in **ascending task order**, and the reduction
//!   helpers ([`ThreadPool::dot_f32`], [`ThreadPool::sum_f32`]) use a fixed
//!   chunk size ([`SUM_CHUNK`]) *independent of the worker count*, folding
//!   partials in ascending chunk order — so a pool with 8 workers is
//!   bitwise identical to one with 1.
//!
//! Panic handling is deterministic too: a panicking task never tears the
//! process down mid-`scope`; the pool joins every worker, then either
//! re-raises the payload of the **lowest-index** panicked worker
//! ([`ThreadPool::run`]) or reports it as a typed
//! [`PoolError::WorkerPanicked`] ([`ThreadPool::try_run`]).
//!
//! A `workers == 1` pool executes inline on the caller's thread (no spawn),
//! which is the default everywhere — parallelism is strictly opt-in via
//! config.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Upper bound on configurable workers; guards against configs that would
/// spawn an absurd thread count per parallel region.
pub const MAX_WORKERS: usize = 64;

/// Fixed chunk length for deterministic sum reductions. Independent of the
/// worker count by design: partials are always computed over these exact
/// ranges and folded in ascending chunk order, so the result cannot depend
/// on how chunks were distributed over threads.
pub const SUM_CHUNK: usize = 1024;

/// Minimum vector length before [`ThreadPool::dot_f32`] /
/// [`ThreadPool::sum_f32`] spawn threads; below it the same chunked
/// reduction runs inline (identical bits, no spawn overhead).
const PAR_MIN_REDUCE: usize = 16_384;

type Payload = Box<dyn std::any::Any + Send + 'static>;

/// Typed pool failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// A pool cannot have zero workers.
    ZeroWorkers,
    /// The configured worker count exceeds [`MAX_WORKERS`].
    TooManyWorkers {
        /// Requested worker count.
        workers: usize,
        /// The allowed maximum ([`MAX_WORKERS`]).
        max: usize,
    },
    /// A worker panicked while executing its task range (reported by the
    /// `try_` variants; the panicking variants re-raise instead).
    WorkerPanicked {
        /// Lowest index of the panicked workers (deterministic pick).
        worker: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::ZeroWorkers => write!(f, "thread pool requires at least one worker"),
            PoolError::TooManyWorkers { workers, max } => {
                write!(
                    f,
                    "thread pool worker count {workers} exceeds maximum {max}"
                )
            }
            PoolError::WorkerPanicked { worker } => {
                write!(f, "pool worker {worker} panicked")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// A deterministic fixed-partition thread pool (see the module docs).
///
/// The pool holds no OS resources — it is a cheap `Copy` configuration;
/// worker threads are scoped to each parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
    fault_panic_worker: Option<usize>,
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::single()
    }
}

impl ThreadPool {
    /// A pool with the given worker count, rejecting zero and counts above
    /// [`MAX_WORKERS`].
    pub fn try_new(workers: usize) -> Result<ThreadPool, PoolError> {
        if workers == 0 {
            return Err(PoolError::ZeroWorkers);
        }
        if workers > MAX_WORKERS {
            return Err(PoolError::TooManyWorkers {
                workers,
                max: MAX_WORKERS,
            });
        }
        Ok(ThreadPool {
            workers,
            fault_panic_worker: None,
        })
    }

    /// The inline single-worker pool (no threads are ever spawned).
    pub fn single() -> ThreadPool {
        ThreadPool {
            workers: 1,
            fault_panic_worker: None,
        }
    }

    /// Fault-injection knob: the given worker panics at the start of its
    /// task range in every subsequent parallel region. Test/fault-matrix
    /// use only.
    #[must_use]
    pub fn with_fault_panic_worker(mut self, worker: Option<usize>) -> ThreadPool {
        self.fault_panic_worker = worker;
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Core execution: run `tasks` indexed closures over the fixed
    /// partition, giving each live worker exclusive access to one scratch
    /// slot. Returns results in ascending task order, or the lowest
    /// panicked worker index with its payload.
    fn raw_run<S, T, F>(
        &self,
        tasks: usize,
        scratch: &mut [S],
        f: F,
    ) -> Result<Vec<T>, (usize, Payload)>
    where
        S: Send,
        T: Send,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if tasks == 0 {
            return Ok(Vec::new());
        }
        let w = self.workers.min(tasks);
        assert!(
            scratch.len() >= w,
            "scratch must cover every live worker ({} < {w})",
            scratch.len()
        );
        let fault = self.fault_panic_worker;
        if w == 1 {
            let s0 = &mut scratch[0];
            return catch_unwind(AssertUnwindSafe(move || {
                if fault == Some(0) {
                    panic!("mmp-pool injected fault: worker 0");
                }
                (0..tasks).map(|i| f(i, s0)).collect::<Vec<T>>()
            }))
            .map_err(|p| (0, p));
        }
        let chunk = tasks.div_ceil(w);
        let mut outs: Vec<Result<Vec<T>, Payload>> = Vec::with_capacity(w);
        std::thread::scope(|scope| {
            let handles: Vec<_> = scratch[..w]
                .iter_mut()
                .enumerate()
                .map(|(wid, sw)| {
                    let f = &f;
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(move || {
                            if fault == Some(wid) {
                                panic!("mmp-pool injected fault: worker {wid}");
                            }
                            let lo = (wid * chunk).min(tasks);
                            let hi = ((wid + 1) * chunk).min(tasks);
                            (lo..hi).map(|i| f(i, sw)).collect::<Vec<T>>()
                        }))
                    })
                })
                .collect();
            // A worker body is fully wrapped in catch_unwind, so join can
            // only fail with that same payload; fold both failure shapes
            // into one.
            outs.extend(handles.into_iter().map(|h| h.join().unwrap_or_else(Err)));
        });
        if let Some(wid) = outs.iter().position(Result::is_err) {
            // why: position() guarantees outs[wid] is the Err variant.
            #[allow(clippy::expect_used)]
            let payload = outs
                .swap_remove(wid)
                .err()
                .expect("position() found an Err");
            return Err((wid, payload));
        }
        Ok(outs.into_iter().flatten().flatten().collect())
    }

    /// Runs `tasks` indexed closures over the fixed partition, returning
    /// results in ascending task order. A task panic is re-raised on the
    /// caller's thread (deterministically the lowest-index panicked
    /// worker's payload) after all workers have been joined.
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with_scratch(tasks, &mut vec![(); self.workers], |i, ()| f(i))
    }

    /// Like [`ThreadPool::run`], but reports a task panic as a typed
    /// [`PoolError::WorkerPanicked`] instead of re-raising it.
    pub fn try_run<T, F>(&self, tasks: usize, f: F) -> Result<Vec<T>, PoolError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.try_run_with_scratch(tasks, &mut vec![(); self.workers], |i, ()| f(i))
    }

    /// [`ThreadPool::run`] with one exclusive scratch slot per worker:
    /// task `i` receives `&mut scratch[w]` for the worker `w` that owns
    /// `i` under the fixed partition. `scratch` must have at least
    /// [`ThreadPool::workers`] slots.
    ///
    /// # Panics
    ///
    /// Re-raises a task panic; panics if `scratch` is too short.
    pub fn run_with_scratch<S, T, F>(&self, tasks: usize, scratch: &mut [S], f: F) -> Vec<T>
    where
        S: Send,
        T: Send,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        match self.raw_run(tasks, scratch, f) {
            Ok(v) => v,
            Err((_, payload)) => resume_unwind(payload),
        }
    }

    /// [`ThreadPool::try_run`] with per-worker scratch slots.
    pub fn try_run_with_scratch<S, T, F>(
        &self,
        tasks: usize,
        scratch: &mut [S],
        f: F,
    ) -> Result<Vec<T>, PoolError>
    where
        S: Send,
        T: Send,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        self.raw_run(tasks, scratch, f)
            .map_err(|(worker, _)| PoolError::WorkerPanicked { worker })
    }

    /// Splits `data` into fixed `chunk`-sized slices and applies
    /// `f(element_offset, chunk_slice)` to each, distributing contiguous
    /// runs of chunks over the workers. Chunk boundaries depend only on
    /// `chunk`, never on the worker count, so disjoint-write kernels (SpMV
    /// row blocks, density strips) are bitwise worker-count-invariant.
    ///
    /// # Panics
    ///
    /// Re-raises a task panic; panics if `chunk == 0`.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk must be positive");
        if data.is_empty() {
            return;
        }
        let nchunks = data.len().div_ceil(chunk);
        let w = self.workers.min(nchunks);
        let fault = self.fault_panic_worker;
        if w == 1 {
            if fault == Some(0) {
                panic!("mmp-pool injected fault: worker 0");
            }
            for (ci, sl) in data.chunks_mut(chunk).enumerate() {
                f(ci * chunk, sl);
            }
            return;
        }
        // Worker `w` owns the contiguous span of chunks [w·cpw, (w+1)·cpw).
        let span = nchunks.div_ceil(w) * chunk;
        let mut panics: Vec<(usize, Payload)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks_mut(span)
                .enumerate()
                .map(|(wid, super_slice)| {
                    let f = &f;
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(move || {
                            if fault == Some(wid) {
                                panic!("mmp-pool injected fault: worker {wid}");
                            }
                            for (ci, sl) in super_slice.chunks_mut(chunk).enumerate() {
                                f(wid * span + ci * chunk, sl);
                            }
                        }))
                    })
                })
                .collect();
            for (wid, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join().unwrap_or_else(Err) {
                    panics.push((wid, payload));
                }
            }
        });
        if let Some((_, payload)) = panics.into_iter().next() {
            resume_unwind(payload);
        }
    }

    /// Deterministic dot product: partial sums over fixed [`SUM_CHUNK`]
    /// ranges, folded in ascending chunk order. Bitwise identical at every
    /// worker count (and to the inline path used for short vectors).
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn dot_f32(&self, x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        self.reduce_chunked(x.len(), 0.0f32, |lo, hi| {
            let mut acc = 0.0f32;
            for (xv, yv) in x[lo..hi].iter().zip(&y[lo..hi]) {
                acc += xv * yv;
            }
            acc
        })
    }

    /// Deterministic sum with the same fixed-chunk reduction order as
    /// [`ThreadPool::dot_f32`].
    pub fn sum_f32(&self, x: &[f32]) -> f32 {
        self.reduce_chunked(x.len(), 0.0f32, |lo, hi| {
            let mut acc = 0.0f32;
            for v in &x[lo..hi] {
                acc += v;
            }
            acc
        })
    }

    /// [`ThreadPool::dot_f32`] for `f64` vectors (used by the analytic
    /// solver, which runs in double precision).
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn dot_f64(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        self.reduce_chunked(x.len(), 0.0f64, |lo, hi| {
            let mut acc = 0.0f64;
            for (xv, yv) in x[lo..hi].iter().zip(&y[lo..hi]) {
                acc += xv * yv;
            }
            acc
        })
    }

    /// [`ThreadPool::sum_f32`] for `f64` vectors.
    pub fn sum_f64(&self, x: &[f64]) -> f64 {
        self.reduce_chunked(x.len(), 0.0f64, |lo, hi| {
            let mut acc = 0.0f64;
            for v in &x[lo..hi] {
                acc += v;
            }
            acc
        })
    }

    /// Shared chunked-reduction driver: `partial(lo, hi)` must be a serial
    /// ascending accumulation over `[lo, hi)` starting from `zero`.
    fn reduce_chunked<T, F>(&self, len: usize, zero: T, partial: F) -> T
    where
        T: Copy + Send + std::ops::Add<Output = T>,
        F: Fn(usize, usize) -> T + Sync,
    {
        if len == 0 {
            return zero;
        }
        let nchunks = len.div_ceil(SUM_CHUNK);
        let bounds = |ci: usize| (ci * SUM_CHUNK, ((ci + 1) * SUM_CHUNK).min(len));
        let partials: Vec<T> = if self.workers > 1 && len >= PAR_MIN_REDUCE {
            self.run(nchunks, |ci| {
                let (lo, hi) = bounds(ci);
                partial(lo, hi)
            })
        } else {
            (0..nchunks)
                .map(|ci| {
                    let (lo, hi) = bounds(ci);
                    partial(lo, hi)
                })
                .collect()
        };
        partials.iter().fold(zero, |acc, &p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lcg_data(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn zero_workers_rejected() {
        assert_eq!(ThreadPool::try_new(0), Err(PoolError::ZeroWorkers));
    }

    #[test]
    fn huge_worker_count_rejected() {
        assert_eq!(
            ThreadPool::try_new(MAX_WORKERS + 1),
            Err(PoolError::TooManyWorkers {
                workers: MAX_WORKERS + 1,
                max: MAX_WORKERS
            })
        );
    }

    #[test]
    fn valid_counts_accepted() {
        for w in [1, 2, 8, MAX_WORKERS] {
            assert_eq!(ThreadPool::try_new(w).map(|p| p.workers()), Ok(w));
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(PoolError::ZeroWorkers.to_string().contains("at least one"));
        assert!(PoolError::TooManyWorkers {
            workers: 99,
            max: 64
        }
        .to_string()
        .contains("99"));
        assert!(PoolError::WorkerPanicked { worker: 3 }
            .to_string()
            .contains("worker 3"));
    }

    #[test]
    fn run_returns_results_in_task_order() {
        for w in [1, 2, 4, 8] {
            let pool = ThreadPool::try_new(w).unwrap();
            let out = pool.run(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "w={w}");
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let pool = ThreadPool::try_new(4).unwrap();
        assert!(pool.run(0, |i| i).is_empty());
    }

    #[test]
    fn fewer_tasks_than_workers_works() {
        let pool = ThreadPool::try_new(8).unwrap();
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn task_panic_is_reraised_with_its_payload() {
        let pool = ThreadPool::try_new(4).unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 9 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 9"), "payload lost: {msg:?}");
    }

    #[test]
    fn lowest_panicked_worker_wins_when_several_panic() {
        // With 4 workers over 16 tasks the partition is 4 tasks per
        // worker; tasks 5 and 13 live on workers 1 and 3.
        let pool = ThreadPool::try_new(4).unwrap();
        let got = pool.try_run(16, |i| {
            if i == 5 || i == 13 {
                panic!("dual failure");
            }
            i
        });
        assert_eq!(got, Err(PoolError::WorkerPanicked { worker: 1 }));
    }

    #[test]
    fn try_run_reports_single_worker_panics_too() {
        let pool = ThreadPool::single();
        let got = pool.try_run(4, |i| {
            if i == 2 {
                panic!("inline failure");
            }
            i
        });
        assert_eq!(got, Err(PoolError::WorkerPanicked { worker: 0 }));
    }

    #[test]
    fn injected_fault_surfaces_as_typed_error() {
        let pool = ThreadPool::try_new(4)
            .unwrap()
            .with_fault_panic_worker(Some(2));
        let got = pool.try_run(16, |i| i);
        assert_eq!(got, Err(PoolError::WorkerPanicked { worker: 2 }));
        // Out-of-range worker index never fires.
        let pool = ThreadPool::try_new(2)
            .unwrap()
            .with_fault_panic_worker(Some(7));
        assert_eq!(pool.try_run(4, |i| i), Ok(vec![0, 1, 2, 3]));
    }

    #[test]
    fn scratch_slots_are_per_worker_and_mutable() {
        let pool = ThreadPool::try_new(4).unwrap();
        let mut scratch = vec![0usize; pool.workers()];
        let out = pool.run_with_scratch(16, &mut scratch, |i, s| {
            *s += 1;
            i
        });
        assert_eq!(out.len(), 16);
        assert_eq!(scratch.iter().sum::<usize>(), 16, "every task counted once");
        assert!(
            scratch.iter().all(|&c| c == 4),
            "fixed partition gives each worker 4 of 16 tasks: {scratch:?}"
        );
    }

    #[test]
    fn for_each_chunk_mut_is_worker_count_invariant() {
        let base: Vec<f32> = lcg_data(42, 533);
        let apply = |w: usize| {
            let pool = ThreadPool::try_new(w).unwrap();
            let mut data = base.clone();
            pool.for_each_chunk_mut(&mut data, 64, |off, sl| {
                for (j, v) in sl.iter_mut().enumerate() {
                    *v = *v * 1.5 + (off + j) as f32;
                }
            });
            data
        };
        let want = apply(1);
        for w in [2, 4, 8] {
            let got = apply(w);
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits(), "w={w}");
            }
        }
    }

    #[test]
    fn for_each_chunk_mut_propagates_panics() {
        let pool = ThreadPool::try_new(2).unwrap();
        let mut data = vec![0.0f32; 256];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_chunk_mut(&mut data, 16, |off, _| {
                if off == 128 {
                    panic!("chunk failure");
                }
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn dot_matches_serial_chunked_order_exactly() {
        let x = lcg_data(7, 40_000);
        let y = lcg_data(8, 40_000);
        // Hand-rolled canonical order: SUM_CHUNK partials folded ascending.
        let mut want = 0.0f32;
        for ci in 0..x.len().div_ceil(SUM_CHUNK) {
            let lo = ci * SUM_CHUNK;
            let hi = ((ci + 1) * SUM_CHUNK).min(x.len());
            let mut p = 0.0f32;
            for (a, b) in x[lo..hi].iter().zip(&y[lo..hi]) {
                p += a * b;
            }
            want += p;
        }
        for w in [1, 2, 4, 8] {
            let pool = ThreadPool::try_new(w).unwrap();
            assert_eq!(pool.dot_f32(&x, &y).to_bits(), want.to_bits(), "w={w}");
        }
    }

    #[test]
    fn empty_reductions_are_zero() {
        let pool = ThreadPool::try_new(4).unwrap();
        assert_eq!(pool.dot_f32(&[], &[]), 0.0);
        assert_eq!(pool.sum_f32(&[]), 0.0);
        assert_eq!(pool.dot_f64(&[], &[]), 0.0);
        assert_eq!(pool.sum_f64(&[]), 0.0);
    }

    #[test]
    fn f64_reductions_match_canonical_order_bitwise() {
        let x: Vec<f64> = lcg_data(11, 40_000).iter().map(|&v| v as f64).collect();
        let y: Vec<f64> = lcg_data(13, 40_000).iter().map(|&v| v as f64).collect();
        let mut want_dot = 0.0f64;
        let mut want_sum = 0.0f64;
        for ci in 0..x.len().div_ceil(SUM_CHUNK) {
            let lo = ci * SUM_CHUNK;
            let hi = ((ci + 1) * SUM_CHUNK).min(x.len());
            let mut d = 0.0f64;
            let mut s = 0.0f64;
            for (a, b) in x[lo..hi].iter().zip(&y[lo..hi]) {
                d += a * b;
                s += a;
            }
            want_dot += d;
            want_sum += s;
        }
        for w in [1usize, 2, 4, 8] {
            let pool = ThreadPool::try_new(w).unwrap();
            assert_eq!(pool.dot_f64(&x, &y).to_bits(), want_dot.to_bits(), "w={w}");
            assert_eq!(pool.sum_f64(&x).to_bits(), want_sum.to_bits(), "w={w}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The headline determinism contract: identical inputs at worker
        /// counts 1/2/4/8 produce bitwise-identical outputs, for indexed
        /// map work, chunked in-place kernels, and reductions alike.
        #[test]
        fn worker_count_never_changes_bits(
            len in 1usize..3000,
            tasks in 1usize..40,
            seed in 0u64..1000,
        ) {
            let x = lcg_data(seed, len);
            let y = lcg_data(seed ^ 0xc0ffee, len);

            let outputs: Vec<(Vec<u32>, u32, u32, Vec<u32>)> = [1usize, 2, 4, 8]
                .iter()
                .map(|&w| {
                    let pool = ThreadPool::try_new(w).unwrap();
                    // Indexed map: each task does float work over a slice.
                    let mapped: Vec<u32> = pool
                        .run(tasks, |t| {
                            let lo = t * len / tasks;
                            let hi = (t + 1) * len / tasks;
                            let mut acc = 0.0f32;
                            for (a, b) in x[lo..hi].iter().zip(&y[lo..hi]) {
                                acc += a * b - 0.25 * a;
                            }
                            acc.to_bits()
                        });
                    let dot = pool.dot_f32(&x, &y).to_bits();
                    let sum = pool.sum_f32(&x).to_bits();
                    let mut data = x.clone();
                    pool.for_each_chunk_mut(&mut data, 37, |off, sl| {
                        for (j, v) in sl.iter_mut().enumerate() {
                            *v = *v * 0.5 + (off + j) as f32 * 1e-3;
                        }
                    });
                    (mapped, dot, sum, data.iter().map(|v| v.to_bits()).collect())
                })
                .collect();
            for w in &outputs[1..] {
                prop_assert_eq!(w, &outputs[0]);
            }
        }
    }
}
