//! Fig. 4 — RL training convergence under three reward functions on an
//! ibm10-like circuit: Eq. 9 with α (orange), Eq. 9 without α (blue), the
//! intuitive −W (red).
//!
//! ```sh
//! cargo run --release -p mmp-bench --bin fig4_reward
//! ```
//!
//! Paper expectation: the α-shifted reward rises fastest; the α-free
//! variant rises slower; −W does not converge at all.

use mmp_bench::{header, iccad_scale, scaled_count};
use mmp_core::{iccad04_suite, RewardKind, Trainer, TrainerConfig};

fn smoothed(series: &[f64], window: usize) -> Vec<f64> {
    series
        .windows(window.min(series.len()).max(1))
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect()
}

fn main() {
    header(
        "Fig. 4 — reward-function convergence on ibm10",
        "series: smoothed per-episode reward; the paper plots raw reward vs iteration",
    );
    let spec = iccad04_suite()[9].scaled(iccad_scale().max(0.002));
    let design = spec.generate();
    println!(
        "circuit: {} ({} macros, {} cells, {} nets)\n",
        design.name(),
        design.movable_macros().len(),
        design.cells().len(),
        design.nets().len()
    );

    let episodes = scaled_count(240, 40);
    const SEEDS: [u64; 3] = [0, 1, 2];
    let kinds = [
        ("eq9_with_alpha", RewardKind::Paper { alpha: 0.75 }),
        ("eq9_no_alpha", RewardKind::PaperNoAlpha),
        ("neg_wirelength", RewardKind::NegWirelength),
    ];

    // Per kind: per-episode reward/wirelength averaged over the seeds
    // (single-seed curves at this scale are noisy; the paper trains orders
    // of magnitude longer).
    let mut curves: Vec<(&str, Vec<f64>, Vec<f64>)> = Vec::new();
    for (label, kind) in kinds {
        let mut rewards = vec![0.0f64; episodes];
        let mut wirelengths = vec![0.0f64; episodes];
        for seed in SEEDS {
            let mut cfg = TrainerConfig::tiny(8);
            cfg.prototype_placement = true;
            cfg.coarse_eval = false;
            cfg.episodes = episodes;
            cfg.calibration_episodes = 50.min(episodes / 4).max(5);
            cfg.update_every = 10;
            cfg.reward = kind;
            cfg.seed = seed;
            let out = Trainer::new(&design, cfg).train();
            for (acc, r) in rewards.iter_mut().zip(&out.history.episode_rewards) {
                *acc += r / SEEDS.len() as f64;
            }
            for (acc, w) in wirelengths.iter_mut().zip(&out.history.episode_wirelengths) {
                *acc += w / SEEDS.len() as f64;
            }
        }
        curves.push((label, rewards, wirelengths));
    }
    println!("(averaged over {} seeds)\n", SEEDS.len());

    // Print the reward series, decimated to ~20 points.
    let window = (episodes / 10).max(1);
    println!("episode |  eq9+alpha |  eq9 (a=0) |        -W");
    let smoothed_curves: Vec<Vec<f64>> =
        curves.iter().map(|(_, r, _)| smoothed(r, window)).collect();
    let len = smoothed_curves[0].len();
    let step = (len / 20).max(1);
    for i in (0..len).step_by(step) {
        println!(
            "{:>7} | {:>10.3} | {:>10.3} | {:>9.1}",
            i + window,
            smoothed_curves[0][i],
            smoothed_curves[1][i],
            smoothed_curves[2][i]
        );
    }

    println!("\nsummary (reward trend = late mean − early mean; wirelength drop %):");
    for (label, rewards, wl) in &curves {
        let q = (rewards.len() / 4).max(1);
        let early_r: f64 = rewards[..q].iter().sum::<f64>() / q as f64;
        let late_r: f64 = rewards[rewards.len() - q..].iter().sum::<f64>() / q as f64;
        let early_w: f64 = wl[..q].iter().sum::<f64>() / q as f64;
        let late_w: f64 = wl[wl.len() - q..].iter().sum::<f64>() / q as f64;
        println!(
            "  {label:<16} reward {early_r:>9.3} -> {late_r:>9.3} (trend {:+.3}); wirelength {:+.1}%",
            late_r - early_r,
            (late_w / early_w - 1.0) * 100.0
        );
    }
    println!(
        "\npaper-vs-measured: Fig. 4 shows the alpha-shifted Eq. 9 reward rising\n\
         fastest and -W failing to converge; compare the trends above."
    );
}
