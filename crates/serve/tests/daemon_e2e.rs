//! Cross-process end-to-end checks for the `mmpd` daemon: real TCP, real
//! processes, a real SIGKILL. The headline contract: a daemon killed
//! mid-job and restarted finishes the job **bitwise-identically** to an
//! uninterrupted run, and two daemons given the same request produce
//! identical reports (modulo wall-clock telemetry).

use serde::{map_get, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmpd_e2e_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spawned daemon process plus the address it bound.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Starts `mmpd` on port 0 with tiny job defaults and waits for its
    /// "listening" line to learn the bound port.
    fn spawn(state_dir: &PathBuf, extra: &[&str]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_mmpd"));
        cmd.args(["--addr", "127.0.0.1:0", "--state-dir"])
            .arg(state_dir)
            .args(["--zeta", "4", "--episodes", "4", "--explorations", "6"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn mmpd");
        let stdout = child.stdout.take().expect("mmpd stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read mmpd banner");
        let addr = line
            .trim()
            .strip_prefix("mmpd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_owned();
        Daemon { child, addr }
    }

    /// One request line over a fresh connection; returns the response
    /// line (blocking however long the daemon takes to answer).
    fn request(&self, line: &str) -> String {
        let mut stream = TcpStream::connect(&self.addr).expect("connect mmpd");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .expect("read response");
        response.trim_end().to_owned()
    }

    fn poll_done(&self, id: &str) -> Value {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let line = self.request(&format!(r#"{{"op":"result","id":"{id}"}}"#));
            let v = serde_json::parse_value(&line).expect("result parses");
            match map_get(&v, "state") {
                Some(Value::Str(s)) if s == "done" => return v,
                _ if map_get(&v, "ok") == Some(&Value::Bool(false)) => return v,
                _ => {
                    assert!(Instant::now() < deadline, "job {id} never finished");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Clean shutdown via the protocol; asserts exit code 0.
    fn shutdown(mut self) {
        let line = self.request(r#"{"op":"shutdown"}"#);
        assert!(line.contains("shutting-down"), "{line}");
        let status = self.child.wait().expect("wait mmpd");
        assert_eq!(status.code(), Some(0), "daemon must drain and exit 0");
    }

    /// SIGKILL — the crash the recovery machinery exists for.
    fn kill(mut self) {
        self.child.kill().expect("kill mmpd");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn macro_bits(v: &Value) -> Vec<(String, u64, u64)> {
    let Some(Value::Seq(ms)) = map_get(v, "macros") else {
        panic!("no macros in {v:?}");
    };
    ms.iter()
        .map(|m| {
            let name = match map_get(m, "name") {
                Some(Value::Str(s)) => s.clone(),
                other => panic!("macro name: {other:?}"),
            };
            (
                name,
                map_get(m, "x_bits")
                    .and_then(Value::as_u64)
                    .expect("x_bits"),
                map_get(m, "y_bits")
                    .and_then(Value::as_u64)
                    .expect("y_bits"),
            )
        })
        .collect()
}

fn hpwl_bits(v: &Value) -> u64 {
    map_get(v, "report")
        .and_then(|r| map_get(r, "hpwl"))
        .and_then(Value::as_f64)
        .expect("report.hpwl")
        .to_bits()
}

/// Strips the wall-clock telemetry (stage timings, span totals, queue
/// wait) that legitimately differs between runs; everything else must
/// match exactly.
fn normalized(v: &Value) -> Value {
    match v {
        Value::Map(fields) => Value::Map(
            fields
                .iter()
                .filter(|(k, _)| k != "timings" && k != "span_ms" && k != "queue_wait_ms")
                .map(|(k, x)| (k.clone(), normalized(x)))
                .collect(),
        ),
        Value::Seq(items) => Value::Seq(items.iter().map(normalized).collect()),
        other => other.clone(),
    }
}

#[test]
fn daemon_serves_jobs_and_shuts_down_cleanly() {
    let state = tmp("serve");
    let daemon = Daemon::spawn(&state, &["--workers", "1"]);

    // Malformed requests get typed rejections, never a hangup.
    let line = daemon.request("this is not json");
    assert!(line.contains("bad-request"), "{line}");
    let line = daemon.request(r#"{"op":"frobnicate"}"#);
    assert!(line.contains("bad-request"), "{line}");

    // A blocking place round-trips to a full report with macro bits.
    let line = daemon.request(
        r#"{"op":"place","id":"e2e1","design":{"spec":[5,0,8,40,70],"seed":1},"update_every":2}"#,
    );
    let v = serde_json::parse_value(&line).expect("place response parses");
    assert_eq!(map_get(&v, "state"), Some(&Value::Str("done".into())));
    assert!(hpwl_bits(&v) != 0);
    assert_eq!(macro_bits(&v).len(), 5);

    // Status exposes the serve counters.
    let line = daemon.request(r#"{"op":"status"}"#);
    assert!(line.contains("serve.accepted"), "{line}");

    // Shutdown drains and exits 0; late work is rejected while draining.
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn sigkill_mid_job_then_restart_finishes_bitwise_identically() {
    let state = tmp("kill");
    let job = r#"{"op":"submit","id":"victim","design":{"spec":[6,1,8,50,90],"seed":5},"episodes":24,"update_every":1,"explorations":8}"#;

    // Baseline: the same request on an untouched daemon, uninterrupted.
    let baseline_state = tmp("kill_baseline");
    let baseline_daemon = Daemon::spawn(&baseline_state, &["--workers", "1"]);
    baseline_daemon.request(job);
    let baseline = baseline_daemon.poll_done("victim");
    assert_eq!(
        map_get(&baseline, "state"),
        Some(&Value::Str("done".into()))
    );
    baseline_daemon.shutdown();

    // Life 1: admit the job, wait for training to start checkpointing,
    // then SIGKILL the daemon mid-stage.
    let daemon = Daemon::spawn(&state, &["--workers", "1"]);
    daemon.request(job);
    let partial = state
        .join("jobs")
        .join("victim")
        .join("ckpt")
        .join("train.ckpt");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !partial.exists() {
        assert!(
            Instant::now() < deadline,
            "train.ckpt never appeared under {}",
            partial.display()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.kill();

    // Life 2: the journal replays the interrupted job; it resumes from
    // its checkpoints and must land on the exact bits of the baseline.
    let daemon = Daemon::spawn(&state, &["--workers", "1"]);
    let recovered = daemon.poll_done("victim");
    assert_eq!(
        map_get(&recovered, "state"),
        Some(&Value::Str("done".into())),
        "{recovered:?}"
    );
    let summary = map_get(&recovered, "summary").expect("summary");
    assert_eq!(map_get(summary, "recovered"), Some(&Value::Bool(true)));
    assert!(
        matches!(map_get(summary, "recovery_events"), Some(Value::Seq(e)) if !e.is_empty()),
        "recovery must resume from checkpoints: {summary:?}"
    );

    assert_eq!(hpwl_bits(&recovered), hpwl_bits(&baseline), "HPWL bits");
    assert_eq!(
        macro_bits(&recovered),
        macro_bits(&baseline),
        "macro coordinate bits"
    );
    // Training and search statistics also match: the resumed run is the
    // same computation, not merely one with the same score.
    let section = |v: &Value, key: &str| {
        normalized(
            map_get(v, "report")
                .and_then(|r| map_get(r, key))
                .expect(key),
        )
    };
    assert_eq!(
        section(&recovered, "training"),
        section(&baseline, "training")
    );
    assert_eq!(section(&recovered, "search"), section(&baseline, "search"));

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&baseline_state);
}

#[test]
fn two_daemons_answer_the_same_request_identically() {
    let job = r#"{"op":"place","id":"twin","design":{"spec":[5,0,8,40,70],"seed":9},"update_every":2,"seed":3}"#;
    let state_a = tmp("twin_a");
    let state_b = tmp("twin_b");
    let a = Daemon::spawn(&state_a, &["--workers", "1"]);
    let b = Daemon::spawn(&state_b, &["--workers", "1"]);
    let ra = serde_json::parse_value(&a.request(job)).expect("daemon A parses");
    let rb = serde_json::parse_value(&b.request(job)).expect("daemon B parses");
    assert_eq!(map_get(&ra, "state"), Some(&Value::Str("done".into())));
    assert_eq!(
        normalized(&ra),
        normalized(&rb),
        "identical requests must produce identical responses"
    );
    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&state_a);
    let _ = std::fs::remove_dir_all(&state_b);
}

#[test]
fn client_disconnect_mid_job_does_not_lose_the_job() {
    let state = tmp("disconnect");
    let daemon = Daemon::spawn(&state, &["--workers", "1"]);
    // Open a connection, fire a blocking place, and hang up immediately.
    {
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        stream
            .write_all(
                b"{\"op\":\"place\",\"id\":\"orphan\",\"design\":{\"spec\":[5,0,8,40,70],\"seed\":2},\"update_every\":2}\n",
            )
            .expect("send");
        // Dropping the stream here disconnects while the job runs.
    }
    // The hangup races the admission itself; give the daemon a moment to
    // finish parsing the line it already received.
    let deadline = Instant::now() + Duration::from_secs(30);
    while daemon
        .request(r#"{"op":"result","id":"orphan"}"#)
        .contains("unknown-job")
    {
        assert!(Instant::now() < deadline, "job was never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    let done = daemon.poll_done("orphan");
    assert_eq!(
        map_get(&done, "state"),
        Some(&Value::Str("done".into())),
        "the daemon must finish and store the orphaned job: {done:?}"
    );
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn bad_flags_are_usage_errors_and_bind_failures_are_io_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_mmpd"))
        .args(["--bogus-flag", "x"])
        .output()
        .expect("spawn mmpd");
    assert_eq!(out.status.code(), Some(2), "usage exit");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    let out = Command::new(env!("CARGO_BIN_EXE_mmpd"))
        .args(["--addr", "256.256.256.256:1", "--state-dir"])
        .arg(tmp("badbind"))
        .output()
        .expect("spawn mmpd");
    assert_eq!(out.status.code(), Some(1), "io exit");
    assert!(String::from_utf8_lossy(&out.stderr).contains("bind"));
}
