//! The three-step macro legalization flow of Sec. II-B.
//!
//! Given a grid assignment for every macro group (from RL or MCTS):
//!
//! 1. cell groups are placed by QP with macro groups fixed at their grid
//!    centers,
//! 2. macro groups are decomposed and individual macros placed by QP with
//!    cell groups fixed, each macro confined to its group's grid,
//! 3. overlaps are removed per grid with a sequence pair + the
//!    wirelength-minimising descent of [`crate::median`], followed by one
//!    global pass (including preplaced macros as heavily-weighted anchors)
//!    that clears any cross-grid overlap.

use crate::constraint::ConstraintGraph;
use crate::fallback::{shelf_pack, ShelfItem};
use crate::median::{axis_overflow, optimize_axis, AxisTarget};
use crate::sequence_pair::SequencePair;
use mmp_analytic::{cg, Triplets};
use mmp_cluster::{CoarsenedNetlist, GroupRef};
use mmp_geom::{Grid, GridIndex, Point, Rect};
use mmp_netlist::{Design, MacroId, NodeRef, Placement};
use mmp_obs::{field, Obs};
use std::error::Error;
use std::fmt;
use std::time::Instant;

fn expired(deadline: Option<Instant>) -> bool {
    // mmp-lint: allow(wallclock) why: budget-deadline probe; expiry only degrades to deterministic shelf packing
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn any_non_finite(centers: &[Point]) -> bool {
    centers.iter().any(|c| !c.x.is_finite() || !c.y.is_finite())
}

/// Error from [`MacroLegalizer::legalize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalizeError {
    /// `assignment.len()` must equal the number of macro groups.
    AssignmentMismatch {
        /// Macro group count in the coarsened netlist.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// An assignment entry points outside the ζ×ζ grid. Assignments built
    /// by the search are in-grid by construction; this guards externally
    /// restored ones (e.g. a resumed checkpoint) so a bad index surfaces
    /// as a typed error instead of garbage geometry.
    AssignmentOutOfGrid {
        /// Macro group with the bad entry.
        group: usize,
        /// Column supplied.
        col: usize,
        /// Row supplied.
        row: usize,
        /// Grid resolution ζ (both axes must be `< zeta`).
        zeta: usize,
    },
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalizeError::AssignmentMismatch { expected, got } => write!(
                f,
                "grid assignment has {got} entries but the design has {expected} macro groups"
            ),
            LegalizeError::AssignmentOutOfGrid {
                group,
                col,
                row,
                zeta,
            } => write!(
                f,
                "macro group {group} is assigned to cell ({col}, {row}) outside the \
                 {zeta}x{zeta} grid"
            ),
        }
    }
}

impl Error for LegalizeError {}

/// Result of legalization.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalizeOutcome {
    /// Placement with legal macro centers; cells sit at their group centers
    /// (run the analytical cell placer afterwards for the final result).
    pub placement: Placement,
    /// The QP-placed cell group centers of step 1.
    pub cell_group_centers: Vec<Point>,
    /// `true` when the macros could not all be kept inside the region.
    pub out_of_region: bool,
    /// Total remaining macro-macro overlap area (0 in feasible instances).
    pub overlap_area: f64,
    /// Grid cells whose per-cell overlap removal fell back to the
    /// deterministic row-greedy packer (non-finite coordinates, injected
    /// fault, or expired deadline). 0 on the healthy path.
    pub fallback_grid_cells: usize,
    /// `true` when the global pass was replaced by the row-greedy packer.
    pub global_fallback: bool,
    /// `true` when the wall-clock deadline had expired by the time
    /// legalization finished (the caller's budget accountant records which
    /// stages degraded).
    pub deadline_expired: bool,
}

/// Configuration + driver for the three-step legalization.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroLegalizer {
    /// Sweeps of the median-descent LP substitute.
    pub lp_iters: usize,
    /// CG tolerance for the QP steps.
    pub cg_tol: f64,
    /// CG iteration budget for the QP steps.
    pub cg_max_iters: usize,
    /// Anchor weight pinning preplaced macros in the global pass.
    pub fixed_weight: f64,
    /// Fault-injection knob: when `true` the sequence-pair path is treated
    /// as failed and every overlap-removal step uses the row-greedy
    /// fallback. Exercised by the fault harness; always `false` in
    /// production configs.
    pub force_sp_failure: bool,
    /// Observability handle. Defaults to [`Obs::off`] (one dead branch per
    /// instrumented site); equality compares handle identity, not captured
    /// data, so two default legalizers still compare equal.
    pub obs: Obs,
}

impl Default for MacroLegalizer {
    fn default() -> Self {
        MacroLegalizer {
            lp_iters: 30,
            cg_tol: 1e-8,
            cg_max_iters: 200,
            fixed_weight: 1e7,
            force_sp_failure: false,
            obs: Obs::off(),
        }
    }
}

impl MacroLegalizer {
    /// Creates a legalizer with default settings.
    pub fn new() -> Self {
        MacroLegalizer::default()
    }

    /// Attaches an observability handle.
    ///
    /// With tracing enabled the global pass emits `legal.global_pass`
    /// round events; counters `legal.global_rounds`,
    /// `legal.fallback_cells` and `legal.global_fallback` accumulate in
    /// the handle's metrics registry either way.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the full flow for `assignment[g]` = grid cell of macro group
    /// `g`.
    ///
    /// # Errors
    ///
    /// Returns [`LegalizeError::AssignmentMismatch`] when the assignment
    /// length is wrong. Infeasibility (macros genuinely not fitting the
    /// region) is *not* an error: it is reported through
    /// [`LegalizeOutcome::out_of_region`] / [`LegalizeOutcome::overlap_area`]
    /// so callers can still score the attempt.
    pub fn legalize(
        &self,
        design: &Design,
        coarse: &CoarsenedNetlist,
        assignment: &[GridIndex],
        grid: &Grid,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        self.legalize_with_deadline(design, coarse, assignment, grid, None)
    }

    /// [`MacroLegalizer::legalize`] under a wall-clock deadline: once the
    /// deadline passes, remaining overlap-removal work switches to the
    /// deterministic row-greedy packer instead of the sequence-pair + LP
    /// path, so a complete (if cruder) placement is always returned. The
    /// degradation is reported through
    /// [`LegalizeOutcome::fallback_grid_cells`] /
    /// [`LegalizeOutcome::global_fallback`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MacroLegalizer::legalize`].
    pub fn legalize_with_deadline(
        &self,
        design: &Design,
        coarse: &CoarsenedNetlist,
        assignment: &[GridIndex],
        grid: &Grid,
        deadline: Option<Instant>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        let groups = coarse.macro_groups();
        if assignment.len() != groups.len() {
            return Err(LegalizeError::AssignmentMismatch {
                expected: groups.len(),
                got: assignment.len(),
            });
        }
        for (group, idx) in assignment.iter().enumerate() {
            if idx.col >= grid.zeta() || idx.row >= grid.zeta() {
                return Err(LegalizeError::AssignmentOutOfGrid {
                    group,
                    col: idx.col,
                    row: idx.row,
                    zeta: grid.zeta(),
                });
            }
        }

        // Macro-group anchors: the centers of their assigned grid cells.
        let group_centers: Vec<Point> = assignment
            .iter()
            .map(|&idx| grid.cell_at(idx).center())
            .collect();

        // Step 1: place cell groups by QP.
        let cell_group_centers = self.place_cell_groups(design, coarse, &group_centers);

        // Step 2: place individual macros by QP, confined to their grids.
        let mut macro_centers =
            self.place_macros_in_grids(design, coarse, assignment, grid, &cell_group_centers);

        // Step 3a: per-grid overlap removal.
        let fallback_grid_cells = self.legalize_per_grid(
            design,
            coarse,
            assignment,
            grid,
            &mut macro_centers,
            deadline,
        );

        // Step 3b: global pass including preplaced macros.
        let (out_of_region, overlap_area, global_fallback) =
            self.global_pass(design, &mut macro_centers, deadline);

        if self.obs.enabled() {
            self.obs
                // mmp-lint: allow(cast-truncation) why: usize to u64 is widening on every supported target
                .count("legal.fallback_cells", fallback_grid_cells as u64);
            if global_fallback {
                self.obs.count("legal.global_fallback", 1);
            }
        }

        let mut placement = Placement::initial(design);
        for (i, m) in design.macros().iter().enumerate() {
            if !m.is_preplaced() {
                placement.set_macro_center(MacroId::from_index(i), macro_centers[i]);
            }
        }
        for (gi, g) in coarse.cell_groups().iter().enumerate() {
            for &c in &g.members {
                placement.set_cell_center(c, cell_group_centers[gi]);
            }
        }
        Ok(LegalizeOutcome {
            placement,
            cell_group_centers,
            out_of_region,
            overlap_area,
            fallback_grid_cells,
            global_fallback,
            deadline_expired: expired(deadline),
        })
    }

    /// Step 1: QP over cell groups with macro groups fixed at
    /// `group_centers` (clique net model over the coarsened nets).
    pub fn place_cell_groups(
        &self,
        design: &Design,
        coarse: &CoarsenedNetlist,
        group_centers: &[Point],
    ) -> Vec<Point> {
        let n = coarse.cell_groups().len();
        if n == 0 {
            return Vec::new();
        }
        let region = design.region();
        let mut out: Vec<Point> = coarse.cell_groups().iter().map(|g| g.center).collect();
        for axis in 0..2 {
            let mut a = Triplets::new(n);
            let mut b = vec![0.0; n];
            for net in coarse.nets() {
                let k = net.endpoints.len();
                if k < 2 {
                    continue;
                }
                let w = net.weight * 2.0 / k as f64;
                for i in 0..k {
                    for j in (i + 1)..k {
                        let coord = |ep: &GroupRef| -> (Option<usize>, f64) {
                            match *ep {
                                GroupRef::CellGroup(g) => (Some(g), 0.0),
                                GroupRef::MacroGroup(g) => {
                                    let p = group_centers[g];
                                    (None, if axis == 0 { p.x } else { p.y })
                                }
                                GroupRef::Fixed(p) => (None, if axis == 0 { p.x } else { p.y }),
                            }
                        };
                        let (vi, ci) = coord(&net.endpoints[i]);
                        let (vj, cj) = coord(&net.endpoints[j]);
                        match (vi, vj) {
                            (Some(p), Some(q)) => {
                                if p != q {
                                    a.add(p, p, w);
                                    a.add(q, q, w);
                                    a.add(p, q, -w);
                                    a.add(q, p, -w);
                                }
                            }
                            (Some(p), None) => {
                                a.add(p, p, w);
                                b[p] += w * cj;
                            }
                            (None, Some(q)) => {
                                a.add(q, q, w);
                                b[q] += w * ci;
                            }
                            (None, None) => {}
                        }
                    }
                }
            }
            let warm: Vec<f64> = out
                .iter()
                .map(|p| if axis == 0 { p.x } else { p.y })
                .collect();
            let sol = cg::solve(&a.to_csr(), &b, &warm, self.cg_tol, self.cg_max_iters);
            let (lo, hi) = if axis == 0 {
                (region.x, region.right())
            } else {
                (region.y, region.top())
            };
            for (p, v) in out.iter_mut().zip(sol.x) {
                let v = v.clamp(lo, hi);
                if axis == 0 {
                    p.x = v;
                } else {
                    p.y = v;
                }
            }
        }
        out
    }

    /// Step 2: QP over individual movable macros (cell groups fixed),
    /// clamped into their groups' assigned grid cells. Returns a center per
    /// design macro (preplaced macros keep their fixed centers).
    pub fn place_macros_in_grids(
        &self,
        design: &Design,
        coarse: &CoarsenedNetlist,
        assignment: &[GridIndex],
        grid: &Grid,
        cell_group_centers: &[Point],
    ) -> Vec<Point> {
        let n_all = design.macros().len();
        // Variable index per movable macro; start everyone at their group's
        // grid center so unconnected macros stay inside their grid.
        let mut var_of: Vec<Option<usize>> = vec![None; n_all];
        let mut vars: Vec<MacroId> = Vec::new();
        let mut centers: Vec<Point> = Vec::with_capacity(n_all);
        for (i, var_slot) in var_of.iter_mut().enumerate() {
            let id = MacroId::from_index(i);
            let m = design.macro_(id);
            if let Some(c) = m.fixed_center {
                centers.push(c);
            } else {
                *var_slot = Some(vars.len());
                vars.push(id);
                let c = coarse
                    .group_of_macro(id)
                    .map(|g| grid.cell_at(assignment[g]).center())
                    .unwrap_or_else(|| design.region().center());
                centers.push(c);
            }
        }
        let n = vars.len();
        if n == 0 {
            return centers;
        }

        for axis in 0..2 {
            let mut a = Triplets::new(n);
            let mut b = vec![0.0; n];
            for net in design.nets() {
                let k = net.pins.len();
                if k < 2 {
                    continue;
                }
                let w = net.weight * 2.0 / k as f64;
                // (variable index, offset) or (None, fixed coordinate incl. offset)
                let resolve = |pin: &mmp_netlist::Pin| -> (Option<usize>, f64) {
                    let off = if axis == 0 {
                        pin.offset.x
                    } else {
                        pin.offset.y
                    };
                    match pin.node {
                        NodeRef::Macro(id) => match var_of[id.index()] {
                            Some(v) => (Some(v), off),
                            None => {
                                let c = centers[id.index()];
                                (None, (if axis == 0 { c.x } else { c.y }) + off)
                            }
                        },
                        NodeRef::Cell(id) => {
                            let c = cell_group_centers
                                .get(coarse.group_of_cell(id))
                                .copied()
                                .unwrap_or_else(|| design.region().center());
                            (None, (if axis == 0 { c.x } else { c.y }) + off)
                        }
                        NodeRef::Pad(id) => {
                            let p = design.pad(id).position;
                            (None, if axis == 0 { p.x } else { p.y })
                        }
                    }
                };
                for i in 0..k {
                    for j in (i + 1)..k {
                        let (vi, ci) = resolve(&net.pins[i]);
                        let (vj, cj) = resolve(&net.pins[j]);
                        match (vi, vj) {
                            (Some(p), Some(q)) => {
                                if p != q {
                                    a.add(p, p, w);
                                    a.add(q, q, w);
                                    a.add(p, q, -w);
                                    a.add(q, p, -w);
                                    b[p] += w * (cj - ci);
                                    b[q] += w * (ci - cj);
                                }
                            }
                            (Some(p), None) => {
                                a.add(p, p, w);
                                b[p] += w * (cj - ci);
                            }
                            (None, Some(q)) => {
                                a.add(q, q, w);
                                b[q] += w * (ci - cj);
                            }
                            (None, None) => {}
                        }
                    }
                }
            }
            let warm: Vec<f64> = vars
                .iter()
                .map(|&id| {
                    let c = centers[id.index()];
                    if axis == 0 {
                        c.x
                    } else {
                        c.y
                    }
                })
                .collect();
            let sol = cg::solve(&a.to_csr(), &b, &warm, self.cg_tol, self.cg_max_iters);
            // Clamp each macro inside its group's grid cell ("the boundaries
            // of macros are limited inside their own grids").
            for (v, &id) in vars.iter().enumerate() {
                let m = design.macro_(id);
                let cell = coarse
                    .group_of_macro(id)
                    .map(|g| grid.cell_at(assignment[g]))
                    .unwrap_or(*design.region());
                let (lo, hi, half) = if axis == 0 {
                    (cell.x, cell.right(), m.width / 2.0)
                } else {
                    (cell.y, cell.top(), m.height / 2.0)
                };
                let val = if hi - lo <= 2.0 * half {
                    (lo + hi) / 2.0
                } else {
                    sol.x[v].clamp(lo + half, hi - half)
                };
                let c = &mut centers[id.index()];
                if axis == 0 {
                    c.x = val;
                } else {
                    c.y = val;
                }
            }
        }
        centers
    }

    /// Legalizes macros toward arbitrary target centers (no grid
    /// assignment): one global sequence-pair pass with preplaced macros
    /// pinned. Used by the analytical baselines, which produce overlapped
    /// macro positions directly.
    ///
    /// `targets` holds a desired center for every **movable** macro, in
    /// [`Design::movable_macros`] order. Returns the legalized placement
    /// plus the `(out_of_region, overlap_area)` diagnostics of the global
    /// pass.
    ///
    /// # Panics
    ///
    /// Panics when `targets.len()` differs from the movable macro count.
    pub fn legalize_targets(&self, design: &Design, targets: &[Point]) -> (Placement, bool, f64) {
        let movable = design.movable_macros();
        assert_eq!(
            targets.len(),
            movable.len(),
            "one target per movable macro required"
        );
        let mut centers: Vec<Point> = design
            .macros()
            .iter()
            .map(|m| m.fixed_center.unwrap_or_else(|| design.region().center()))
            .collect();
        for (k, &id) in movable.iter().enumerate() {
            centers[id.index()] = targets[k];
        }
        let (out_of_region, overlap, _fallback) = self.global_pass(design, &mut centers, None);
        let mut placement = Placement::initial(design);
        for (i, m) in design.macros().iter().enumerate() {
            if !m.is_preplaced() {
                placement.set_macro_center(MacroId::from_index(i), centers[i]);
            }
        }
        (placement, out_of_region, overlap)
    }

    /// Step 3a: sequence-pair overlap removal inside each grid cell.
    ///
    /// Each cell independently falls back to the row-greedy packer when the
    /// sequence-pair path is disabled ([`MacroLegalizer::force_sp_failure`]),
    /// the deadline has expired, or the LP produces a non-finite
    /// coordinate. Returns the number of cells that used the fallback.
    fn legalize_per_grid(
        &self,
        design: &Design,
        coarse: &CoarsenedNetlist,
        assignment: &[GridIndex],
        grid: &Grid,
        macro_centers: &mut [Point],
        deadline: Option<Instant>,
    ) -> usize {
        use std::collections::BTreeMap;
        let mut per_cell: BTreeMap<GridIndex, Vec<MacroId>> = BTreeMap::new();
        for id in design.movable_macros() {
            if let Some(g) = coarse.group_of_macro(id) {
                per_cell.entry(assignment[g]).or_default().push(id);
            }
        }
        let mut cells: Vec<_> = per_cell.into_iter().collect();
        cells.sort_by_key(|(idx, _)| (idx.row, idx.col));
        let mut fallback_cells = 0;
        for (idx, members) in cells {
            if members.len() < 2 {
                continue;
            }
            let bounds = grid.cell_at(idx);
            let sp_result = if self.force_sp_failure || expired(deadline) {
                None
            } else {
                self.per_grid_sp(design, &members, &bounds, macro_centers)
            };
            match sp_result {
                Some(centers) => {
                    for (k, &m) in members.iter().enumerate() {
                        macro_centers[m.index()] = centers[k];
                    }
                }
                None => {
                    let items: Vec<ShelfItem> = members
                        .iter()
                        .enumerate()
                        .map(|(k, &m)| {
                            let mac = design.macro_(m);
                            ShelfItem {
                                id: k,
                                width: mac.width,
                                height: mac.height,
                            }
                        })
                        .collect();
                    let packed = shelf_pack(&bounds, &items, &[]);
                    for p in packed.placements {
                        macro_centers[members[p.id].index()] = p.center;
                    }
                    fallback_cells += 1;
                }
            }
        }
        fallback_cells
    }

    /// The healthy per-cell overlap-removal path: sequence pair + median
    /// descent on both axes. Computes into a scratch copy and returns
    /// `None` (leaving `macro_centers` untouched) when any resulting
    /// coordinate is non-finite, so the caller can fall back.
    fn per_grid_sp(
        &self,
        design: &Design,
        members: &[MacroId],
        bounds: &Rect,
        macro_centers: &[Point],
    ) -> Option<Vec<Point>> {
        let mut centers: Vec<Point> = members.iter().map(|&m| macro_centers[m.index()]).collect();
        if any_non_finite(&centers) {
            return None;
        }
        let widths: Vec<f64> = members.iter().map(|&m| design.macro_(m).width).collect();
        let heights: Vec<f64> = members.iter().map(|&m| design.macro_(m).height).collect();
        let sp = SequencePair::from_points(&centers);
        for (horizontal, sizes, lo, hi) in [
            (true, &widths, bounds.x, bounds.right()),
            (false, &heights, bounds.y, bounds.top()),
        ] {
            let graph = ConstraintGraph::from_sequence_pair(&sp, horizontal);
            let targets: Vec<Vec<AxisTarget>> = centers
                .iter()
                .enumerate()
                .map(|(k, c)| {
                    vec![AxisTarget {
                        coord: (if horizontal { c.x } else { c.y }) - sizes[k] / 2.0,
                        weight: 1.0,
                    }]
                })
                .collect();
            let coords = optimize_axis(&graph, sizes, lo, hi, &targets, self.lp_iters);
            if coords.iter().any(|c| !c.is_finite()) {
                return None;
            }
            for (k, c) in centers.iter_mut().enumerate() {
                if horizontal {
                    c.x = coords[k] + sizes[k] / 2.0;
                } else {
                    c.y = coords[k] + sizes[k] / 2.0;
                }
            }
        }
        Some(centers)
    }

    /// Step 3b: global sequence-pair passes over *all* macros; preplaced
    /// macros are pinned by heavy targets and snapped back after each pass.
    /// Snapping can reintroduce an overlap against a stuck movable macro,
    /// so the pass iterates: descend → snap → push movables out of fixed
    /// outlines → re-derive the sequence pair, until clean (≤ 4 rounds).
    /// Returns `(out_of_region, overlap_area, used_fallback)`.
    fn global_pass(
        &self,
        design: &Design,
        macro_centers: &mut [Point],
        deadline: Option<Instant>,
    ) -> (bool, f64, bool) {
        let n = design.macros().len();
        if n == 0 {
            return (false, 0.0, false);
        }
        // Degraded path: poisoned input coordinates, an injected
        // sequence-pair failure, or an already-expired deadline all route
        // straight to the row-greedy packer.
        if self.force_sp_failure || expired(deadline) || any_non_finite(macro_centers) {
            let (oor, overlap) = self.global_shelf_fallback(design, macro_centers);
            return (oor, overlap, true);
        }
        let region = design.region();
        let widths: Vec<f64> = design.macros().iter().map(|m| m.width).collect();
        let heights: Vec<f64> = design.macros().iter().map(|m| m.height).collect();
        let mut out_of_region = false;

        let total_overlap = |centers: &[Point]| -> f64 {
            let rects: Vec<Rect> = (0..n)
                .map(|i| Rect::centered_at(centers[i], widths[i], heights[i]))
                .collect();
            let mut overlap = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    overlap += rects[i].overlap_area(&rects[j]);
                }
            }
            overlap
        };

        // Push macros out of the outlines they still intersect (minimum
        // single-axis displacement), preferring to move the movable (vs
        // fixed) or smaller (vs larger) of the pair. Also disperses
        // pathological all-on-one-point target sets whose position-derived
        // sequence pair would form an unpackable 1-D chain.
        // A push can cascade (clearing one outline lands on a neighbour
        // whose own pair check already ran), so sweep until a sweep moves
        // nothing, with a small cap against oscillation.
        let repair = |macro_centers: &mut [Point]| {
            for _sweep in 0..4_usize {
                let mut moved_any = false;
                for i in 0..n {
                    if design.macro_(MacroId::from_index(i)).is_preplaced() {
                        continue;
                    }
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let mj = design.macro_(MacroId::from_index(j));
                        // Push `i` away from fixed macros, and away from larger
                        // (or equal-size, lower-index) movable macros.
                        let i_yields = mj.is_preplaced()
                            || mj.area() > design.macro_(MacroId::from_index(i)).area()
                            || (mj.area() == design.macro_(MacroId::from_index(i)).area() && j < i);
                        if !i_yields {
                            continue;
                        }
                        let ri = Rect::centered_at(macro_centers[i], widths[i], heights[i]);
                        let rj = Rect::centered_at(macro_centers[j], widths[j], heights[j]);
                        // Float slivers from edge-sharing neighbours are not
                        // real overlaps; pushing for them ping-pongs a macro
                        // between abutting blocks.
                        if ri.overlap_area(&rj) < 1e-9 {
                            continue;
                        }
                        // Candidate pushes: clear to the left/right/bottom/top.
                        // Only pushes that keep the macro inside the region are
                        // viable — a clamped push would slide it right back —
                        // and pushes that land clear of every *fixed* outline
                        // are preferred (a macro squeezed between two abutting
                        // preplaced blocks must jump past both, not oscillate).
                        let pushes = [
                            Point::new(rj.x - ri.right(), 0.0),
                            Point::new(rj.right() - ri.x, 0.0),
                            Point::new(0.0, rj.y - ri.top()),
                            Point::new(0.0, rj.top() - ri.y),
                        ];
                        let fixed_rects: Vec<Rect> = (0..n)
                            .filter(|&k| {
                                k != i && design.macro_(MacroId::from_index(k)).is_preplaced()
                            })
                            .map(|k| Rect::centered_at(macro_centers[k], widths[k], heights[k]))
                            .collect();
                        let in_region = |p: &Point| region.contains_rect(&ri.translated(p.x, p.y));
                        let clear_of_fixed = |p: &Point| {
                            let moved = ri.translated(p.x, p.y);
                            fixed_rects.iter().all(|f| moved.overlap_area(f) < 1e-9)
                        };
                        // NaN-sane magnitude: a non-finite push sorts last
                        // and can never be chosen over a real one.
                        let magnitude = |p: &&Point| -> f64 {
                            let m = p.x.abs() + p.y.abs();
                            if m.is_nan() {
                                f64::INFINITY
                            } else {
                                m
                            }
                        };
                        let best = pushes
                            .iter()
                            .filter(|p| in_region(p) && clear_of_fixed(p))
                            .min_by(|a, b| magnitude(a).total_cmp(&magnitude(b)))
                            .or_else(|| {
                                pushes
                                    .iter()
                                    .filter(|p| in_region(p))
                                    .min_by(|a, b| magnitude(a).total_cmp(&magnitude(b)))
                            });
                        let moved = match best {
                            Some(p) => ri.translated(p.x, p.y),
                            // Fully boxed in: smallest push, clamped (genuinely
                            // infeasible designs stay overlapped, reported).
                            None => {
                                // why: invariant, not input: `pushes` is a fixed
                                // 4-element array, so min_by always finds one.
                                #[allow(clippy::expect_used)]
                                let p = pushes
                                    .iter()
                                    .min_by(|a, b| magnitude(a).total_cmp(&magnitude(b)))
                                    .expect("4 candidates");
                                ri.translated(p.x, p.y).clamped_inside(region)
                            }
                        };
                        macro_centers[i] = moved.center();
                        moved_any = true;
                    }
                }
                if !moved_any {
                    break;
                }
            }
        };

        let mut overlap = f64::INFINITY;
        let mut round_oor;
        for _round in 0..8_usize {
            // Between rounds: an expired deadline or poisoned coordinates
            // abandon the descent for the guaranteed-terminating packer.
            if expired(deadline) || any_non_finite(macro_centers) {
                let (oor, ov) = self.global_shelf_fallback(design, macro_centers);
                return (oor, ov, true);
            }
            round_oor = false;
            // Coincident centers would sort into a 1-D chain (all LeftOf),
            // which cannot fit the region; a deterministic golden-angle
            // spiral jitter — used for relation derivation only — keeps the
            // packing two-dimensional.
            let eps = (region.width + region.height) * 1e-6;
            let jittered: Vec<Point> = macro_centers
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let angle = 2.399963 * i as f64;
                    let r = eps * ((i + 1) as f64).sqrt();
                    Point::new(c.x + r * angle.cos(), c.y + r * angle.sin())
                })
                .collect();
            let sp = SequencePair::from_points(&jittered);
            for (horizontal, sizes, lo, hi) in [
                (true, &widths, region.x, region.right()),
                (false, &heights, region.y, region.top()),
            ] {
                let graph = ConstraintGraph::from_sequence_pair(&sp, horizontal);
                let targets: Vec<Vec<AxisTarget>> = (0..n)
                    .map(|i| {
                        let m = design.macro_(MacroId::from_index(i));
                        let (c, w) = match m.fixed_center {
                            Some(f) => (f, self.fixed_weight),
                            None => (macro_centers[i], 1.0),
                        };
                        vec![AxisTarget {
                            coord: (if horizontal { c.x } else { c.y }) - sizes[i] / 2.0,
                            weight: w,
                        }]
                    })
                    .collect();
                let coords = optimize_axis(&graph, sizes, lo, hi, &targets, self.lp_iters);
                if axis_overflow(&coords, sizes, lo, hi) > 1e-9 {
                    round_oor = true;
                }
                for i in 0..n {
                    if horizontal {
                        macro_centers[i].x = coords[i] + sizes[i] / 2.0;
                    } else {
                        macro_centers[i].y = coords[i] + sizes[i] / 2.0;
                    }
                }
            }
            // Snap preplaced macros exactly back.
            for (i, m) in design.macros().iter().enumerate() {
                if let Some(f) = m.fixed_center {
                    macro_centers[i] = f;
                }
            }
            // Clamp any spilled movable macro back inside; the clamp may
            // introduce overlap, which the repair below then disperses for
            // the next round.
            if round_oor {
                for i in 0..n {
                    if design.macro_(MacroId::from_index(i)).is_preplaced() {
                        continue;
                    }
                    let r = Rect::centered_at(macro_centers[i], widths[i], heights[i])
                        .clamped_inside(region);
                    macro_centers[i] = r.center();
                }
            }
            overlap = total_overlap(macro_centers);
            // One branch when observability is off — never an env-var read
            // or any formatting in this per-round path.
            if self.obs.enabled() {
                self.obs.count("legal.global_rounds", 1);
                if self.obs.tracing() {
                    self.obs.event(
                        "legal.global_pass",
                        "round",
                        &[
                            field("round", _round),
                            field("overlap", overlap),
                            field("oor", round_oor),
                        ],
                    );
                }
            }
            if overlap < 1e-9 {
                // Clean: every macro is inside the region (spills were
                // clamped above) and disjoint.
                out_of_region = false;
                break;
            }
            out_of_region = round_oor;
            // Repair, then re-measure: snapping a pinned macro back onto a
            // flush movable is exactly the case a single push resolves, and
            // without the re-measure a round whose repair fully cleans the
            // placement would never be credited.
            repair(macro_centers);
            overlap = total_overlap(macro_centers);
            if self.obs.tracing() {
                self.obs.event(
                    "legal.global_pass",
                    "post_repair",
                    &[field("round", _round), field("overlap", overlap)],
                );
            }
            if overlap < 1e-9 {
                // Pushes keep macros inside the region (or clamp them), so a
                // clean post-repair placement is fully legal.
                out_of_region = false;
                break;
            }
        }
        // Guaranteed-termination fallback: when the repair rounds leave
        // residual overlap (oscillation on pathological inputs), take the
        // raw longest-path packing of the current relations — overlap-free
        // by construction — then snap preplaced macros back one last time.
        if overlap > 1e-9 && (expired(deadline) || any_non_finite(macro_centers)) {
            let (oor, ov) = self.global_shelf_fallback(design, macro_centers);
            return (oor, ov, true);
        }
        if overlap > 1e-9 {
            let eps = (region.width + region.height) * 1e-6;
            let jittered: Vec<Point> = macro_centers
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let angle = 2.399963 * i as f64;
                    let r = eps * ((i + 1) as f64).sqrt();
                    Point::new(c.x + r * angle.cos(), c.y + r * angle.sin())
                })
                .collect();
            let sp = SequencePair::from_points(&jittered);
            for (horizontal, sizes, lo, hi) in [
                (true, &widths, region.x, region.right()),
                (false, &heights, region.y, region.top()),
            ] {
                let graph = ConstraintGraph::from_sequence_pair(&sp, horizontal);
                // Median descent with an unbounded upper limit: starting
                // from the (feasible) longest-path packing, windows never
                // invert, so the result stays overlap-free while being
                // pulled toward the pre-fallback positions.
                let targets: Vec<Vec<AxisTarget>> = (0..n)
                    .map(|i| {
                        let m = design.macro_(MacroId::from_index(i));
                        let (c, w) = match m.fixed_center {
                            Some(f) => (f, self.fixed_weight),
                            None => (macro_centers[i], 1.0),
                        };
                        vec![AxisTarget {
                            coord: (if horizontal { c.x } else { c.y }) - sizes[i] / 2.0,
                            weight: w,
                        }]
                    })
                    .collect();
                let coords =
                    optimize_axis(&graph, sizes, lo, f64::INFINITY, &targets, self.lp_iters);
                if axis_overflow(&coords, sizes, lo, hi) > 1e-9 {
                    out_of_region = true;
                }
                for i in 0..n {
                    if horizontal {
                        macro_centers[i].x = coords[i] + sizes[i] / 2.0;
                    } else {
                        macro_centers[i].y = coords[i] + sizes[i] / 2.0;
                    }
                }
            }
            for (i, m) in design.macros().iter().enumerate() {
                if let Some(f) = m.fixed_center {
                    macro_centers[i] = f;
                }
            }
            overlap = total_overlap(macro_centers);
            // The snap-back can reintroduce a fixed-macro overlap here too;
            // one repair pass usually clears it, and is kept only if it
            // actually helps.
            if overlap > 1e-9 {
                let before = macro_centers.to_vec();
                repair(macro_centers);
                let repaired = total_overlap(macro_centers);
                if repaired < overlap {
                    overlap = repaired;
                } else {
                    macro_centers.copy_from_slice(&before);
                }
            }
        }
        // The unbounded packing above trades region containment for
        // guaranteed overlap removal, so the result may stick out of the
        // region (or still overlap). First try the cheap rescue: clamp
        // every movable macro back inside and disperse whatever overlap
        // the clamp introduced — repair pushes stay in-region, so a clean
        // post-repair placement is fully legal and costs no degradation.
        if overlap > 1e-9 || out_of_region {
            for i in 0..n {
                if design.macro_(MacroId::from_index(i)).is_preplaced() {
                    continue;
                }
                let r = Rect::centered_at(macro_centers[i], widths[i], heights[i])
                    .clamped_inside(region);
                macro_centers[i] = r.center();
            }
            repair(macro_centers);
            overlap = total_overlap(macro_centers);
            out_of_region = false;
        }
        // Still overlapped: hand the placement to the shelf packer, which
        // is disjoint *and* in-region whenever the macros fit at all.
        if overlap > 1e-9 {
            let (oor, ov) = self.global_shelf_fallback(design, macro_centers);
            return (oor, ov, true);
        }
        (out_of_region, overlap, false)
    }

    /// The last-resort overlap removal: deterministic row-greedy shelves
    /// over the whole region with preplaced macros as obstacles. Always
    /// terminates, never produces non-finite coordinates, and is
    /// overlap-free whenever the shelves fit the region.
    fn global_shelf_fallback(&self, design: &Design, macro_centers: &mut [Point]) -> (bool, f64) {
        let region = design.region();
        let obstacles: Vec<Rect> = design
            .macros()
            .iter()
            .filter_map(|m| {
                m.fixed_center
                    .map(|c| Rect::centered_at(c, m.width, m.height))
            })
            .collect();
        let items: Vec<ShelfItem> = design
            .movable_macros()
            .iter()
            .map(|&id| {
                let m = design.macro_(id);
                ShelfItem {
                    id: id.index(),
                    width: m.width,
                    height: m.height,
                }
            })
            .collect();
        let packed = shelf_pack(region, &items, &obstacles);
        for p in packed.placements {
            macro_centers[p.id] = p.center;
        }
        for (i, m) in design.macros().iter().enumerate() {
            if let Some(f) = m.fixed_center {
                macro_centers[i] = f;
            }
        }
        let n = design.macros().len();
        let rects: Vec<Rect> = design
            .macros()
            .iter()
            .enumerate()
            .map(|(i, m)| Rect::centered_at(macro_centers[i], m.width, m.height))
            .collect();
        let mut overlap = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                overlap += rects[i].overlap_area(&rects[j]);
            }
        }
        (packed.out_of_bounds, overlap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_cluster::{ClusterParams, Coarsener};
    use mmp_netlist::SyntheticSpec;

    fn setup(
        macros: usize,
        preplaced: usize,
        cells: usize,
        seed: u64,
    ) -> (Design, CoarsenedNetlist, Grid) {
        let d = SyntheticSpec::small("lg", macros, preplaced, 8, cells, cells * 2, true, seed)
            .generate();
        let grid = Grid::new(*d.region(), 8);
        let pl = Placement::initial(&d);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area())).coarsen(&d, &pl);
        (d, coarse, grid)
    }

    fn spread_assignment(coarse: &CoarsenedNetlist, grid: &Grid) -> Vec<GridIndex> {
        // Deterministic scatter over the grid.
        (0..coarse.macro_groups().len())
            .map(|g| grid.unflatten((g * 7 + 3) % grid.cell_count()))
            .collect()
    }

    #[test]
    fn assignment_mismatch_is_an_error() {
        let (d, coarse, grid) = setup(6, 0, 60, 1);
        let err = MacroLegalizer::new()
            .legalize(&d, &coarse, &[], &grid)
            .unwrap_err();
        assert!(matches!(err, LegalizeError::AssignmentMismatch { .. }));
        assert!(err.to_string().contains("macro groups"));
    }

    #[test]
    fn out_of_grid_assignment_is_an_error() {
        let (d, coarse, grid) = setup(6, 0, 60, 1);
        let mut assignment = vec![GridIndex::new(0, 0); coarse.macro_groups().len()];
        assignment[0] = GridIndex::new(grid.zeta(), 0);
        let err = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap_err();
        assert!(matches!(err, LegalizeError::AssignmentOutOfGrid { .. }));
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn legalized_macros_do_not_overlap() {
        let (d, coarse, grid) = setup(10, 0, 80, 2);
        let assignment = spread_assignment(&coarse, &grid);
        let out = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        assert!(
            out.overlap_area < 1e-6,
            "remaining overlap {}",
            out.overlap_area
        );
        assert!(out.placement.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn preplaced_macros_never_move() {
        let (d, coarse, grid) = setup(8, 3, 60, 3);
        let assignment = spread_assignment(&coarse, &grid);
        let out = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        for id in d.preplaced_macros() {
            assert_eq!(
                out.placement.macro_center(id),
                d.macro_(id).fixed_center.unwrap()
            );
        }
    }

    #[test]
    fn macros_stay_inside_region_in_feasible_instances() {
        let (d, coarse, grid) = setup(8, 0, 60, 4);
        let assignment = spread_assignment(&coarse, &grid);
        let out = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        assert!(!out.out_of_region);
        assert!(out.placement.macros_inside_region(&d));
    }

    #[test]
    fn cells_sit_at_their_group_centers() {
        let (d, coarse, grid) = setup(6, 0, 50, 5);
        let assignment = spread_assignment(&coarse, &grid);
        let out = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        for (gi, g) in coarse.cell_groups().iter().enumerate() {
            for &c in &g.members {
                assert_eq!(out.placement.cell_center(c), out.cell_group_centers[gi]);
            }
        }
    }

    #[test]
    fn legalization_is_deterministic() {
        let (d, coarse, grid) = setup(9, 2, 70, 6);
        let assignment = spread_assignment(&coarse, &grid);
        let a = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        let b = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn all_groups_in_one_cell_still_legalizes() {
        // Stress: everything assigned to a single grid cell must still come
        // out overlap-free (possibly spilling outside the cell, never
        // overlapping).
        let (d, coarse, grid) = setup(8, 0, 50, 7);
        let assignment = vec![GridIndex::new(4, 4); coarse.macro_groups().len()];
        let out = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        assert!(
            out.placement.macro_overlap_area(&d) < 1e-6,
            "overlap {}",
            out.placement.macro_overlap_area(&d)
        );
    }

    #[test]
    fn zero_macro_design_legalizes_trivially() {
        let (d, coarse, grid) = setup(0, 0, 40, 8);
        let out = MacroLegalizer::new()
            .legalize(&d, &coarse, &[], &grid)
            .unwrap();
        assert_eq!(out.overlap_area, 0.0);
        assert!(!out.out_of_region);
    }

    #[test]
    fn healthy_path_reports_no_degradation() {
        let (d, coarse, grid) = setup(8, 0, 60, 4);
        let assignment = spread_assignment(&coarse, &grid);
        let out = MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        assert_eq!(out.fallback_grid_cells, 0);
        assert!(!out.global_fallback);
        assert!(!out.deadline_expired);
    }

    #[test]
    fn forced_sp_failure_falls_back_and_still_legalizes() {
        let (d, coarse, grid) = setup(10, 0, 80, 2);
        let assignment = spread_assignment(&coarse, &grid);
        let leg = MacroLegalizer {
            force_sp_failure: true,
            ..MacroLegalizer::default()
        };
        let out = leg.legalize(&d, &coarse, &assignment, &grid).unwrap();
        assert!(out.global_fallback, "fault must route to the fallback");
        assert!(
            out.placement.macro_overlap_area(&d) < 1e-6,
            "fallback packing must stay overlap-free, got {}",
            out.placement.macro_overlap_area(&d)
        );
        for &id in &d.movable_macros() {
            let c = out.placement.macro_center(id);
            assert!(c.x.is_finite() && c.y.is_finite());
        }
    }

    #[test]
    fn forced_sp_failure_respects_preplaced_macros() {
        let (d, coarse, grid) = setup(8, 3, 60, 3);
        let assignment = spread_assignment(&coarse, &grid);
        let leg = MacroLegalizer {
            force_sp_failure: true,
            ..MacroLegalizer::default()
        };
        let out = leg.legalize(&d, &coarse, &assignment, &grid).unwrap();
        for id in d.preplaced_macros() {
            assert_eq!(
                out.placement.macro_center(id),
                d.macro_(id).fixed_center.unwrap()
            );
        }
        assert!(
            out.placement.macro_overlap_area(&d) < 1e-6,
            "fallback shelves avoid preplaced outlines, got overlap {}",
            out.placement.macro_overlap_area(&d)
        );
    }

    #[test]
    fn expired_deadline_degrades_but_completes() {
        let (d, coarse, grid) = setup(10, 0, 80, 2);
        let assignment = spread_assignment(&coarse, &grid);
        // mmp-lint: allow(wallclock) why: test constructs an already-expired deadline on purpose
        let past = std::time::Instant::now() - std::time::Duration::from_millis(10);
        let out = MacroLegalizer::new()
            .legalize_with_deadline(&d, &coarse, &assignment, &grid, Some(past))
            .unwrap();
        assert!(out.deadline_expired);
        assert!(out.global_fallback);
        assert!(out.placement.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn fallback_legalization_is_deterministic() {
        let (d, coarse, grid) = setup(9, 2, 70, 6);
        let assignment = spread_assignment(&coarse, &grid);
        let leg = MacroLegalizer {
            force_sp_failure: true,
            ..MacroLegalizer::default()
        };
        let a = leg.legalize(&d, &coarse, &assignment, &grid).unwrap();
        let b = leg.legalize(&d, &coarse, &assignment, &grid).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn no_deadline_matches_plain_legalize() {
        let (d, coarse, grid) = setup(8, 0, 60, 4);
        let assignment = spread_assignment(&coarse, &grid);
        let leg = MacroLegalizer::new();
        let a = leg.legalize(&d, &coarse, &assignment, &grid).unwrap();
        let b = leg
            .legalize_with_deadline(&d, &coarse, &assignment, &grid, None)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn better_assignments_give_shorter_coarse_wirelength() {
        // Sanity: assigning groups to their QP-preferred corners vs all in
        // one far corner should differ in HPWL after legalization.
        let (d, coarse, grid) = setup(8, 0, 60, 9);
        let spread = spread_assignment(&coarse, &grid);
        let corner = vec![GridIndex::new(7, 7); coarse.macro_groups().len()];
        let leg = MacroLegalizer::new();
        let a = leg.legalize(&d, &coarse, &spread, &grid).unwrap();
        let b = leg.legalize(&d, &coarse, &corner, &grid).unwrap();
        assert_ne!(
            a.placement.hpwl(&d),
            b.placement.hpwl(&d),
            "different assignments must score differently"
        );
    }
}
