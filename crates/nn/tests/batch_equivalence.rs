//! Batched inference must match per-sample inference, and the `&self`
//! infer path must match the legacy eval-mode forward path.

use mmp_nn::{BatchNorm2d, Conv2d, InferenceCtx, Layer, Linear, Relu, Sequential, Tensor};
use proptest::prelude::*;

/// Deterministic pseudo-random data in [-1, 1).
fn data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

/// A small conv tower whose BatchNorm has seen a few training batches, so
/// running stats are non-trivial.
fn tower(channels: usize, seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Conv2d::new(1, channels, 3, seed));
    let mut bn = BatchNorm2d::new(channels);
    let mut warm = Conv2d::new(1, channels, 3, seed);
    for step in 0..4 {
        let x = Tensor::from_vec(&[2, 1, 4, 4], data(32, seed ^ (step + 1)));
        let h = warm.forward(&x, true);
        let _ = bn.forward(&h, true);
    }
    net.push(bn);
    net.push(Relu::new());
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// infer on a batch of N states equals N single-state infer calls.
    #[test]
    fn conv_tower_batch_matches_singles(n in 1usize..6, seed in 0u64..500) {
        let net = tower(3, seed);
        let mut ctx = InferenceCtx::new();
        let batch_data = data(n * 16, seed ^ 0xbeef);
        let batch = Tensor::from_vec(&[n, 1, 4, 4], batch_data.clone());
        let batched = net.infer(&batch, &mut ctx);
        prop_assert_eq!(batched.shape(), &[n, 3, 4, 4]);
        for s in 0..n {
            let single = Tensor::from_vec(&[1, 1, 4, 4], batch_data[s * 16..(s + 1) * 16].to_vec());
            let out = net.infer(&single, &mut ctx);
            let want = &batched.as_slice()[s * 48..(s + 1) * 48];
            for (a, b) in out.as_slice().iter().zip(want) {
                prop_assert!((a - b).abs() < 1e-5, "sample {} diverged: {} vs {}", s, a, b);
            }
            ctx.recycle_tensor(out);
        }
    }

    /// Linear batch inference equals row-by-row inference.
    #[test]
    fn linear_batch_matches_singles(n in 1usize..8, seed in 0u64..500) {
        let lin = Linear::new(6, 4, seed);
        let mut ctx = InferenceCtx::new();
        let batch_data = data(n * 6, seed ^ 0x11);
        let batch = Tensor::from_vec(&[n, 6], batch_data.clone());
        let batched = lin.infer(&batch, &mut ctx);
        for s in 0..n {
            let single = Tensor::from_vec(&[1, 6], batch_data[s * 6..(s + 1) * 6].to_vec());
            let out = lin.infer(&single, &mut ctx);
            for (a, b) in out
                .as_slice()
                .iter()
                .zip(&batched.as_slice()[s * 4..(s + 1) * 4])
            {
                prop_assert!((a - b).abs() < 1e-5);
            }
            ctx.recycle_tensor(out);
        }
    }

    /// The `&self` infer path reproduces the legacy eval-mode forward path.
    #[test]
    fn infer_matches_eval_forward(n in 1usize..4, seed in 0u64..500) {
        let mut net = tower(2, seed);
        let mut ctx = InferenceCtx::new();
        let x = Tensor::from_vec(&[n, 1, 4, 4], data(n * 16, seed ^ 0x77));
        let legacy = net.forward(&x, false);
        let inferred = net.infer(&x, &mut ctx);
        prop_assert_eq!(legacy.shape(), inferred.shape());
        for (a, b) in legacy.as_slice().iter().zip(inferred.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }
}

/// Buffer reuse across repeated infer calls must not change results.
#[test]
fn repeated_infer_with_shared_ctx_is_stable() {
    let net = tower(3, 9);
    let mut ctx = InferenceCtx::new();
    let x = Tensor::from_vec(&[2, 1, 4, 4], data(32, 42));
    let first = net.infer(&x, &mut ctx);
    for _ in 0..5 {
        let again = net.infer(&x, &mut ctx);
        assert_eq!(first.as_slice(), again.as_slice());
        ctx.recycle_tensor(again);
    }
}
