//! Design-hierarchy utilities.
//!
//! The macro-grouping score Γ (Eq. 1) contains an H(g_i, g_j) term: "the
//! common parts of the hierarchy names". We model hierarchy paths as
//! `/`-separated strings and measure affinity as the number of shared leading
//! components.

/// Number of leading `/`-separated components shared by two hierarchy paths.
///
/// Empty paths share nothing. The comparison is exact per component, not
/// per character, so `"top/alu1"` and `"top/alu2"` share only `"top"`.
///
/// # Example
///
/// ```
/// use mmp_netlist::hierarchy_affinity;
///
/// assert_eq!(hierarchy_affinity("top/cpu/alu", "top/cpu/fpu"), 2);
/// assert_eq!(hierarchy_affinity("top/alu1", "top/alu2"), 1);
/// assert_eq!(hierarchy_affinity("a/b", "c/d"), 0);
/// assert_eq!(hierarchy_affinity("", "top"), 0);
/// ```
pub fn hierarchy_affinity(a: &str, b: &str) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    a.split('/')
        .zip(b.split('/'))
        .take_while(|(x, y)| x == y)
        .count()
}

/// Depth (component count) of a hierarchy path; empty paths have depth 0.
pub fn hierarchy_depth(path: &str) -> usize {
    if path.is_empty() {
        0
    } else {
        path.split('/').count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_paths_share_full_depth() {
        assert_eq!(hierarchy_affinity("top/a/b", "top/a/b"), 3);
    }

    #[test]
    fn affinity_is_component_wise_not_prefix_string() {
        // "alu1" vs "alu10" share characters but not the component.
        assert_eq!(hierarchy_affinity("top/alu1", "top/alu10"), 1);
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(hierarchy_depth(""), 0);
        assert_eq!(hierarchy_depth("top"), 1);
        assert_eq!(hierarchy_depth("top/a/b/c"), 4);
    }

    proptest! {
        #[test]
        fn affinity_is_symmetric(a in "[a-c]{1,3}(/[a-c]{1,3}){0,4}",
                                 b in "[a-c]{1,3}(/[a-c]{1,3}){0,4}") {
            prop_assert_eq!(hierarchy_affinity(&a, &b), hierarchy_affinity(&b, &a));
        }

        #[test]
        fn affinity_bounded_by_min_depth(a in "[a-c]{1,3}(/[a-c]{1,3}){0,4}",
                                         b in "[a-c]{1,3}(/[a-c]{1,3}){0,4}") {
            let aff = hierarchy_affinity(&a, &b);
            prop_assert!(aff <= hierarchy_depth(&a).min(hierarchy_depth(&b)));
        }

        #[test]
        fn self_affinity_equals_depth(a in "[a-c]{1,3}(/[a-c]{1,3}){0,4}") {
            prop_assert_eq!(hierarchy_affinity(&a, &a), hierarchy_depth(&a));
        }
    }
}
