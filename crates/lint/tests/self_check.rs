//! The workspace must lint clean against its own conventions:
//!
//! * R1–R7 (token rules) — every finding fixed or suppressed with a
//!   `why:` justification, as before.
//! * R8–R10 (semantic rules) — zero findings *newer than the committed
//!   `lint.baseline.json`*: pre-existing sites are grandfathered and
//!   ratchet down, anything fresh fails. This is the same gate CI runs
//!   via `cargo run -p mmp-lint -- check --deny-new`.

use mmp_lint::{
    baseline, lint_source, lint_workspace, render_text, LintConfig, CAST_TRUNCATION,
    FLOAT_REDUCTION, PANIC_PATH,
};
use std::path::Path;

const SEMANTIC: &[&str] = &[PANIC_PATH, FLOAT_REDUCTION, CAST_TRUNCATION];

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn committed_baseline() -> baseline::Baseline {
    let src = std::fs::read_to_string(workspace_root().join("lint.baseline.json"))
        .expect("lint.baseline.json is committed at the workspace root");
    baseline::parse(&src).expect("committed baseline parses")
}

#[test]
fn token_rules_have_zero_unsuppressed_findings() {
    let findings =
        lint_workspace(&workspace_root(), &LintConfig::default()).expect("workspace walk succeeds");
    let live: Vec<_> = findings
        .iter()
        .filter(|f| !f.suppressed && !SEMANTIC.contains(&f.rule.as_str()))
        .cloned()
        .collect();
    assert!(
        live.is_empty(),
        "unsuppressed R1-R7 lint findings in the workspace:\n{}",
        render_text(&live, true)
    );
    // The walk must actually have covered the tree — a silent empty walk
    // would make this test vacuous.
    assert!(
        findings.iter().any(|f| f.suppressed && f.why.is_some()),
        "expected the workspace's justified suppressions to be reported"
    );
}

#[test]
fn workspace_has_zero_findings_newer_than_the_baseline() {
    let mut findings =
        lint_workspace(&workspace_root(), &LintConfig::default()).expect("workspace walk succeeds");
    baseline::mark(&mut findings, &committed_baseline());
    let new: Vec<_> = findings
        .iter()
        .filter(|f| !f.suppressed && !f.baselined)
        .cloned()
        .collect();
    assert!(
        new.is_empty(),
        "findings not covered by lint.baseline.json (fix them, why-note \
         them, or — only when a PR deliberately introduces a rule — \
         regenerate with `mmp-lint check --update-baseline`):\n{}",
        render_text(&new, true)
    );
}

#[test]
fn the_baseline_is_not_inflated() {
    // Every baseline slot must be consumed by a real finding: a stale
    // entry for fixed code would let a regression of the same key slip
    // back in unnoticed.
    let findings =
        lint_workspace(&workspace_root(), &LintConfig::default()).expect("workspace walk succeeds");
    let current = baseline::compute(&findings);
    let committed = committed_baseline();
    let stale: Vec<String> = committed
        .entries
        .iter()
        .filter(|(key, committed_n)| {
            current.entries.get(*key).copied().unwrap_or(0) < **committed_n
        })
        .map(|((rule, path, item, kind), n)| format!("{rule} {path} {item} {kind} x{n}"))
        .collect();
    assert!(
        stale.is_empty(),
        "lint.baseline.json grandfathers more findings than exist — \
         regenerate with `mmp-lint check --update-baseline`:\n{}",
        stale.join("\n")
    );
}

#[test]
fn injected_violations_are_new_against_the_committed_baseline() {
    // Acceptance check for the ratchet: a fresh unwrap in crates/serve
    // and a fresh .sum::<f64>() in crates/analytic must come out as NEW
    // even with the committed baseline applied.
    let base = committed_baseline();

    let unwrap_src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let mut serve = lint_source(
        "crates/serve/src/injected.rs",
        unwrap_src,
        &LintConfig::default(),
    );
    baseline::mark(&mut serve, &base);
    assert!(
        serve
            .iter()
            .any(|f| f.rule == PANIC_PATH && !f.suppressed && !f.baselined),
        "injected unwrap in crates/serve not reported as new"
    );

    let sum_src = "pub fn total(v: &[f64]) -> f64 {\n    v.iter().sum::<f64>()\n}\n";
    let mut analytic = lint_source(
        "crates/analytic/src/injected.rs",
        sum_src,
        &LintConfig::default(),
    );
    baseline::mark(&mut analytic, &base);
    assert!(
        analytic
            .iter()
            .any(|f| f.rule == FLOAT_REDUCTION && !f.suppressed && !f.baselined),
        "injected .sum::<f64>() in crates/analytic not reported as new"
    );
}

#[test]
fn introducing_a_violation_is_caught() {
    // Acceptance check for the gate itself: the same engine that passes the
    // real tree flags a freshly introduced violation in a decision crate.
    let bad = "fn order(groups: &HashMap<u32, f64>) -> Vec<u32> {\n    let mut ids: Vec<u32> = groups.keys().copied().collect();\n    ids.sort_by(|a, b| groups[a].partial_cmp(&groups[b]).unwrap());\n    ids\n}\n";
    let findings = lint_source("crates/mcts/src/injected.rs", bad, &LintConfig::default());
    let live: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    assert!(
        live.iter().any(|f| f.rule == "hash-order"),
        "injected HashMap not flagged"
    );
    assert!(
        live.iter().any(|f| f.rule == "partial-cmp"),
        "injected partial_cmp not flagged"
    );
    // The same snippet also trips the semantic layer: unwrap and
    // indexing are panic sites in a library crate.
    assert!(
        live.iter()
            .any(|f| f.rule == PANIC_PATH && f.kind == "unwrap"),
        "injected unwrap not flagged as a panic site"
    );
    assert!(
        live.iter()
            .any(|f| f.rule == PANIC_PATH && f.kind == "index"),
        "injected indexing not flagged as a panic site"
    );
}
