#![warn(missing_docs)]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Comparison macro placers (the other columns of Tables II and III).
//!
//! The paper compares against closed-source or heavyweight systems; this
//! crate reimplements each at algorithmic fidelity (DESIGN.md §3):
//!
//! | Paper baseline | Here | Algorithm |
//! |---|---|---|
//! | DREAMPlace \[25\] | [`AnalyticOnly`] | mixed-size quadratic placement, macros snapped legal afterwards |
//! | RePlAce \[10\] | [`ReplaceLike`] | same family, heavier density schedule |
//! | CT \[27\] | [`CtLike`] | per-macro (ungrouped) actor-critic RL, greedy rollout, no MCTS |
//! | MaskPlace \[19\] | [`MaskPlaceLike`] | greedy per-macro placement minimising an incremental-HPWL "wiremask" |
//! | SE placer \[26\] | [`SePlacer`] | simulated evolution: score, select, ripple re-place, hierarchy-aware |
//! | early SA works [6-9,20,36] | [`SaPlacer`] | simulated annealing over grid assignments |
//! | — | [`RandomPlacer`] | availability-weighted random assignment (the calibration policy) |
//!
//! All placers emit a **legal** macro placement through the shared
//! legalization of `mmp-legal`; [`score_hpwl`] then runs the same
//! cells-placement + HPWL measurement for every contender, so comparisons
//! are apples-to-apples.

pub mod analytic_like;
pub mod ct;
pub mod maskplace;
pub mod placer;
pub mod sa;
pub mod se;

pub use analytic_like::{AnalyticOnly, ReplaceLike};
pub use ct::CtLike;
pub use maskplace::MaskPlaceLike;
pub use placer::{score_hpwl, MacroPlacer, RandomPlacer};
pub use sa::SaPlacer;
pub use se::SePlacer;
