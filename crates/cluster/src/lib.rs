#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests and benches may unwrap freely). Justified invariant `expect`s
// carry explicit allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Netlist coarsening for the MMP macro placer.
//!
//! The paper reduces problem complexity by transforming macro *placement*
//! into macro-group *allocation* (Sec. II-A): macros are agglomerated with
//! the score function Γ (Eq. 1) and cells with φ (Eq. 2), both greedy
//! highest-score-first, terminating when every group exceeds one grid cell
//! in area or the best score drops below the threshold ν.
//!
//! The outputs are [`MacroGroup`]s / [`CellGroup`]s plus the
//! [`CoarsenedNetlist`] — the original nets projected onto groups — which is
//! what the RL environment and MCTS operate on.
//!
//! # Example
//!
//! ```
//! use mmp_cluster::{ClusterParams, Coarsener};
//! use mmp_netlist::{Placement, SyntheticSpec};
//!
//! let design = SyntheticSpec::small("x", 8, 0, 8, 60, 90, true, 1).generate();
//! let initial = Placement::initial(&design);
//! let params = ClusterParams::paper(design.region().area() / 256.0);
//! let coarse = Coarsener::new(&params).coarsen(&design, &initial);
//! assert!(coarse.macro_groups().len() <= 8);
//! assert!(!coarse.nets().is_empty());
//! ```

pub mod cell_group;
pub mod coarsen;
pub mod incremental;
pub mod macro_group;
pub mod params;

pub use cell_group::{cluster_cells, CellGroup};
pub use coarsen::{ClusterError, CoarsenedNetlist, Coarsener, GroupNet, GroupRef};
pub use incremental::CoarseHpwlCache;
pub use macro_group::{cluster_macros, MacroGroup};
pub use params::ClusterParams;
