//! Bound-to-bound (B2B) net model assembly.
//!
//! The B2B model (Spindler et al., used by modern quadratic placers)
//! linearises HPWL: every pin of a net connects to the net's two extreme
//! pins on each axis with weights `2 / ((k−1)·|cᵢ − c_b|)`, re-derived from
//! the positions of the previous iterate. Minimising the resulting quadratic
//! reproduces the HPWL value at the linearisation point.

use crate::sparse::Triplets;
use mmp_geom::Point;
use mmp_netlist::{Design, NodeRef};

/// Placement axis selector (x and y systems are independent, as the paper
/// notes for its LP step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Horizontal.
    X,
    /// Vertical.
    Y,
}

impl Axis {
    /// The coordinate of `p` on this axis.
    #[inline]
    pub fn of(self, p: Point) -> f64 {
        match self {
            Axis::X => p.x,
            Axis::Y => p.y,
        }
    }
}

/// Minimum pin separation used in B2B weights, avoiding division blow-up
/// when pins coincide (e.g. the all-at-center initial placement).
const B2B_EPS: f64 = 1e-3;

/// Assembles the quadratic system `A·x = b` for one axis with the B2B net
/// model.
///
/// * `var_of(node)` maps a node to its variable index, or `None` when the
///   node is fixed this solve.
/// * `pos_of(node)` yields every node's current center (used both for B2B
///   weights and as the fixed coordinates).
/// * `n_vars` is the variable count.
///
/// Returns the triplet accumulator (convert with
/// [`Triplets::to_csr`]) and the right-hand side.
pub fn build_system(
    design: &Design,
    axis: Axis,
    var_of: &dyn Fn(NodeRef) -> Option<usize>,
    pos_of: &dyn Fn(NodeRef) -> Point,
    n_vars: usize,
) -> (Triplets, Vec<f64>) {
    let mut a = Triplets::new(n_vars);
    let mut b = vec![0.0; n_vars];

    let mut add_connection = |wi: f64, node_i: NodeRef, off_i: f64, node_j: NodeRef, off_j: f64| {
        let vi = var_of(node_i);
        let vj = var_of(node_j);
        match (vi, vj) {
            (Some(i), Some(j)) => {
                a.add(i, i, wi);
                a.add(j, j, wi);
                a.add(i, j, -wi);
                a.add(j, i, -wi);
                b[i] += wi * (off_j - off_i);
                b[j] += wi * (off_i - off_j);
            }
            (Some(i), None) => {
                let fixed = axis.of(pos_of(node_j)) + off_j;
                a.add(i, i, wi);
                b[i] += wi * (fixed - off_i);
            }
            (None, Some(j)) => {
                let fixed = axis.of(pos_of(node_i)) + off_i;
                a.add(j, j, wi);
                b[j] += wi * (fixed - off_j);
            }
            (None, None) => {}
        }
    };

    for net in design.nets() {
        let k = net.pins.len();
        if k < 2 {
            continue;
        }
        // Current pin coordinates on this axis.
        let coords: Vec<f64> = net
            .pins
            .iter()
            .map(|p| axis.of(pos_of(p.node)) + axis.of(p.offset))
            .collect();
        let (mut lo, mut hi) = (0usize, 0usize);
        for (i, &c) in coords.iter().enumerate() {
            if c < coords[lo] {
                lo = i;
            }
            if c > coords[hi] {
                hi = i;
            }
        }
        let base = net.weight * 2.0 / (k as f64 - 1.0);
        for i in 0..k {
            for &b_idx in &[lo, hi] {
                if i == b_idx {
                    continue;
                }
                // The (lo, hi) pair appears once (skip its mirror).
                if i == lo && b_idx == hi {
                    continue;
                }
                let sep = (coords[i] - coords[b_idx]).abs().max(B2B_EPS);
                let w = base / sep;
                add_connection(
                    w,
                    net.pins[i].node,
                    axis.of(net.pins[i].offset),
                    net.pins[b_idx].node,
                    axis.of(net.pins[b_idx].offset),
                );
            }
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg;
    use mmp_geom::Rect;
    use mmp_netlist::{DesignBuilder, Placement};

    /// One movable macro on a 2-pin net with a fixed pad: the quadratic
    /// minimum is exactly the pad position.
    #[test]
    fn single_movable_snaps_to_fixed_partner() {
        let mut bld = DesignBuilder::new("d", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = bld.add_macro("m", 2.0, 2.0, "");
        let p = bld.add_pad("p", Point::new(30.0, 70.0));
        bld.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::ORIGIN),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = bld.build().unwrap();
        let pl = Placement::initial(&d);
        let var_of = |n: NodeRef| match n {
            NodeRef::Macro(_) => Some(0),
            _ => None,
        };
        let pos_of = |n: NodeRef| match n {
            NodeRef::Macro(id) => pl.macro_center(id),
            NodeRef::Pad(id) => d.pad(id).position,
            NodeRef::Cell(id) => pl.cell_center(id),
        };
        for (axis, want) in [(Axis::X, 30.0), (Axis::Y, 70.0)] {
            let (a, b) = build_system(&d, axis, &var_of, &pos_of, 1);
            let out = cg::solve(&a.to_csr(), &b, &[0.0], 1e-12, 100);
            assert!((out.x[0] - want).abs() < 1e-9, "axis {axis:?}");
        }
    }

    /// Two movables between two fixed pads: minimum spreads them evenly —
    /// and the B2B system must be symmetric.
    #[test]
    fn chain_between_pads_is_solved_and_symmetric() {
        let mut bld = DesignBuilder::new("d", Rect::new(0.0, 0.0, 100.0, 10.0));
        let m0 = bld.add_macro("m0", 1.0, 1.0, "");
        let m1 = bld.add_macro("m1", 1.0, 1.0, "");
        let pl_left = bld.add_pad("pl", Point::new(0.0, 5.0));
        let pl_right = bld.add_pad("pr", Point::new(90.0, 5.0));
        bld.add_net(
            "a",
            [
                (NodeRef::Pad(pl_left), Point::ORIGIN),
                (NodeRef::Macro(m0), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        bld.add_net(
            "b",
            [
                (NodeRef::Macro(m0), Point::ORIGIN),
                (NodeRef::Macro(m1), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        bld.add_net(
            "c",
            [
                (NodeRef::Macro(m1), Point::ORIGIN),
                (NodeRef::Pad(pl_right), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = bld.build().unwrap();
        // Seed positions that make all B2B weights equal: 0, 30, 60, 90.
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m0, Point::new(30.0, 5.0));
        pl.set_macro_center(m1, Point::new(60.0, 5.0));
        let var_of = |n: NodeRef| match n {
            NodeRef::Macro(id) => Some(id.index()),
            _ => None,
        };
        let pos_of = |n: NodeRef| match n {
            NodeRef::Macro(id) => pl.macro_center(id),
            NodeRef::Pad(id) => d.pad(id).position,
            NodeRef::Cell(id) => pl.cell_center(id),
        };
        let (a, b) = build_system(&d, Axis::X, &var_of, &pos_of, 2);
        let csr = a.to_csr();
        assert!(csr.is_symmetric(1e-12));
        let out = cg::solve(&csr, &b, &[0.0, 0.0], 1e-12, 100);
        // With equal weights the chain equilibrium is at 30 and 60.
        assert!((out.x[0] - 30.0).abs() < 1e-6, "got {}", out.x[0]);
        assert!((out.x[1] - 60.0).abs() < 1e-6, "got {}", out.x[1]);
    }

    /// Pins on the same node cancel: a net entirely inside one node adds no
    /// net force.
    #[test]
    fn intra_node_net_contributes_nothing() {
        let mut bld = DesignBuilder::new("d", Rect::new(0.0, 0.0, 10.0, 10.0));
        let m = bld.add_macro("m", 4.0, 4.0, "");
        bld.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::new(-1.0, 0.0)),
                (NodeRef::Macro(m), Point::new(1.0, 0.0)),
            ],
            1.0,
        )
        .unwrap();
        let d = bld.build().unwrap();
        let pl = Placement::initial(&d);
        let var_of = |n: NodeRef| match n {
            NodeRef::Macro(_) => Some(0),
            _ => None,
        };
        let pos_of = |n: NodeRef| match n {
            NodeRef::Macro(id) => pl.macro_center(id),
            NodeRef::Pad(id) => d.pad(id).position,
            NodeRef::Cell(id) => pl.cell_center(id),
        };
        let (a, b) = build_system(&d, Axis::X, &var_of, &pos_of, 1);
        let csr = a.to_csr();
        // Diagonal cancels to zero and rhs is zero: no force.
        assert_eq!(csr.get(0, 0), 0.0);
        assert_eq!(b[0], 0.0);
    }

    /// Multi-pin nets: every pin couples to both extremes; the system stays
    /// symmetric and positive on the diagonal.
    #[test]
    fn multi_pin_net_system_is_well_formed() {
        let mut bld = DesignBuilder::new("d", Rect::new(0.0, 0.0, 100.0, 100.0));
        let ms: Vec<_> = (0..5)
            .map(|i| bld.add_macro(format!("m{i}"), 1.0, 1.0, ""))
            .collect();
        bld.add_net(
            "n",
            ms.iter().map(|&m| (NodeRef::Macro(m), Point::ORIGIN)),
            1.0,
        )
        .unwrap();
        let d = bld.build().unwrap();
        let mut pl = Placement::initial(&d);
        for (i, &m) in ms.iter().enumerate() {
            pl.set_macro_center(m, Point::new(10.0 * i as f64, 50.0));
        }
        let var_of = |n: NodeRef| match n {
            NodeRef::Macro(id) => Some(id.index()),
            _ => None,
        };
        let pos_of = |n: NodeRef| match n {
            NodeRef::Macro(id) => pl.macro_center(id),
            NodeRef::Pad(id) => d.pad(id).position,
            NodeRef::Cell(id) => pl.cell_center(id),
        };
        let (a, _b) = build_system(&d, Axis::X, &var_of, &pos_of, 5);
        let csr = a.to_csr();
        assert!(csr.is_symmetric(1e-12));
        for i in 0..5 {
            assert!(csr.get(i, i) > 0.0, "diag {i} must be positive");
        }
        // Middle pins couple only to the extremes: pin 2 has no edge to 1.
        assert_eq!(csr.get(2, 1), 0.0);
        assert!(csr.get(2, 0) < 0.0);
        assert!(csr.get(2, 4) < 0.0);
    }
}
