//! Host crate for the workspace integration tests; see `tests/tests/`.
