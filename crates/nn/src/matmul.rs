//! Packed, register-tiled single-precision matrix multiplication — the
//! compute kernel behind conv (im2col) and linear layers.
//!
//! # Summation-order contract
//!
//! Every kernel in this module computes each output element `c[i,j]` as a
//! **single f32 accumulator** over the products `a[i,kk] · b[kk,j]` in
//! **strictly ascending `kk`**, then adds the finished accumulator to the
//! caller's `c[i,j]` exactly once. No pairwise trees, no lane-interleaved
//! partial sums, no blocking over `k` that would flush intermediate totals
//! into `c`. Because output elements are independent of each other, any
//! tiling of the `(i, j)` space — including the production 4×8 register
//! tile, the runtime-sized tiles used by the proptests, and any disjoint
//! row partition a thread pool might apply — produces **bitwise identical**
//! results to the scalar [`reference`] kernels. The SIMD speedup comes from
//! mapping vector lanes across output *columns* (a broadcast-saxpy form),
//! which keeps each element's sum serial and therefore order-exact.
//!
//! The tiled kernels pack operands into k-major panels first:
//! `a` into `MR`-row panels (`ap[kk·MR + r]`) and `b` into `NR`-column
//! panels (`bp[kk·NR + l]`), so the microkernel streams both with unit
//! stride and holds the full `MR×NR` accumulator tile in registers across
//! the entire `k` loop.

use std::cell::RefCell;

/// Rows per register tile of the production microkernel.
const MR: usize = 4;
/// Columns (SIMD lanes) per register tile of the production microkernel.
const NR: usize = 8;

/// Problems with fewer multiply-adds than this go straight to the scalar
/// [`reference`] kernels: packing overhead dominates below it, and the
/// summation-order contract makes the dispatch invisible bitwise.
const SMALL_FLOPS: usize = 1024;

/// Scalar reference kernels implementing the module's summation-order
/// contract directly.
///
/// These are the semantics the tiled kernels are proptest-verified against
/// (bitwise), and the baseline the `bench compute` bin measures scalar
/// throughput with.
pub mod reference {
    /// `c += a · b` (`a` is `m×k`, `b` is `k×n`, `c` is `m×n`, row-major)
    /// in the documented summation order.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths do not match the dimensions.
    pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        assert_eq!(a.len(), m * k, "lhs size mismatch");
        assert_eq!(b.len(), k * n, "rhs size mismatch");
        assert_eq!(c.len(), m * n, "output size mismatch");
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let mut acc = 0.0f32;
                for (kk, av) in a_row.iter().enumerate() {
                    acc += av * b[kk * n + j];
                }
                c[i * n + j] += acc;
            }
        }
    }

    /// `c += aᵀ · b` (`a` stored `k×m`, `b` is `k×n`, `c` is `m×n`) in the
    /// documented summation order.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths do not match the dimensions.
    pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        assert_eq!(a.len(), k * m, "lhs size mismatch");
        assert_eq!(b.len(), k * n, "rhs size mismatch");
        assert_eq!(c.len(), m * n, "output size mismatch");
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[kk * m + i] * b[kk * n + j];
                }
                c[i * n + j] += acc;
            }
        }
    }

    /// `c += a · bᵀ` (`a` is `m×k`, `b` stored `n×k`, `c` is `m×n`) in the
    /// documented summation order.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths do not match the dimensions.
    pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        assert_eq!(a.len(), m * k, "lhs size mismatch");
        assert_eq!(b.len(), n * k, "rhs size mismatch");
        assert_eq!(c.len(), m * n, "output size mismatch");
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                c[i * n + j] += acc;
            }
        }
    }
}

/// The shared signature of every GEMM entry point in this module, so
/// layers can select a kernel kind with one fn-pointer assignment.
pub type Gemm = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);

/// How the lhs operand is laid out in memory, telling the packer where
/// `a[i, kk]` lives.
#[derive(Clone, Copy)]
enum LhsLayout {
    /// `a[i, kk] = a[i·k + kk]` (`m×k` row-major).
    RowMajor,
    /// `a[i, kk] = a[kk·m + i]` (`k×m` row-major, i.e. a transposed use).
    Transposed,
}

/// How the rhs operand is laid out in memory, telling the packer where
/// `b[kk, j]` lives.
#[derive(Clone, Copy)]
enum RhsLayout {
    /// `b[kk, j] = b[kk·n + j]` (`k×n` row-major).
    RowMajor,
    /// `b[kk, j] = b[j·k + kk]` (`n×k` row-major, i.e. a transposed use).
    Transposed,
}

struct PackScratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

thread_local! {
    /// Per-thread packing panels, reused across calls so the hot inference
    /// path performs no heap allocation after warm-up. Padded lanes of a
    /// partial tile are never read, so stale contents cannot leak into
    /// results.
    static SCRATCH: RefCell<PackScratch> = const {
        RefCell::new(PackScratch { a: Vec::new(), b: Vec::new() })
    };
}

/// Packs the `b` panel for column block `j0..j0+nr` into `bp` as
/// `bp[kk·NR + l] = b[kk, j0+l]`; lanes `l >= nr` are left untouched (and
/// never read).
fn pack_rhs(
    b: &[f32],
    bp: &mut [f32],
    layout: RhsLayout,
    k: usize,
    n: usize,
    j0: usize,
    nr: usize,
) {
    match layout {
        RhsLayout::RowMajor => {
            for kk in 0..k {
                let src = &b[kk * n + j0..kk * n + j0 + nr];
                bp[kk * NR..kk * NR + nr].copy_from_slice(src);
            }
        }
        RhsLayout::Transposed => {
            for (l, col) in b.chunks_exact(k).skip(j0).take(nr).enumerate() {
                for (kk, &v) in col.iter().enumerate() {
                    bp[kk * NR + l] = v;
                }
            }
        }
    }
}

/// Packs the `a` panel for row block `i0..i0+mr` into `ap` as
/// `ap[kk·MR + r] = a[i0+r, kk]`; rows `r >= mr` are left untouched (and
/// never read).
fn pack_lhs(
    a: &[f32],
    ap: &mut [f32],
    layout: LhsLayout,
    m: usize,
    k: usize,
    i0: usize,
    mr: usize,
) {
    match layout {
        LhsLayout::RowMajor => {
            for (r, row) in a.chunks_exact(k).skip(i0).take(mr).enumerate() {
                for (kk, &v) in row.iter().enumerate() {
                    ap[kk * MR + r] = v;
                }
            }
        }
        LhsLayout::Transposed => {
            for kk in 0..k {
                let src = &a[kk * m + i0..kk * m + i0 + mr];
                ap[kk * MR..kk * MR + mr].copy_from_slice(src);
            }
        }
    }
}

/// Full-tile microkernel: `MR×NR` accumulators held in registers across the
/// whole `k` loop, vector lanes across the `NR` output columns. Each
/// accumulator is a plain ascending-`k` serial sum, so the result is
/// bitwise identical to the scalar reference.
#[inline]
fn microkernel_full(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    c: &mut [f32],
    i0: usize,
    j0: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let av = &ap[kk * MR..kk * MR + MR];
        let bv = &bp[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let ar = av[r];
            for (l, b_lane) in bv.iter().enumerate() {
                acc[r][l] += ar * b_lane;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let c_row = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
        for (cv, av) in c_row.iter_mut().zip(acc_row) {
            *cv += av;
        }
    }
}

/// Partial-tile microkernel for the `m % MR` / `n % NR` edges: same
/// per-element ascending-`k` accumulation, only over the live lanes.
#[allow(clippy::too_many_arguments)] // a microkernel takes panels + tile coordinates, nothing to group
fn microkernel_edge(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    c: &mut [f32],
    i0: usize,
    j0: usize,
    n: usize,
    mr: usize,
    nr: usize,
) {
    for r in 0..mr {
        for l in 0..nr {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += ap[kk * MR + r] * bp[kk * NR + l];
            }
            c[(i0 + r) * n + j0 + l] += acc;
        }
    }
}

/// Shared tiled driver: packs `b` once into k-major `NR`-wide panels, then
/// streams `MR`-row packed panels of `a` through the register microkernel.
#[allow(clippy::too_many_arguments)] // the three public GEMM signatures plus two layout selectors
fn gemm_tiled(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    lhs: LhsLayout,
    rhs: RhsLayout,
) {
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let n_blocks = n.div_ceil(NR);
        let b_len = n_blocks * k * NR;
        if s.b.len() < b_len {
            s.b.resize(b_len, 0.0);
        }
        if s.a.len() < k * MR {
            s.a.resize(k * MR, 0.0);
        }
        let PackScratch { a: ap, b: bp } = &mut *s;
        for jb in 0..n_blocks {
            let j0 = jb * NR;
            let nr = NR.min(n - j0);
            pack_rhs(
                b,
                &mut bp[jb * k * NR..(jb + 1) * k * NR],
                rhs,
                k,
                n,
                j0,
                nr,
            );
        }
        let mut i0 = 0;
        while i0 < m {
            let mr = MR.min(m - i0);
            pack_lhs(a, ap, lhs, m, k, i0, mr);
            for jb in 0..n_blocks {
                let j0 = jb * NR;
                let nr = NR.min(n - j0);
                let panel = &bp[jb * k * NR..(jb + 1) * k * NR];
                if mr == MR && nr == NR {
                    microkernel_full(ap, panel, k, c, i0, j0, n);
                } else {
                    microkernel_edge(ap, panel, k, c, i0, j0, n, mr, nr);
                }
            }
            i0 += mr;
        }
    });
}

/// `c += a · b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all
/// row-major.
///
/// Packed 4×8 register-tiled kernel; bitwise identical to
/// [`reference::matmul`] (see the module docs for the summation-order
/// contract). Small problems dispatch to the reference kernel directly.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "output size mismatch");
    if m * k * n <= SMALL_FLOPS {
        reference::matmul(a, b, c, m, k, n);
        return;
    }
    gemm_tiled(a, b, c, m, k, n, LhsLayout::RowMajor, RhsLayout::RowMajor);
}

/// `c += aᵀ · b` where `a` is `k×m` (transposed use), `b` is `k×n`,
/// `c` is `m×n`.
///
/// Same packed kernel as [`matmul`] — only the panel packing differs —
/// and bitwise identical to [`reference::matmul_at_b`].
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "output size mismatch");
    if m * k * n <= SMALL_FLOPS {
        reference::matmul_at_b(a, b, c, m, k, n);
        return;
    }
    gemm_tiled(a, b, c, m, k, n, LhsLayout::Transposed, RhsLayout::RowMajor);
}

/// `c += a · bᵀ` where `a` is `m×k`, `b` is `n×k`, `c` is `m×n`.
///
/// Packing `b`'s rows into k-major panels turns the per-output dot products
/// of the scalar form into the same broadcast-saxpy microkernel as
/// [`matmul`]; bitwise identical to [`reference::matmul_a_bt`].
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), n * k, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "output size mismatch");
    if m * k * n <= SMALL_FLOPS {
        reference::matmul_a_bt(a, b, c, m, k, n);
        return;
    }
    gemm_tiled(a, b, c, m, k, n, LhsLayout::RowMajor, RhsLayout::Transposed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Independent high-precision oracle: accumulates in f64 to bound the
    /// f32 kernels' rounding error.
    fn naive_f64(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += f64::from(a[i * k + kk]) * f64::from(b[kk * n + j]);
                }
            }
        }
        c
    }

    /// Magnitude scale for error bounds: Σ|a[i,kk]·b[kk,j]| per element.
    fn abs_scale(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += (a[i * k + kk] * b[kk * n + j]).abs();
                }
            }
        }
        c
    }

    /// Runtime-tiled kernel with arbitrary `(mr, nr)` tile sizes and the
    /// same per-element ascending-k accumulation — used to prove the
    /// summation-order contract holds at *any* lane count, not just the
    /// production 4×8 tile.
    #[allow(clippy::too_many_arguments)] // the GEMM signature plus the two tile sizes under test
    fn gemm_any_tile(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        mr_tile: usize,
        nr_tile: usize,
    ) {
        let mut j0 = 0;
        while j0 < n {
            let nr = nr_tile.min(n - j0);
            // Pack b panel k-major at this tile width.
            let mut bp = vec![0.0f32; k * nr];
            for kk in 0..k {
                bp[kk * nr..(kk + 1) * nr].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nr]);
            }
            let mut i0 = 0;
            while i0 < m {
                let mr = mr_tile.min(m - i0);
                let mut acc = vec![0.0f32; mr * nr];
                for kk in 0..k {
                    for r in 0..mr {
                        let ar = a[(i0 + r) * k + kk];
                        for l in 0..nr {
                            acc[r * nr + l] += ar * bp[kk * nr + l];
                        }
                    }
                }
                for r in 0..mr {
                    for l in 0..nr {
                        c[(i0 + r) * n + j0 + l] += acc[r * nr + l];
                    }
                }
                i0 += mr;
            }
            j0 += nr;
        }
    }

    fn lcg_data(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn small_known_product() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulates_into_c() {
        let a = [1.0];
        let b = [2.0];
        let mut c = vec![10.0];
        matmul(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn dimension_check() {
        let mut c = vec![0.0; 4];
        matmul(&[0.0; 3], &[0.0; 4], &mut c, 2, 2, 2);
    }

    #[test]
    fn large_shapes_hit_the_tiled_path_and_match_reference_bitwise() {
        // Big enough to clear SMALL_FLOPS with full tiles and edges in
        // both dimensions (m % MR != 0, n % NR != 0).
        let (m, k, n) = (13, 67, 29);
        let a = lcg_data(1, m * k);
        let b = lcg_data(2, k * n);
        let mut c_ref = lcg_data(3, m * n);
        let mut c_tiled = c_ref.clone();
        reference::matmul(&a, &b, &mut c_ref, m, k, n);
        matmul(&a, &b, &mut c_tiled, m, k, n);
        for (x, y) in c_tiled.iter().zip(&c_ref) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tiled kernels are bitwise-identical to the scalar reference
        /// under the documented summation order, for all three operand
        /// layouts, including accumulation into a non-zero `c`.
        #[test]
        fn tiled_matches_reference_bitwise(
            m in 1usize..12, k in 1usize..70, n in 1usize..20,
            seed in 0u64..1000,
        ) {
            let a = lcg_data(seed, m * k);
            let b = lcg_data(seed ^ 0x9e3779b97f4a7c15, k * n);
            let c0 = lcg_data(seed ^ 0xdeadbeef, m * n);

            let mut want = c0.clone();
            reference::matmul(&a, &b, &mut want, m, k, n);
            let mut c = c0.clone();
            matmul(&a, &b, &mut c, m, k, n);
            for (x, y) in c.iter().zip(&want) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }

            // aᵀ · b with a stored transposed.
            let mut at = vec![0.0; k * m];
            for i in 0..m { for kk in 0..k { at[kk * m + i] = a[i * k + kk]; } }
            let mut want2 = c0.clone();
            reference::matmul_at_b(&at, &b, &mut want2, m, k, n);
            let mut c2 = c0.clone();
            matmul_at_b(&at, &b, &mut c2, m, k, n);
            for (x, y) in want2.iter().zip(&want) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "reference layouts disagree");
            }
            for (x, y) in c2.iter().zip(&want2) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }

            // a · bᵀ with b stored transposed.
            let mut bt = vec![0.0; n * k];
            for kk in 0..k { for j in 0..n { bt[j * k + kk] = b[kk * n + j]; } }
            let mut want3 = c0.clone();
            reference::matmul_a_bt(&a, &bt, &mut want3, m, k, n);
            let mut c3 = c0.clone();
            matmul_a_bt(&a, &bt, &mut c3, m, k, n);
            for (x, y) in want3.iter().zip(&want) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "reference layouts disagree");
            }
            for (x, y) in c3.iter().zip(&want3) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// Any lane count / tile size yields the same bits: the contract is
        /// a property of the per-element summation order, not of the 4×8
        /// production tile.
        #[test]
        fn any_tile_size_is_bitwise_identical(
            m in 1usize..10, k in 1usize..50, n in 1usize..18,
            seed in 0u64..1000,
        ) {
            let a = lcg_data(seed, m * k);
            let b = lcg_data(seed ^ 0xabcdef, k * n);
            let mut want = vec![0.0f32; m * n];
            reference::matmul(&a, &b, &mut want, m, k, n);
            for &(mr, nr) in &[(1usize, 1usize), (1, 4), (2, 8), (4, 8), (8, 16), (3, 5)] {
                let mut c = vec![0.0f32; m * n];
                gemm_any_tile(&a, &b, &mut c, m, k, n, mr, nr);
                for (x, y) in c.iter().zip(&want) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "tile {}x{}", mr, nr);
                }
            }
        }

        /// Cross-check against an independent f64 oracle with a tight
        /// magnitude-scaled (ulp-level) bound — per-element error of an
        /// ascending-k f32 sum is at most ~k ulps of the absolute-value
        /// scale, far tighter than the old fixed `1e-3` tolerance.
        #[test]
        fn reference_is_ulp_close_to_f64_oracle(
            m in 1usize..8, k in 1usize..70, n in 1usize..8,
            seed in 0u64..1000,
        ) {
            let a = lcg_data(seed, m * k);
            let b = lcg_data(seed ^ 0x5bd1e995, k * n);
            let oracle = naive_f64(&a, &b, m, k, n);
            let scale = abs_scale(&a, &b, m, k, n);
            let mut c = vec![0.0f32; m * n];
            reference::matmul(&a, &b, &mut c, m, k, n);
            for ((x, y), s) in c.iter().zip(&oracle).zip(&scale) {
                let bound = f64::from(k as f32 * f32::EPSILON * s.max(f32::MIN_POSITIVE));
                prop_assert!(
                    (f64::from(*x) - y).abs() <= bound,
                    "err {} > bound {}", (f64::from(*x) - y).abs(), bound
                );
            }
        }
    }
}
