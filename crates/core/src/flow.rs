//! Algorithm 1: preprocess → pre-train → MCTS → legalize → place cells.

use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
use mmp_geom::GridIndex;
use mmp_legal::MacroLegalizer;
use mmp_mcts::{place_ensemble, EnsembleConfig, MctsConfig, MctsPlacer, SearchStats};
use mmp_netlist::{Design, Placement};
use mmp_rl::{Agent, Trainer, TrainerConfig, TrainingHistory};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Full-flow configuration. `fast(ζ)` gives laptop-scale settings used by
/// tests; `paper()` the published ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// RL pre-training settings (grid ζ, network, episodes, reward).
    pub trainer: TrainerConfig,
    /// MCTS settings (c, γ explorations).
    pub mcts: MctsConfig,
    /// Independent parallel MCTS runs (1 = the paper's single search;
    /// more runs diversify priors per worker and keep the best result).
    pub ensemble_runs: usize,
    /// Final cell-placement effort.
    pub final_placer: GlobalPlacerConfig,
}

impl PlacerConfig {
    /// The paper's configuration: ζ = 16, Table I network, c = 1.05.
    pub fn paper() -> Self {
        PlacerConfig {
            trainer: TrainerConfig::paper(),
            mcts: MctsConfig::default(),
            ensemble_runs: 1,
            final_placer: GlobalPlacerConfig::quality(),
        }
    }

    /// Laptop-scale configuration over a ζ×ζ grid: tiny network, short
    /// training, shallow search, fast final placement.
    pub fn fast(zeta: usize) -> Self {
        let mut trainer = TrainerConfig::tiny(zeta);
        // The coarse reward is only informative when cell groups carry real
        // positions, so the prototyping placement stays on even at laptop
        // scale.
        trainer.prototype_placement = true;
        PlacerConfig {
            trainer,
            mcts: MctsConfig {
                explorations: 16,
                ..MctsConfig::default()
            },
            ensemble_runs: 1,
            final_placer: GlobalPlacerConfig::fast(),
        }
    }

    /// The benchmark-harness configuration: the paper's flow (full
    /// legalize-and-place reward, prototyping placement) at a budget that
    /// runs in seconds per scaled circuit and reproduces the paper's
    /// quality ordering against the baselines.
    pub fn bench(zeta: usize) -> Self {
        let mut cfg = PlacerConfig::fast(zeta);
        cfg.trainer.coarse_eval = false;
        cfg.trainer.episodes = 400;
        cfg.trainer.update_every = 10;
        cfg.trainer.calibration_episodes = 20;
        cfg.mcts.explorations = 500;
        cfg
    }
}

/// Wall-clock spent per stage (Table IV reports the MCTS stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Preprocessing: prototyping placement + clustering.
    pub preprocess: Duration,
    /// RL pre-training.
    pub training: Duration,
    /// MCTS placement optimization.
    pub mcts: Duration,
    /// Legalization + final cell placement.
    pub finalize: Duration,
}

/// Everything the flow returns.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The final legal mixed-size placement.
    pub placement: Placement,
    /// Its full-netlist HPWL (the metric of Tables II/III).
    pub hpwl: f64,
    /// The MCTS grid assignment per macro group.
    pub assignment: Vec<GridIndex>,
    /// RL training curves (Fig. 4 data).
    pub training: TrainingHistory,
    /// MCTS search-effort counters.
    pub mcts_stats: SearchStats,
    /// Per-stage wall-clock (Table IV data).
    pub timings: StageTimings,
    /// The trained agent (reusable for further searches).
    pub agent: Agent,
}

/// Flow-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The design's region cannot host its macros at all (sum of macro
    /// areas exceeds the region).
    MacrosExceedRegion,
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::MacrosExceedRegion => {
                write!(f, "total macro area exceeds the placement region")
            }
        }
    }
}

impl Error for PlaceError {}

/// The end-to-end placer (Algorithm 1).
#[derive(Debug, Clone)]
pub struct MacroPlacer {
    config: PlacerConfig,
}

impl MacroPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        MacroPlacer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Runs the full flow on `design`.
    ///
    /// Designs without movable macros (the `ibm05` case) skip the RL and
    /// MCTS stages and go straight to cell placement.
    ///
    /// # Errors
    ///
    /// [`PlaceError::MacrosExceedRegion`] when the instance is trivially
    /// infeasible.
    pub fn place(&self, design: &Design) -> Result<PlacementResult, PlaceError> {
        if design.total_macro_area() > design.region().area() {
            return Err(PlaceError::MacrosExceedRegion);
        }

        // Stage 1: preprocessing (inside Trainer::new — prototyping
        // placement + grouping + coarsening).
        let t0 = Instant::now();
        let trainer = Trainer::new(design, self.config.trainer.clone());
        let preprocess = t0.elapsed();

        if design.movable_macros().is_empty() {
            // ibm05 path: nothing to allocate.
            let t3 = Instant::now();
            let out = GlobalPlacer::new(self.config.final_placer.clone())
                .place_cells(design, &Placement::initial(design));
            return Ok(PlacementResult {
                placement: out.placement,
                hpwl: out.hpwl,
                assignment: Vec::new(),
                training: TrainingHistory::default(),
                mcts_stats: SearchStats::default(),
                timings: StageTimings {
                    preprocess,
                    finalize: t3.elapsed(),
                    ..StageTimings::default()
                },
                agent: Agent::new(self.config.trainer.net),
            });
        }

        // Stage 2: pre-training by RL.
        let t1 = Instant::now();
        let outcome = trainer.train();
        let training_time = t1.elapsed();

        // Stage 3: placement optimization by MCTS (optionally an ensemble
        // of diversified parallel searches).
        let t2 = Instant::now();
        let search = if self.config.ensemble_runs > 1 {
            place_ensemble(
                &trainer,
                &outcome.agent,
                &outcome.scale,
                &EnsembleConfig {
                    runs: self.config.ensemble_runs,
                    base: self.config.mcts.clone(),
                    ..EnsembleConfig::default()
                },
            )
            .best
        } else {
            MctsPlacer::new(self.config.mcts.clone()).place(
                &trainer,
                &outcome.agent,
                &outcome.scale,
            )
        };
        let mcts_time = t2.elapsed();

        // Stage 4: legalization + final cell placement.
        let t3 = Instant::now();
        let legal = MacroLegalizer::new()
            .legalize(design, trainer.coarse(), &search.assignment, trainer.grid())
            .expect("MCTS assignment covers every group");
        let out = GlobalPlacer::new(self.config.final_placer.clone())
            .place_cells(design, &legal.placement);
        let finalize = t3.elapsed();

        Ok(PlacementResult {
            placement: out.placement,
            hpwl: out.hpwl,
            assignment: search.assignment,
            training: outcome.history,
            mcts_stats: search.stats,
            timings: StageTimings {
                preprocess,
                training: training_time,
                mcts: mcts_time,
                finalize,
            },
            agent: outcome.agent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;

    fn fast_config() -> PlacerConfig {
        let mut cfg = PlacerConfig::fast(4);
        cfg.trainer.episodes = 4;
        cfg.mcts.explorations = 6;
        cfg
    }

    #[test]
    fn full_flow_produces_legal_placement() {
        let d = SyntheticSpec::small("flow", 6, 1, 8, 50, 90, true, 1).generate();
        let result = MacroPlacer::new(fast_config()).place(&d).unwrap();
        assert!(result.hpwl > 0.0);
        assert!(result.placement.macro_overlap_area(&d) < 1e-6);
        assert_eq!(result.training.episode_rewards.len(), 4);
        assert!(result.mcts_stats.explorations > 0);
        assert!(!result.assignment.is_empty());
    }

    #[test]
    fn flow_is_deterministic() {
        let d = SyntheticSpec::small("det", 5, 0, 8, 40, 70, false, 2).generate();
        let placer = MacroPlacer::new(fast_config());
        let a = placer.place(&d).unwrap();
        let b = placer.place(&d).unwrap();
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn zero_macro_design_skips_rl_and_mcts() {
        let d = SyntheticSpec::small("ibm05", 0, 0, 8, 60, 90, false, 3).generate();
        let result = MacroPlacer::new(fast_config()).place(&d).unwrap();
        assert!(result.assignment.is_empty());
        assert_eq!(result.mcts_stats.explorations, 0);
        assert!(result.hpwl > 0.0);
    }

    #[test]
    fn infeasible_design_is_rejected() {
        use mmp_geom::{Point, Rect};
        let mut b = mmp_netlist::DesignBuilder::new("inf", Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_macro("m0", 9.0, 9.0, "");
        b.add_macro("m1", 9.0, 9.0, "");
        let p = b.add_pad("p", Point::new(0.0, 0.0));
        b.add_net(
            "n",
            [
                (mmp_netlist::MacroId(0).into(), Point::ORIGIN),
                (p.into(), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let err = MacroPlacer::new(fast_config()).place(&d).unwrap_err();
        assert_eq!(err, PlaceError::MacrosExceedRegion);
        assert!(err.to_string().contains("macro area"));
    }

    #[test]
    fn ensemble_flow_matches_or_beats_single_search() {
        let d = SyntheticSpec::small("ens_flow", 6, 0, 8, 50, 90, false, 5).generate();
        let mut single_cfg = fast_config();
        single_cfg.mcts.explorations = 8;
        let single = MacroPlacer::new(single_cfg.clone()).place(&d).unwrap();
        let mut ens_cfg = single_cfg;
        ens_cfg.ensemble_runs = 3;
        let ens = MacroPlacer::new(ens_cfg).place(&d).unwrap();
        // Run 0 of the ensemble is the noise-free search, so the ensemble's
        // *assignment-level* score cannot be worse; the final HPWL after
        // cell placement tracks it closely.
        assert!(ens.hpwl <= single.hpwl * 1.05);
        assert!(ens.placement.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn timings_are_recorded() {
        let d = SyntheticSpec::small("time", 5, 0, 8, 40, 70, false, 4).generate();
        let result = MacroPlacer::new(fast_config()).place(&d).unwrap();
        assert!(result.timings.mcts > Duration::ZERO);
        assert!(result.timings.training > Duration::ZERO);
    }
}
