//! Post-MCTS evolutionary swap/relocate refinement.
//!
//! "RL Policy as Macro Regulator Rather than Macro Placer" (arXiv
//! 2412.07167) argues the cheapest quality wins come from *refining* a
//! committed placement, and LaMPlace-style flows wrap their placer in a
//! swap-based evolutionary loop. This module is that loop for the MMP
//! flow: starting from the final legal placement, a seeded generator
//! proposes macro-pair center swaps and single-macro relocations; each
//! proposal is checked for legality (outline inside the region, no macro
//! overlap) and delta-scored with [`IncrementalHpwl`] — O(nets touching
//! the moved macros) per trial — and kept only when it strictly lowers
//! HPWL (greedy-or-better acceptance), so the result never regresses.
//!
//! Determinism: all randomness flows from `SmallRng::seed_from_u64` on
//! [`SwapRefineConfig::seed`]; the wall-clock deadline can only *truncate*
//! the proposal stream, never reorder it.

use mmp_geom::{Point, Rect};
use mmp_netlist::{Design, IncrementalHpwl, MacroId, Placement};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

fn expired(deadline: Option<Instant>) -> bool {
    // mmp-lint: allow(wallclock) why: budget-deadline probe; expiry only truncates the seeded proposal stream, decisions stay deterministic
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Configuration of the swap/relocate refinement stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwapRefineConfig {
    /// Proposal budget: total swap/relocate trials.
    pub moves: usize,
    /// Seed of the proposal stream.
    pub seed: u64,
}

impl Default for SwapRefineConfig {
    fn default() -> Self {
        SwapRefineConfig {
            moves: 256,
            seed: 7,
        }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapRefineOutcome {
    /// The refined (still legal) placement.
    pub placement: Placement,
    /// HPWL before refinement.
    pub hpwl_before: f64,
    /// HPWL after refinement (≤ before: acceptance is strict-improvement).
    pub hpwl_after: f64,
    /// Proposals drawn (≤ the configured budget when the deadline cut in).
    pub proposed: usize,
    /// Proposals accepted.
    pub accepted: usize,
    /// Accepted pair swaps.
    pub swaps: usize,
    /// Accepted relocations.
    pub relocations: usize,
    /// `true` when the stage deadline expired before the proposal budget.
    pub deadline_expired: bool,
}

/// The seeded, budgeted swap/relocate refiner.
#[derive(Debug, Clone, Default)]
pub struct SwapRefiner {
    config: SwapRefineConfig,
}

/// `true` when `r` (macro `id`'s candidate outline) is inside the region
/// and overlaps no other macro; `skip` excludes the swap partner, which is
/// checked against its own candidate outline by the caller.
fn fits(design: &Design, pl: &Placement, id: MacroId, r: &Rect, skip: Option<MacroId>) -> bool {
    if !design.region().contains_rect(r) {
        return false;
    }
    for j in 0..design.macros().len() {
        let jid = MacroId::from_index(j);
        if jid == id || Some(jid) == skip {
            continue;
        }
        if pl.macro_rect(design, jid).overlap_area(r) > 1e-9 {
            return false;
        }
    }
    true
}

impl SwapRefiner {
    /// Creates a refiner with the given configuration.
    pub fn new(config: SwapRefineConfig) -> Self {
        SwapRefiner { config }
    }

    /// Refines a legal placement. Cells are held fixed; only movable-macro
    /// swaps and relocations are tried. `deadline` (the stage's `RunBudget`
    /// slice) truncates the proposal stream when it expires.
    pub fn refine(
        &self,
        design: &Design,
        placement: &Placement,
        deadline: Option<Instant>,
    ) -> SwapRefineOutcome {
        let movable = design.movable_macros();
        let region = *design.region();
        let mut inc = IncrementalHpwl::new(design, placement.clone());
        let hpwl_before = inc.total();
        let mut best = hpwl_before;
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5377);
        let mut proposed = 0usize;
        let mut accepted = 0usize;
        let mut swaps = 0usize;
        let mut relocations = 0usize;
        let mut deadline_expired = false;

        if !movable.is_empty() {
            for _ in 0..self.config.moves {
                if expired(deadline) {
                    deadline_expired = true;
                    break;
                }
                proposed += 1;
                if movable.len() >= 2 && rng.gen_bool(0.5) {
                    // Pair swap: exchange two macros' centers.
                    let a = movable[rng.gen_range(0..movable.len())];
                    let b = movable[rng.gen_range(0..movable.len())];
                    if a == b {
                        continue;
                    }
                    let ca = inc.placement().macro_center(a);
                    let cb = inc.placement().macro_center(b);
                    let ma = design.macro_(a);
                    let mb = design.macro_(b);
                    let ra = Rect::centered_at(cb, ma.width, ma.height);
                    let rb = Rect::centered_at(ca, mb.width, mb.height);
                    if ra.overlap_area(&rb) > 1e-9
                        || !fits(design, inc.placement(), a, &ra, Some(b))
                        || !fits(design, inc.placement(), b, &rb, Some(a))
                    {
                        continue;
                    }
                    inc.swap_macro_centers(a, b);
                    if inc.total() < best {
                        best = inc.total();
                        inc.commit();
                        accepted += 1;
                        swaps += 1;
                    } else {
                        inc.revert();
                    }
                } else {
                    // Relocation: move one macro to a random in-region spot.
                    let id = movable[rng.gen_range(0..movable.len())];
                    let m = design.macro_(id);
                    if m.width > region.width || m.height > region.height {
                        continue;
                    }
                    let to = Point::new(
                        region.x + m.width / 2.0 + rng.gen::<f64>() * (region.width - m.width),
                        region.y + m.height / 2.0 + rng.gen::<f64>() * (region.height - m.height),
                    );
                    let r = Rect::centered_at(to, m.width, m.height);
                    if !fits(design, inc.placement(), id, &r, None) {
                        continue;
                    }
                    inc.move_macro(id, to);
                    if inc.total() < best {
                        best = inc.total();
                        inc.commit();
                        accepted += 1;
                        relocations += 1;
                    } else {
                        inc.revert();
                    }
                }
            }
        }

        SwapRefineOutcome {
            placement: inc.into_placement(),
            hpwl_before,
            hpwl_after: best,
            proposed,
            accepted,
            swaps,
            relocations,
            deadline_expired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::Grid;
    use mmp_netlist::SyntheticSpec;

    fn legal_start(seed: u64) -> (Design, Placement) {
        let d = SyntheticSpec::small("sr", 8, 1, 10, 80, 140, true, seed).generate();
        let grid = Grid::new(*d.region(), 8);
        let coarse =
            mmp_cluster::Coarsener::new(&mmp_cluster::ClusterParams::paper(grid.cell_area()))
                .coarsen(&d, &Placement::initial(&d));
        let assignment: Vec<_> = (0..coarse.macro_groups().len())
            .map(|g| grid.unflatten((9 + 3 * g) % 64))
            .collect();
        let legal = crate::flow::MacroLegalizer::new()
            .legalize(&d, &coarse, &assignment, &grid)
            .unwrap();
        (d, legal.placement)
    }

    #[test]
    fn refinement_never_regresses_and_stays_legal() {
        for seed in [1, 2, 3] {
            let (d, pl) = legal_start(seed);
            let out = SwapRefiner::new(SwapRefineConfig::default()).refine(&d, &pl, None);
            assert!(out.hpwl_after <= out.hpwl_before);
            assert!(
                (out.hpwl_after - out.placement.hpwl(&d)).abs() < 1e-9,
                "reported HPWL must match the returned placement"
            );
            assert!(out.placement.macro_overlap_area(&d) < 1e-6);
            for id in d.movable_macros() {
                assert!(d.region().contains_rect(&out.placement.macro_rect(&d, id)));
            }
            assert_eq!(out.accepted, out.swaps + out.relocations);
            assert_eq!(out.proposed, SwapRefineConfig::default().moves);
        }
    }

    #[test]
    fn refinement_is_deterministic() {
        let (d, pl) = legal_start(4);
        let cfg = SwapRefineConfig {
            moves: 300,
            seed: 11,
        };
        let a = SwapRefiner::new(cfg).refine(&d, &pl, None);
        let b = SwapRefiner::new(cfg).refine(&d, &pl, None);
        assert_eq!(a, b);
        assert_eq!(a.hpwl_after.to_bits(), b.hpwl_after.to_bits());
    }

    #[test]
    fn zero_move_budget_is_a_noop() {
        let (d, pl) = legal_start(5);
        let out = SwapRefiner::new(SwapRefineConfig { moves: 0, seed: 1 }).refine(&d, &pl, None);
        assert_eq!(out.proposed, 0);
        assert_eq!(out.accepted, 0);
        assert_eq!(out.placement, pl);
        assert_eq!(out.hpwl_after.to_bits(), out.hpwl_before.to_bits());
    }

    #[test]
    fn expired_deadline_truncates_but_returns_the_incumbent() {
        let (d, pl) = legal_start(6);
        // mmp-lint: allow(wallclock) why: test constructs an already-expired deadline on purpose
        let past = Some(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let out = SwapRefiner::new(SwapRefineConfig::default()).refine(&d, &pl, past);
        assert!(out.deadline_expired);
        assert_eq!(out.proposed, 0);
        assert_eq!(out.placement, pl);
        assert_eq!(out.hpwl_after.to_bits(), out.hpwl_before.to_bits());
    }

    #[test]
    fn preplaced_macros_never_move() {
        let (d, pl) = legal_start(7);
        let out = SwapRefiner::new(SwapRefineConfig {
            moves: 400,
            seed: 3,
        })
        .refine(&d, &pl, None);
        for id in d.preplaced_macros() {
            assert_eq!(out.placement.macro_center(id), pl.macro_center(id));
        }
    }
}
