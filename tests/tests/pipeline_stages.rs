//! Cross-crate invariants of the pipeline stages.

use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
use mmp_cluster::{ClusterParams, Coarsener};
use mmp_geom::Grid;
use mmp_legal::MacroLegalizer;
use mmp_netlist::{bookshelf, Placement, SyntheticSpec};
use proptest::prelude::*;

fn pipeline_to_legal(seed: u64, macros: usize, cells: usize) -> (mmp_netlist::Design, Placement) {
    let design = SyntheticSpec::small(
        format!("st{seed}"),
        macros,
        1,
        10,
        cells,
        cells * 2,
        true,
        seed,
    )
    .generate();
    let grid = Grid::new(*design.region(), 8);
    let proto = GlobalPlacer::new(GlobalPlacerConfig::fast()).place_mixed(&design);
    let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area())).coarsen(&design, &proto);
    let assignment: Vec<_> = (0..coarse.macro_groups().len())
        .map(|g| grid.unflatten((g * 13 + seed as usize) % grid.cell_count()))
        .collect();
    let legal = MacroLegalizer::new()
        .legalize(&design, &coarse, &assignment, &grid)
        .unwrap();
    (design, legal.placement)
}

#[test]
fn prototyping_then_clustering_then_legalization_is_overlap_free() {
    for seed in [1u64, 2, 3] {
        let (design, placement) = pipeline_to_legal(seed, 9, 90);
        assert!(
            placement.macro_overlap_area(&design) < 1e-6,
            "seed {seed} leaves overlap"
        );
    }
}

#[test]
fn cell_placement_beats_random_cells_and_stays_near_clumped_bound() {
    use rand::{Rng, SeedableRng};
    let (design, legal) = pipeline_to_legal(4, 9, 120);
    // Lower bound: cells stacked on their group centroids (illegal density,
    // artificially short wires).
    let clumped = legal.hpwl(&design);
    let out = GlobalPlacer::new(GlobalPlacerConfig::fast()).place_cells(&design, &legal);
    // Upper bound: uniformly random legal-ish cell spread.
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    let mut random = legal.clone();
    let r = design.region();
    for i in 0..design.cells().len() {
        random.set_cell_center(
            mmp_netlist::CellId::from_index(i),
            mmp_geom::Point::new(
                r.x + rng.gen::<f64>() * r.width,
                r.y + rng.gen::<f64>() * r.height,
            ),
        );
    }
    let random_hpwl = random.hpwl(&design);
    assert!(
        out.hpwl < random_hpwl,
        "placed cells {} must beat random {}",
        out.hpwl,
        random_hpwl
    );
    assert!(
        out.hpwl < clumped * 3.0,
        "placed cells {} should stay within 3x of the clumped lower bound {}",
        out.hpwl,
        clumped
    );
}

#[test]
fn placed_design_survives_bookshelf_roundtrip() {
    let (design, legal) = pipeline_to_legal(5, 8, 80);
    let out = GlobalPlacer::new(GlobalPlacerConfig::fast()).place_cells(&design, &legal);
    let mut buf = Vec::new();
    bookshelf::write(&design, Some(&out.placement), &mut buf).unwrap();
    let (d2, pl2) = bookshelf::read(design.name(), buf.as_slice()).unwrap();
    let pl2 = pl2.unwrap();
    assert!((pl2.hpwl(&d2) - out.hpwl).abs() < 1e-6);
    assert!(pl2.macro_overlap_area(&d2) < 1e-6);
}

#[test]
fn agent_checkpoints_roundtrip_through_serde() {
    use mmp_rl::{Trainer, TrainerConfig};
    let design = SyntheticSpec::small("ck", 6, 0, 8, 50, 90, false, 6).generate();
    let mut cfg = TrainerConfig::tiny(4);
    cfg.episodes = 3;
    let trainer = Trainer::new(&design, cfg);
    let out = trainer.train();
    let (assignment_before, w_before) = trainer.greedy_episode(&out.agent);
    let mut buf = Vec::new();
    out.agent.save(&mut buf).unwrap();
    let reloaded = mmp_rl::Agent::load(buf.as_slice()).unwrap();
    let (assignment_after, w_after) = trainer.greedy_episode(&reloaded);
    assert_eq!(assignment_before, assignment_after);
    assert_eq!(w_before, w_after);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn legalization_is_overlap_free_for_arbitrary_assignments(
        seed in 0u64..1000,
        cell_picks in proptest::collection::vec(0usize..64, 16),
    ) {
        let design =
            SyntheticSpec::small(format!("pp{seed}"), 8, 0, 8, 60, 110, false, seed).generate();
        let grid = Grid::new(*design.region(), 8);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(&design, &Placement::initial(&design));
        let assignment: Vec<_> = (0..coarse.macro_groups().len())
            .map(|g| grid.unflatten(cell_picks[g % cell_picks.len()]))
            .collect();
        let legal = MacroLegalizer::new()
            .legalize(&design, &coarse, &assignment, &grid)
            .unwrap();
        prop_assert!(legal.placement.macro_overlap_area(&design) < 1e-6);
    }
}
