#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests and benches may unwrap freely). Justified invariant `expect`s
// carry explicit allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! `mmp-obs` — the unified observability layer of the MMP workspace.
//!
//! One [`Obs`] handle carries three concerns through the placement flow:
//!
//! * **structured events** — named records with typed key/value
//!   [`Field`]s, scoped by a dotted path (`"legal.global_pass"`), written
//!   to a pluggable [`Sink`] (stderr-pretty, JSONL file, in-memory);
//! * **spans** — RAII [`Span`] guards around `stage` / `iteration`
//!   scopes that emit a `close` event with the elapsed wall-clock and feed
//!   the duration histogram of the same name;
//! * **metrics** — a process-local [`metrics::Metrics`] registry of
//!   counters, gauges and duration histograms, snapshotted at the end of a
//!   run into the JSON run report.
//!
//! # Cost discipline
//!
//! The handle is threaded through hot loops (QP spread iterations, MCTS
//! exploration waves, legalizer rounds), so the *disabled* path must cost
//! next to nothing: [`Obs::off`] is an `Option::None` and every call site
//! reduces to one branch — no formatting, no allocation, no clock read,
//! and **no environment-variable lookups** (the `MMP_TRACE` env-var probe
//! this layer replaced used to take the process env lock once per loop
//! iteration). Call sites that must assemble fields guard on
//! [`Obs::enabled`] first.
//!
//! # Quickstart
//!
//! ```
//! use mmp_obs::{field, Obs, MemorySink};
//!
//! let sink = MemorySink::shared();
//! let obs = Obs::new(Box::new(MemorySink::clone(&sink)));
//! {
//!     let _stage = obs.span("stage.demo");
//!     if obs.enabled() {
//!         obs.event("demo", "tick", &[field("iter", 3u64), field("peak", 1.25)]);
//!     }
//!     obs.count("demo.ticks", 1);
//! }
//! let lines = sink.records();
//! assert!(lines.iter().any(|l| l.contains("\"name\":\"tick\"")));
//! assert_eq!(obs.snapshot().counter("demo.ticks"), Some(1));
//! ```

pub mod metrics;
pub mod sink;

pub use metrics::{HistogramSnapshot, MetricsSnapshot};
pub use sink::{JsonlSink, MemorySink, Sink, StderrSink};

use metrics::Metrics;
use std::sync::Arc;
use std::time::Instant;

/// One typed key/value pair attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (stable identifier, `snake_case`).
    pub key: &'static str,
    /// Field value.
    pub value: FieldValue,
}

/// The value of a [`Field`]. Numeric variants never allocate, so building
/// a field slice on the stack is free of heap traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (allocates — prefer the numeric variants in loops).
    Str(String),
}

/// Builds a [`Field`] from anything convertible into a [`FieldValue`].
pub fn field(key: &'static str, value: impl Into<FieldValue>) -> Field {
    Field {
        key,
        value: value.into(),
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

struct Inner {
    /// `None` = metrics-only mode (counters live, no event stream).
    sink: Option<Box<dyn Sink>>,
    metrics: Metrics,
    /// Event timestamps are microseconds since this epoch.
    epoch: Instant,
}

/// The observability handle threaded through the flow.
///
/// Cloning is cheap (an `Arc` bump); every clone feeds the same sink and
/// the same metrics registry. The default handle is **off** and costs one
/// `Option` branch per call.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(off)"),
            Some(i) if i.sink.is_some() => f.write_str("Obs(tracing)"),
            Some(_) => f.write_str("Obs(metrics-only)"),
        }
    }
}

/// Handles compare by identity: two handles are equal when they feed the
/// same registry (or are both off). This keeps configuration structs that
/// carry an `Obs` comparable without pretending sinks have value
/// semantics.
impl PartialEq for Obs {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Obs {
    /// The disabled handle: every call is a no-op behind one branch.
    pub fn off() -> Self {
        Obs::default()
    }

    /// A handle writing events to `sink` and collecting metrics.
    pub fn new(sink: Box<dyn Sink>) -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                sink: Some(sink),
                metrics: Metrics::default(),
                epoch: Instant::now(),
            })),
        }
    }

    /// A handle collecting metrics but emitting no event stream — what the
    /// CLI uses for `--report-json` without `--trace`.
    pub fn metrics_only() -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                sink: None,
                metrics: Metrics::default(),
                epoch: Instant::now(),
            })),
        }
    }

    /// `true` when the handle is live (tracing and/or metrics). Guard
    /// field assembly on this in hot loops.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` when an event sink is attached (events will be recorded).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.sink.is_some())
    }

    /// Emits one structured event. No-op without a sink.
    #[inline]
    pub fn event(&self, scope: &str, name: &str, fields: &[Field]) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                let t_us = inner.epoch.elapsed().as_micros() as u64;
                sink.record(t_us, scope, name, fields);
            }
        }
    }

    /// Opens a span: the returned guard emits a `close` event on drop and
    /// records the elapsed wall-clock in the duration histogram named
    /// `scope`. Disabled handles return an inert guard (no clock read).
    #[inline]
    pub fn span(&self, scope: &'static str) -> Span {
        Span {
            obs: self.clone(),
            scope,
            start: if self.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Adds `delta` to the counter `name`. No-op when disabled.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.count(name, delta);
        }
    }

    /// Sets the gauge `name` to `value`. No-op when disabled.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name, value);
        }
    }

    /// Records `duration` in the histogram `name`. No-op when disabled.
    #[inline]
    pub fn record_duration(&self, name: &'static str, duration: std::time::Duration) {
        if let Some(inner) = &self.inner {
            inner.metrics.record_duration(name, duration);
        }
    }

    /// A point-in-time copy of the metrics registry (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Flushes the sink (JSONL sinks buffer). No-op otherwise.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                sink.flush();
            }
        }
    }
}

/// RAII scope guard produced by [`Obs::span`].
///
/// Dropping the guard emits a `close` event in the span's scope carrying
/// `dur_us`, and records the elapsed time in the duration histogram of the
/// same name.
#[must_use = "a span measures the scope it is alive in; binding it to `_` drops it immediately"]
pub struct Span {
    obs: Obs,
    scope: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// The span's scope path.
    pub fn scope(&self) -> &'static str {
        self.scope
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            self.obs.record_duration(self.scope, elapsed);
            self.obs.event(
                self.scope,
                "close",
                &[field("dur_us", elapsed.as_micros() as u64)],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn off_handle_is_inert_and_cheap() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        assert!(!obs.tracing());
        obs.event("x", "y", &[field("k", 1u64)]);
        obs.count("c", 5);
        obs.gauge("g", 1.5);
        obs.record_duration("d", Duration::from_millis(1));
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        let span = obs.span("s");
        assert!(span.start.is_none(), "no clock read when disabled");
        drop(span);
        obs.flush();
    }

    #[test]
    fn metrics_only_collects_without_tracing() {
        let obs = Obs::metrics_only();
        assert!(obs.enabled());
        assert!(!obs.tracing());
        obs.count("c", 2);
        obs.count("c", 3);
        obs.gauge("g", 4.0);
        obs.record_duration("d", Duration::from_micros(500));
        let snap = obs.snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauge("g"), Some(4.0));
        let h = snap.histogram("d").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.total >= Duration::from_micros(500));
    }

    #[test]
    fn events_reach_the_sink_with_fields() {
        let sink = MemorySink::shared();
        let obs = Obs::new(Box::new(MemorySink::clone(&sink)));
        assert!(obs.tracing());
        obs.event(
            "legal.global_pass",
            "round",
            &[
                field("round", 2u64),
                field("overlap", 0.125),
                field("oor", true),
                field("note", "re-measured"),
            ],
        );
        let recs = sink.records();
        assert_eq!(recs.len(), 1);
        let line = &recs[0];
        assert!(line.contains("\"scope\":\"legal.global_pass\""));
        assert!(line.contains("\"name\":\"round\""));
        assert!(line.contains("\"round\":2"));
        assert!(line.contains("\"overlap\":0.125"));
        assert!(line.contains("\"oor\":true"));
        assert!(line.contains("\"note\":\"re-measured\""));
    }

    #[test]
    fn span_emits_close_event_and_histogram() {
        let sink = MemorySink::shared();
        let obs = Obs::new(Box::new(MemorySink::clone(&sink)));
        {
            let _s = obs.span("stage.demo");
            std::thread::sleep(Duration::from_millis(2));
        }
        let recs = sink.records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].contains("\"scope\":\"stage.demo\""));
        assert!(recs[0].contains("\"name\":\"close\""));
        assert!(recs[0].contains("dur_us"));
        let snap = obs.snapshot();
        let h = snap.histogram("stage.demo").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= Duration::from_millis(1));
    }

    #[test]
    fn clones_share_the_registry_and_compare_equal() {
        let a = Obs::metrics_only();
        let b = a.clone();
        b.count("shared", 7);
        assert_eq!(a.snapshot().counter("shared"), Some(7));
        assert_eq!(a, b);
        assert_ne!(a, Obs::metrics_only());
        assert_eq!(Obs::off(), Obs::off());
        assert_ne!(a, Obs::off());
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }
}
