//! The daemon itself: admission, the worker pool, retry/quarantine,
//! recovery replay, and graceful shutdown.
//!
//! [`Server`] is a cheap-to-clone handle; [`Server::handle_request`] maps
//! one request line to one response line, so the TCP layer
//! ([`Server::serve`]) is a thin loop and every behavior is testable
//! in-process — which is how the fault matrix drives it.
//!
//! Lifecycle of one job:
//!
//! ```text
//! admit ──▶ journal request ──▶ bounded queue ──▶ worker
//!                                                   │  attempt 1..=max
//!                                                   │  (each under the
//!                                                   │   checkpoint ladder)
//!                    transient error? ◀─────────────┤
//!                      backoff, resume ─────────────▶
//!                                                   │
//!            Ok ──▶ journal report ──▶ Done      permanent/exhausted
//!                                                   └▶ typed error, journaled
//! ```
//!
//! On [`Server::start`] the journal is scanned: completed jobs keep their
//! stored responses, interrupted ones are re-queued with `resume = true`
//! so they continue from their own checkpoints **bitwise-identically**.

use crate::backoff::BackoffConfig;
use crate::clock;
use crate::error::ServeError;
use crate::journal::Journal;
use crate::protocol::{render, DesignSpec, JobDefaults, JobRequest, JobSummary, Op};
use crate::queue::JobQueue;
use mmp_core::{fingerprint, CheckpointPlan, CrashPoint, MacroPlacer, RunReport};
use mmp_netlist::{Design, MacroId, Placement};
use mmp_obs::{MetricsSnapshot, Obs};
use mmp_vfs::{FailPlan, Vfs};
use serde::{Serialize, Value};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// State directory (journal + per-job checkpoint ladders).
    pub state_dir: PathBuf,
    /// Worker threads executing jobs. `0` is accept-only mode: jobs are
    /// admitted and journaled but never run — the fault harness uses it
    /// to freeze a daemon at a precise point.
    pub workers: usize,
    /// Bounded queue capacity (admission control).
    pub queue_capacity: usize,
    /// Attempt cap per job before a transiently-failing job is
    /// quarantined.
    pub max_attempts: usize,
    /// Per-job budget ceiling in milliseconds; requests above it are
    /// rejected as [`ServeError::OverBudget`]. `None` = no ceiling.
    pub max_budget_ms: Option<u64>,
    /// Cap on a design's declared node count (admission control: checked
    /// *before* the design is generated).
    pub max_design_nodes: usize,
    /// Defaults applied where requests are silent.
    pub defaults: JobDefaults,
    /// Retry backoff schedule.
    pub backoff: BackoffConfig,
    /// Reuse trained policies across jobs with the same
    /// (design, config) fingerprint by seeding the new job's ladder with
    /// the donor's `train-done.ckpt`.
    pub policy_cache: bool,
    /// Journal retention: keep at most this many *successfully completed*
    /// jobs on disk; older ones are forgotten oldest-first once the cap
    /// is exceeded. Quarantined and failed jobs are exempt (their records
    /// are the evidence). `None` = unbounded.
    pub keep_completed: Option<usize>,
    /// Dev/test knob mirroring `fault_pool_panic`: inject one disk fault
    /// according to the plan into every filesystem touch the daemon makes
    /// (journal *and* per-job checkpoint ladders share the op counter).
    pub fault_io: Option<FailPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            state_dir: PathBuf::from("mmpd-state"),
            workers: 1,
            queue_capacity: 16,
            max_attempts: 3,
            max_budget_ms: None,
            max_design_nodes: 2_000_000,
            defaults: JobDefaults::default(),
            backoff: BackoffConfig::default(),
            policy_cache: true,
            keep_completed: Some(1024),
            fault_io: None,
        }
    }
}

/// One queued unit of work.
struct QueuedJob {
    id: String,
    request: JobRequest,
    /// Replayed from the journal after a restart: resume from whatever
    /// the job's checkpoint ladder holds.
    recovered: bool,
    enqueued_at: Instant,
}

enum JobState {
    Queued,
    Running,
    /// The stored final response line (success or typed failure).
    Done(String),
}

struct Jobs {
    map: BTreeMap<String, JobState>,
    in_flight: usize,
    /// Request lines currently being handled (parse → response written).
    /// Drain waits these out so a shutdown acknowledgment is always
    /// delivered before the process exits; idle connections don't count.
    active_requests: usize,
}

struct Inner {
    config: ServeConfig,
    journal: Journal,
    queue: JobQueue<QueuedJob>,
    jobs: Mutex<Jobs>,
    /// Signaled on every job state transition (poll/drain wakeups).
    changed: Condvar,
    seq: AtomicU64,
    shutting_down: AtomicBool,
    obs: Obs,
    /// The filesystem chokepoint shared by the journal and every job's
    /// checkpoint ladder (one fault-plan counter spans both).
    vfs: Vfs,
    /// Successfully completed job ids, oldest first — the retention
    /// window trimmed by `keep_completed`.
    completed: Mutex<VecDeque<String>>,
    /// fingerprint → donor `train-done.ckpt` path of a completed job.
    policy_cache: Mutex<BTreeMap<u64, PathBuf>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Where [`Server::serve`] is listening (for the shutdown self-wake).
    listen_addr: Mutex<Option<SocketAddr>>,
}

/// A running daemon. Clones share the same daemon.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

fn ok_state(id: &str, state: &str) -> String {
    render(&Value::Map(vec![
        ("ok".to_owned(), Value::Bool(true)),
        ("id".to_owned(), Value::Str(id.to_owned())),
        ("state".to_owned(), Value::Str(state.to_owned())),
    ]))
}

fn err_line(id: Option<&str>, e: &ServeError) -> String {
    let mut m = vec![("ok".to_owned(), Value::Bool(false))];
    if let Some(id) = id {
        m.push(("id".to_owned(), Value::Str(id.to_owned())));
    }
    m.push(("error".to_owned(), e.to_value()));
    render(&Value::Map(m))
}

fn done_line(
    id: &str,
    report: &RunReport,
    design: &Design,
    placement: &Placement,
    summary: &JobSummary,
) -> String {
    let macros: Vec<Value> = design
        .macros()
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let c = placement.macro_center(MacroId::from_index(i));
            Value::Map(vec![
                ("name".to_owned(), Value::Str(m.name.clone())),
                ("x".to_owned(), Value::F64(c.x)),
                ("y".to_owned(), Value::F64(c.y)),
                ("x_bits".to_owned(), Value::U64(c.x.to_bits())),
                ("y_bits".to_owned(), Value::U64(c.y.to_bits())),
            ])
        })
        .collect();
    render(&Value::Map(vec![
        ("ok".to_owned(), Value::Bool(true)),
        ("id".to_owned(), Value::Str(id.to_owned())),
        ("state".to_owned(), Value::Str("done".to_owned())),
        ("report".to_owned(), report.serialize()),
        ("macros".to_owned(), Value::Seq(macros)),
        ("summary".to_owned(), summary.serialize()),
    ]))
}

impl Server {
    /// Starts a daemon over `config.state_dir`: opens the journal,
    /// replays it (stored reports come back verbatim; interrupted jobs
    /// are re-queued to resume from their checkpoints), and spawns the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] when the state directory is unusable.
    pub fn start(config: ServeConfig) -> Result<Self, ServeError> {
        let vfs = config
            .fault_io
            .clone()
            .map(Vfs::with_plan)
            .unwrap_or_default();
        Self::start_with_vfs(config, vfs)
    }

    /// [`Server::start`] with an explicit filesystem chokepoint. The
    /// torture harness uses this to hand the daemon a recording or
    /// fault-armed [`Vfs`]; `start` derives one from `config.fault_io`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] when the state directory is unusable.
    pub fn start_with_vfs(config: ServeConfig, vfs: Vfs) -> Result<Self, ServeError> {
        let obs = Obs::metrics_only();
        let journal = Journal::open_with(&config.state_dir, vfs.clone(), obs.clone())?;
        let (scanned, _damaged) = journal.scan()?;
        let queue = JobQueue::new(config.queue_capacity);
        let mut jobs = BTreeMap::new();
        let mut max_seq = 0u64;
        let mut replayed = Vec::new();
        let mut done_in_seq_order = Vec::new();
        for job in scanned {
            max_seq = max_seq.max(job.seq);
            match job.report_line {
                Some(line) => {
                    if line.starts_with(r#"{"ok":true"#) {
                        done_in_seq_order.push((job.seq, job.id.clone()));
                    }
                    jobs.insert(job.id, JobState::Done(line));
                }
                None => replayed.push(job),
            }
        }
        // Rebuild the retention window oldest-first so eviction order
        // survives restarts.
        done_in_seq_order.sort();
        let completed: VecDeque<String> = done_in_seq_order.into_iter().map(|(_, id)| id).collect();
        let now = clock::now();
        for job in replayed {
            obs.count("serve.recovered", 1);
            jobs.insert(job.id.clone(), JobState::Queued);
            // Journaled jobs were admitted by a previous daemon life;
            // capacity must not drop them on replay.
            let _ = queue.force_push(QueuedJob {
                id: job.id,
                request: job.request,
                recovered: true,
                enqueued_at: now,
            });
        }
        let server = Server {
            inner: Arc::new(Inner {
                config,
                journal,
                queue,
                jobs: Mutex::new(Jobs {
                    map: jobs,
                    in_flight: 0,
                    active_requests: 0,
                }),
                changed: Condvar::new(),
                seq: AtomicU64::new(max_seq),
                shutting_down: AtomicBool::new(false),
                obs,
                vfs,
                completed: Mutex::new(completed),
                policy_cache: Mutex::new(BTreeMap::new()),
                workers: Mutex::new(Vec::new()),
                listen_addr: Mutex::new(None),
            }),
        };
        // A restarted daemon may come up over a journal larger than its
        // (possibly newly lowered) retention cap; trim before serving.
        server.enforce_retention();
        let mut handles = server.lock_workers();
        for _ in 0..server.inner.config.workers {
            let s = server.clone();
            handles.push(std::thread::spawn(move || s.worker_loop()));
        }
        drop(handles);
        Ok(server)
    }

    fn lock_jobs(&self) -> MutexGuard<'_, Jobs> {
        match self.inner.jobs.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn lock_workers(&self) -> MutexGuard<'_, Vec<JoinHandle<()>>> {
        match self.inner.workers.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// A snapshot of the daemon's metrics registry (the `serve.*`
    /// counters plus anything the flow recorded).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.obs.snapshot()
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    // ----- request handling --------------------------------------------

    /// Maps one request line to one response line (no trailing newline).
    /// Never panics on adversarial input: every failure is a typed
    /// [`ServeError`] on the wire.
    pub fn handle_request(&self, line: &str) -> String {
        let req = match JobRequest::parse(line) {
            Ok(r) => r,
            Err(e) => {
                self.inner.obs.count("serve.rejected", 1);
                return err_line(None, &e);
            }
        };
        match req.op {
            Op::Status => self.status_line(),
            Op::Shutdown => {
                self.initiate_shutdown();
                render(&Value::Map(vec![
                    ("ok".to_owned(), Value::Bool(true)),
                    ("state".to_owned(), Value::Str("shutting-down".to_owned())),
                ]))
            }
            Op::Result => {
                // parse() guarantees the id is present.
                let id = req.id.as_deref().unwrap_or_default();
                self.result_line(id)
            }
            Op::Submit => match self.admit(&req) {
                Ok(id) => self.result_line(&id),
                Err(e) => {
                    self.inner.obs.count("serve.rejected", 1);
                    err_line(req.id.as_deref(), &e)
                }
            },
            Op::Place => match self.admit(&req) {
                Ok(id) => self.wait_for_done(&id),
                Err(e) => {
                    self.inner.obs.count("serve.rejected", 1);
                    err_line(req.id.as_deref(), &e)
                }
            },
        }
    }

    fn status_line(&self) -> String {
        let journal_bytes = self.inner.journal.total_bytes();
        self.inner
            .obs
            .gauge("serve.journal_bytes", journal_bytes as f64);
        let snapshot = self.inner.obs.snapshot();
        let counters = Value::Map(
            snapshot
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::U64(*v)))
                .collect(),
        );
        let g = self.lock_jobs();
        let state = if self.is_shutting_down() {
            "shutting-down"
        } else {
            "running"
        };
        render(&Value::Map(vec![
            ("ok".to_owned(), Value::Bool(true)),
            ("state".to_owned(), Value::Str(state.to_owned())),
            (
                "queued".to_owned(),
                Value::U64(self.inner.queue.len() as u64),
            ),
            ("in_flight".to_owned(), Value::U64(g.in_flight as u64)),
            (
                "capacity".to_owned(),
                Value::U64(self.inner.queue.capacity() as u64),
            ),
            ("journal_bytes".to_owned(), Value::U64(journal_bytes)),
            ("counters".to_owned(), counters),
        ]))
    }

    fn result_line(&self, id: &str) -> String {
        let g = self.lock_jobs();
        match g.map.get(id) {
            Some(JobState::Done(line)) => line.clone(),
            Some(JobState::Running) => ok_state(id, "running"),
            Some(JobState::Queued) => ok_state(id, "queued"),
            None => err_line(Some(id), &ServeError::UnknownJob { id: id.to_owned() }),
        }
    }

    fn wait_for_done(&self, id: &str) -> String {
        let mut g = self.lock_jobs();
        loop {
            match g.map.get(id) {
                Some(JobState::Done(line)) => return line.clone(),
                Some(_) => {}
                None => return err_line(Some(id), &ServeError::UnknownJob { id: id.to_owned() }),
            }
            g = match self.inner.changed.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Admission control: every gate yields a typed rejection, and an
    /// accepted job is journaled *before* it is queued so a crash between
    /// the two replays it rather than losing it.
    fn admit(&self, req: &JobRequest) -> Result<String, ServeError> {
        if self.is_shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        let id = match &req.id {
            Some(id) => id.clone(),
            None => format!("job-{}", self.inner.seq.fetch_add(1, Ordering::SeqCst) + 1),
        };
        {
            let g = self.lock_jobs();
            if g.map.contains_key(&id) {
                // Idempotent resubmission: the job already exists in this
                // daemon (possibly from a previous life); report its
                // current state instead of double-running it.
                return Ok(id);
            }
        }
        if let (Some(requested), Some(max)) = (req.budget_ms, self.inner.config.max_budget_ms) {
            if requested > max {
                return Err(ServeError::OverBudget {
                    requested_ms: requested,
                    max_ms: max,
                });
            }
        }
        let design = req.design.as_ref().ok_or_else(|| ServeError::BadRequest {
            detail: "job has no design".to_owned(),
        })?;
        match design.declared_nodes() {
            Some(n) if n > self.inner.config.max_design_nodes => {
                return Err(ServeError::BadRequest {
                    detail: format!(
                        "design declares {n} nodes; this daemon caps designs at {} nodes",
                        self.inner.config.max_design_nodes
                    ),
                });
            }
            None if matches!(design, DesignSpec::Circuit { .. }) => {
                return Err(ServeError::BadRequest {
                    detail: "unknown circuit name".to_owned(),
                });
            }
            _ => {}
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.journal.record_request(&id, seq, req)?;
        {
            let mut g = self.lock_jobs();
            g.map.insert(id.clone(), JobState::Queued);
        }
        let job = QueuedJob {
            id: id.clone(),
            request: req.clone(),
            recovered: false,
            enqueued_at: clock::now(),
        };
        if self.inner.queue.try_push(job).is_err() {
            // Roll the admission back completely: the job never existed.
            self.inner.journal.forget(&id);
            self.lock_jobs().map.remove(&id);
            return Err(ServeError::QueueFull {
                capacity: self.inner.queue.capacity(),
            });
        }
        self.inner.obs.count("serve.accepted", 1);
        Ok(id)
    }

    // ----- worker side --------------------------------------------------

    fn set_state(&self, id: &str, state: JobState) {
        let mut g = self.lock_jobs();
        match &state {
            JobState::Running => g.in_flight += 1,
            JobState::Done(_) => g.in_flight = g.in_flight.saturating_sub(1),
            JobState::Queued => {}
        }
        g.map.insert(id.to_owned(), state);
        drop(g);
        self.inner.changed.notify_all();
    }

    fn worker_loop(&self) {
        while let Some(job) = self.inner.queue.pop() {
            self.set_state(&job.id, JobState::Running);
            let line = self.run_job(&job);
            // Persist the outcome before announcing it: a daemon killed
            // between the two re-runs the job, which is safe (resume) —
            // the reverse order could answer a client and then lose the
            // answer.
            if let Err(e) = self.inner.journal.record_report(&job.id, &line) {
                let line = err_line(Some(&job.id), &e);
                self.set_state(&job.id, JobState::Done(line));
                continue;
            }
            if line.starts_with(r#"{"ok":true"#) {
                self.inner.obs.count("serve.completed", 1);
                match self.inner.completed.lock() {
                    Ok(mut g) => g.push_back(job.id.clone()),
                    Err(p) => p.into_inner().push_back(job.id.clone()),
                }
            }
            // Trim *before* announcing completion so a client that sees
            // this job done also sees the eviction it triggered.
            self.enforce_retention();
            self.set_state(&job.id, JobState::Done(line));
        }
    }

    /// Trims the journal to `keep_completed` successfully finished jobs,
    /// forgetting the oldest first. Quarantined and failed jobs never
    /// enter the retention window, so their records are kept.
    fn enforce_retention(&self) {
        let Some(keep) = self.inner.config.keep_completed else {
            return;
        };
        loop {
            let evict = {
                let mut g = match self.inner.completed.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if g.len() <= keep {
                    return;
                }
                g.pop_front()
            };
            let Some(id) = evict else { return };
            // Drop any policy-cache entry donated by the evicted job; its
            // ladder is about to vanish from disk.
            let donor = self.inner.journal.train_done_path(&id);
            match self.inner.policy_cache.lock() {
                Ok(mut g) => g.retain(|_, p| p != &donor),
                Err(p) => p.into_inner().retain(|_, p| p != &donor),
            }
            self.inner.journal.forget(&id);
            self.lock_jobs().map.remove(&id);
            self.inner.obs.count("serve.journal_evicted", 1);
        }
    }

    /// Runs one job to its final response line: materialize, then attempt
    /// up to `max_attempts` times under the checkpoint ladder, retrying
    /// transient failures with deterministic backoff.
    fn run_job(&self, job: &QueuedJob) -> String {
        let queue_wait = clock::now().saturating_duration_since(job.enqueued_at);
        let design = match job
            .request
            .design
            .as_ref()
            .ok_or_else(|| ServeError::BadRequest {
                detail: "job has no design".to_owned(),
            })
            .and_then(DesignSpec::materialize)
        {
            Ok(d) => d,
            Err(e) => return err_line(Some(&job.id), &e),
        };
        let base_cfg = job.request.placer_config(&self.inner.config.defaults);
        let fail_attempts = job.request.fault_fail_attempts.unwrap_or(0);
        let ckpt_dir = self.inner.journal.ckpt_dir(&job.id);

        // Trained-policy reuse: an earlier job with the same
        // (design, config) fingerprint already produced `train-done.ckpt`;
        // seed this job's ladder with it and resume, which skips training
        // bitwise-identically (deterministic training would reproduce the
        // exact same agent).
        let fp = fingerprint(&design, &base_cfg);
        let mut policy_reused = false;
        if self.inner.config.policy_cache
            && !job.recovered
            && !self.inner.journal.train_done_path(&job.id).is_file()
        {
            let donor = {
                let cache = match self.inner.policy_cache.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                cache.get(&fp).cloned()
            };
            if let Some(donor) = donor {
                // Best-effort: a vanished/corrupt donor just means a
                // fresh training run, never a failed job.
                policy_reused = self.inner.journal.seed_train_done(&donor, &job.id).is_ok();
            }
        }

        let mut resume = job.recovered || policy_reused;
        let mut attempt = 0usize;
        loop {
            attempt += 1;
            let mut cfg = base_cfg.clone();
            if attempt <= fail_attempts {
                // Harness knob: simulate an environmental failure that
                // clears after `fail_attempts` attempts by injecting a
                // crash right after the first training checkpoint write.
                cfg.fault_crash = Some(CrashPoint::after_train_writes(1));
            }
            let plan = if resume {
                CheckpointPlan::resume(&ckpt_dir)
            } else {
                CheckpointPlan::new(&ckpt_dir)
            };
            let job_obs = Obs::metrics_only();
            let placer = MacroPlacer::new(cfg)
                .with_checkpoints(plan)
                .with_obs(job_obs.clone())
                .with_vfs(self.inner.vfs.clone());
            match placer.place(&design) {
                Ok(result) => {
                    if self.inner.config.policy_cache {
                        let path = self.inner.journal.train_done_path(&job.id);
                        if path.is_file() {
                            let mut cache = match self.inner.policy_cache.lock() {
                                Ok(g) => g,
                                Err(p) => p.into_inner(),
                            };
                            cache.entry(fp).or_insert(path);
                        }
                    }
                    let report = RunReport::new(design.name(), &result, &job_obs.snapshot());
                    let summary = JobSummary {
                        attempts: attempt,
                        queue_wait_ms: queue_wait.as_secs_f64() * 1e3,
                        recovered: job.recovered,
                        recovery_events: result.checkpoint.resumes.clone(),
                        policy_reused,
                    };
                    return done_line(&job.id, &report, &design, &result.placement, &summary);
                }
                Err(e) if e.is_transient() && attempt < self.inner.config.max_attempts => {
                    self.inner.obs.count("serve.retried", 1);
                    std::thread::sleep(self.inner.config.backoff.delay(attempt));
                    // The failed attempt's checkpoints survive; continue
                    // from them instead of starting over.
                    resume = true;
                }
                Err(e) if e.is_transient() => {
                    self.inner.obs.count("serve.quarantined", 1);
                    return err_line(
                        Some(&job.id),
                        &ServeError::Quarantined {
                            id: job.id.clone(),
                            attempts: attempt,
                            last_error: e.to_string(),
                        },
                    );
                }
                Err(e) => {
                    return err_line(Some(&job.id), &ServeError::from_place(&e, attempt));
                }
            }
        }
    }

    // ----- shutdown -----------------------------------------------------

    /// Flips the daemon into drain mode: new admissions are rejected with
    /// [`ServeError::ShuttingDown`]; already-admitted jobs keep running.
    /// Wakes [`Server::serve`] so its accept loop can exit.
    pub fn initiate_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        let addr = match self.inner.listen_addr.lock() {
            Ok(g) => *g,
            Err(p) => *p.into_inner(),
        };
        if let Some(addr) = addr {
            // Self-connect to unblock the accept loop; the accepted
            // connection is dropped immediately.
            let _ = TcpStream::connect(addr);
        }
    }

    /// Graceful shutdown: waits until the queue is empty and no job is in
    /// flight, then closes the queue and joins the workers. Every
    /// admitted job gets its final journaled answer before this returns.
    pub fn drain(self) {
        self.initiate_shutdown();
        let mut g = self.lock_jobs();
        while !self.inner.queue.is_empty() || g.in_flight > 0 || g.active_requests > 0 {
            g = match self.inner.changed.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        drop(g);
        self.finish();
    }

    /// Immediate shutdown for accept-only test servers: closes the queue
    /// without waiting for queued jobs (with zero workers nothing would
    /// ever drain them). Journaled-but-unrun jobs replay on restart —
    /// which is exactly what the kill-recovery scenarios exercise.
    pub fn abort(self) {
        self.initiate_shutdown();
        self.finish();
    }

    fn finish(&self) {
        self.inner.queue.close();
        let handles: Vec<_> = self.lock_workers().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    // ----- transport ----------------------------------------------------

    /// Serves newline-delimited JSON over `listener` until shutdown:
    /// accepts connections, one thread per connection, one response line
    /// per request line. Returns once shutdown is initiated (call
    /// [`Server::drain`] afterwards to finish in-flight jobs).
    ///
    /// # Errors
    ///
    /// Propagates listener-level I/O errors (per-connection errors are
    /// counted as `serve.disconnects` and do not stop the daemon).
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<()> {
        {
            let addr = listener.local_addr()?;
            match self.inner.listen_addr.lock() {
                Ok(mut g) => *g = Some(addr),
                Err(p) => *p.into_inner() = Some(addr),
            }
        }
        for stream in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let server = self.clone();
            std::thread::spawn(move || server.serve_connection(stream));
        }
        Ok(())
    }

    fn serve_connection(&self, stream: TcpStream) {
        let reader = match stream.try_clone() {
            Ok(r) => BufReader::new(r),
            Err(_) => {
                self.inner.obs.count("serve.disconnects", 1);
                return;
            }
        };
        let mut writer = stream;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => {
                    // Client vanished mid-line; any job it submitted
                    // keeps running and its report stays journaled.
                    self.inner.obs.count("serve.disconnects", 1);
                    return;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            self.lock_jobs().active_requests += 1;
            let response = self.handle_request(&line);
            let wrote = writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            {
                let mut g = self.lock_jobs();
                g.active_requests = g.active_requests.saturating_sub(1);
            }
            self.inner.changed.notify_all();
            if wrote.is_err() {
                self.inner.obs.count("serve.disconnects", 1);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::map_get;
    use std::path::Path;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmp-serve-daemon-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(state_dir: &Path, workers: usize) -> ServeConfig {
        ServeConfig {
            state_dir: state_dir.to_path_buf(),
            workers,
            queue_capacity: 8,
            max_attempts: 3,
            max_budget_ms: Some(120_000),
            max_design_nodes: 10_000,
            defaults: JobDefaults {
                zeta: 4,
                episodes: Some(4),
                explorations: Some(6),
                budget: None,
            },
            backoff: BackoffConfig {
                base: std::time::Duration::from_millis(1),
                cap: std::time::Duration::from_millis(4),
            },
            policy_cache: true,
            keep_completed: Some(1024),
            fault_io: None,
        }
    }

    fn submit_line(id: &str, extra: &str) -> String {
        format!(
            r#"{{"op":"submit","id":"{id}","design":{{"spec":[5,0,8,40,70],"seed":1}},"update_every":2{extra}}}"#
        )
    }

    fn poll_done(server: &Server, id: &str) -> Value {
        loop {
            let line = server.handle_request(&format!(r#"{{"op":"result","id":"{id}"}}"#));
            let v = serde_json::parse_value(&line).unwrap();
            match map_get(&v, "state") {
                Some(Value::Str(s)) if s == "done" => return v,
                _ => {
                    if map_get(&v, "ok") == Some(&Value::Bool(false)) {
                        return v;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        }
    }

    fn macro_bits(v: &Value) -> Vec<(u64, u64)> {
        let Some(Value::Seq(ms)) = map_get(v, "macros") else {
            panic!("no macros in {v:?}");
        };
        ms.iter()
            .map(|m| {
                (
                    map_get(m, "x_bits").and_then(Value::as_u64).unwrap(),
                    map_get(m, "y_bits").and_then(Value::as_u64).unwrap(),
                )
            })
            .collect()
    }

    fn report_hpwl_bits(v: &Value) -> u64 {
        map_get(v, "report")
            .and_then(|r| map_get(r, "hpwl"))
            .and_then(Value::as_f64)
            .unwrap()
            .to_bits()
    }

    #[test]
    fn submit_poll_place_and_status_round_trip() {
        let dir = tmp("roundtrip");
        let server = Server::start(config(&dir, 1)).unwrap();
        let line = server.handle_request(&submit_line("j1", ""));
        let v = serde_json::parse_value(&line).unwrap();
        assert_eq!(map_get(&v, "ok"), Some(&Value::Bool(true)));
        let done = poll_done(&server, "j1");
        assert_eq!(map_get(&done, "state"), Some(&Value::Str("done".into())));
        assert!(report_hpwl_bits(&done) != 0);
        assert!(!macro_bits(&done).is_empty());

        // `place` blocks to the same shape of answer.
        let line = server.handle_request(
            r#"{"op":"place","id":"j2","design":{"spec":[5,0,8,40,70],"seed":2},"update_every":2}"#,
        );
        let v = serde_json::parse_value(&line).unwrap();
        assert_eq!(map_get(&v, "state"), Some(&Value::Str("done".into())));

        let status = server.handle_request(r#"{"op":"status"}"#);
        let v = serde_json::parse_value(&status).unwrap();
        assert_eq!(map_get(&v, "state"), Some(&Value::Str("running".into())));
        let counters = map_get(&v, "counters").unwrap();
        assert_eq!(
            map_get(counters, "serve.accepted"),
            Some(&Value::U64(2)),
            "status: {status}"
        );

        // Unknown job and duplicate id behave predictably.
        let line = server.handle_request(r#"{"op":"result","id":"nope"}"#);
        assert!(line.contains("unknown-job"));
        let dup = server.handle_request(&submit_line("j1", ""));
        let v = serde_json::parse_value(&dup).unwrap();
        assert_eq!(map_get(&v, "state"), Some(&Value::Str("done".into())));

        server.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failures_retry_to_a_bitwise_identical_answer() {
        let dir = tmp("retry");
        let mut cfg = config(&dir, 1);
        // Policy reuse would skip training and with it the injected
        // train-stage crash; this test wants both jobs to train fresh.
        cfg.policy_cache = false;
        let server = Server::start(cfg).unwrap();
        // Clean job and a job whose first attempt dies right after the
        // first training checkpoint write.
        server.handle_request(&submit_line("clean", ""));
        server.handle_request(&submit_line("flaky", r#","fault_fail_attempts":1"#));
        let clean = poll_done(&server, "clean");
        let flaky = poll_done(&server, "flaky");
        assert_eq!(map_get(&flaky, "state"), Some(&Value::Str("done".into())));

        let summary = map_get(&flaky, "summary").unwrap();
        assert_eq!(map_get(summary, "attempts"), Some(&Value::U64(2)));
        assert_eq!(
            report_hpwl_bits(&flaky),
            report_hpwl_bits(&clean),
            "retried job must match the clean run bit-for-bit"
        );
        assert_eq!(macro_bits(&flaky), macro_bits(&clean));
        let events = map_get(summary, "recovery_events").unwrap();
        assert!(
            matches!(events, Value::Seq(e) if !e.is_empty()),
            "retry resumes from checkpoints: {flaky:?}"
        );
        let m = server.metrics();
        assert_eq!(m.counters.get("serve.retried"), Some(&1));
        server.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_transients_are_quarantined() {
        let dir = tmp("quarantine");
        let mut cfg = config(&dir, 1);
        cfg.max_attempts = 2;
        cfg.policy_cache = false;
        let server = Server::start(cfg).unwrap();
        server.handle_request(&submit_line("poison", r#","fault_fail_attempts":99"#));
        let v = poll_done(&server, "poison");
        assert_eq!(map_get(&v, "ok"), Some(&Value::Bool(false)));
        let err = map_get(&v, "error").unwrap();
        assert_eq!(
            map_get(err, "kind"),
            Some(&Value::Str("quarantined".into())),
            "{v:?}"
        );
        assert_eq!(map_get(err, "attempts"), Some(&Value::U64(2)));
        let m = server.metrics();
        assert_eq!(m.counters.get("serve.quarantined"), Some(&1));
        assert_eq!(m.counters.get("serve.retried"), Some(&1));
        // The quarantine is journaled: a restarted daemon does not retry
        // the poison job forever.
        server.drain();
        let server = Server::start(config(&dir, 1)).unwrap();
        let line = server.handle_request(r#"{"op":"result","id":"poison"}"#);
        assert!(line.contains("quarantined"), "{line}");
        server.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_gates_reject_with_typed_errors() {
        let dir = tmp("admission");
        let mut cfg = config(&dir, 0);
        cfg.queue_capacity = 1;
        let server = Server::start(cfg).unwrap();

        // Over budget.
        let line = server.handle_request(&submit_line("big", r#","budget_ms":999999999"#));
        assert!(line.contains("over-budget"), "{line}");
        // Oversized design, rejected before generation.
        let line = server.handle_request(
            r#"{"op":"submit","id":"huge","design":{"spec":[100,0,100,1000000,9]}}"#,
        );
        assert!(line.contains("bad-request"), "{line}");
        // Unknown circuit.
        let line =
            server.handle_request(r#"{"op":"submit","id":"ghost","design":{"circuit":"nope99"}}"#);
        assert!(line.contains("bad-request"), "{line}");
        // Queue full (capacity 1, no workers draining it) — and the
        // rejected job is fully rolled back, not half-admitted.
        let line = server.handle_request(&submit_line("q1", ""));
        assert!(line.contains(r#""ok":true"#), "{line}");
        let line = server.handle_request(&submit_line("q2", ""));
        assert!(line.contains("queue-full"), "{line}");
        let line = server.handle_request(r#"{"op":"result","id":"q2"}"#);
        assert!(line.contains("unknown-job"), "rolled back: {line}");
        // Shutting down.
        server.initiate_shutdown();
        let line = server.handle_request(&submit_line("late", ""));
        assert!(line.contains("shutting-down"), "{line}");
        let m = server.metrics();
        assert_eq!(m.counters.get("serve.rejected"), Some(&5));
        server.abort();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_replays_interrupted_jobs_and_keeps_reports() {
        let dir = tmp("restart");
        // Life 1: accept-only daemon admits a job and dies without
        // running it.
        let server = Server::start(config(&dir, 0)).unwrap();
        server.handle_request(&submit_line("j1", ""));
        server.abort();

        // Life 2: the journal replays the job; a worker completes it.
        let server = Server::start(config(&dir, 1)).unwrap();
        assert_eq!(server.metrics().counters.get("serve.recovered"), Some(&1));
        let done = poll_done(&server, "j1");
        assert_eq!(map_get(&done, "state"), Some(&Value::Str("done".into())));
        let summary = map_get(&done, "summary").unwrap();
        assert_eq!(map_get(summary, "recovered"), Some(&Value::Bool(true)));
        let bits = macro_bits(&done);
        server.drain();

        // Life 3: the stored report survives; nothing re-runs.
        let server = Server::start(config(&dir, 1)).unwrap();
        assert_eq!(server.metrics().counters.get("serve.recovered"), None);
        let again = poll_done(&server, "j1");
        assert_eq!(macro_bits(&again), bits);
        server.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_evicts_oldest_completed_jobs_and_reports_journal_size() {
        let dir = tmp("retention");
        let mut cfg = config(&dir, 1);
        cfg.keep_completed = Some(1);
        cfg.policy_cache = false;
        let server = Server::start(cfg).unwrap();

        server.handle_request(&submit_line("old1", ""));
        poll_done(&server, "old1");
        server.handle_request(&submit_line("old2", ""));
        poll_done(&server, "old2");
        server.handle_request(&submit_line("new1", ""));
        let keep = poll_done(&server, "new1");
        assert_eq!(map_get(&keep, "state"), Some(&Value::Str("done".into())));

        // Oldest-first eviction: old1 and old2 are gone, new1 survives.
        let line = server.handle_request(r#"{"op":"result","id":"old1"}"#);
        assert!(line.contains("unknown-job"), "{line}");
        let line = server.handle_request(r#"{"op":"result","id":"old2"}"#);
        assert!(line.contains("unknown-job"), "{line}");
        let m = server.metrics();
        assert_eq!(m.counters.get("serve.journal_evicted"), Some(&2));

        // Status reports a non-zero journal footprint (one job's record).
        let status = server.handle_request(r#"{"op":"status"}"#);
        let v = serde_json::parse_value(&status).unwrap();
        let bytes = map_get(&v, "journal_bytes")
            .and_then(Value::as_u64)
            .unwrap();
        assert!(bytes > 0, "{status}");
        server.drain();

        // The eviction is durable: a restart replays only the survivor.
        let server = Server::start(config(&dir, 1)).unwrap();
        let line = server.handle_request(r#"{"op":"result","id":"old2"}"#);
        assert!(line.contains("unknown-job"), "{line}");
        let again = poll_done(&server, "new1");
        assert_eq!(map_get(&again, "state"), Some(&Value::Str("done".into())));
        server.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_jobs_are_exempt_from_retention() {
        let dir = tmp("retention-quarantine");
        let mut cfg = config(&dir, 1);
        cfg.keep_completed = Some(0);
        cfg.max_attempts = 1;
        cfg.policy_cache = false;
        let server = Server::start(cfg).unwrap();
        server.handle_request(&submit_line("poison", r#","fault_fail_attempts":99"#));
        let v = poll_done(&server, "poison");
        assert_eq!(map_get(&v, "ok"), Some(&Value::Bool(false)));
        server.handle_request(&submit_line("fine", ""));
        poll_done(&server, "fine");
        // keep_completed=0 evicts every successful job, but the
        // quarantined record survives a restart.
        assert_eq!(
            server.metrics().counters.get("serve.journal_evicted"),
            Some(&1)
        );
        server.drain();
        let server = Server::start(config(&dir, 1)).unwrap();
        let line = server.handle_request(r#"{"op":"result","id":"poison"}"#);
        assert!(line.contains("quarantined"), "{line}");
        let line = server.handle_request(r#"{"op":"result","id":"fine"}"#);
        assert!(line.contains("unknown-job"), "{line}");
        server.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_io_plan_surfaces_as_a_typed_rejection_then_clears() {
        let dir = tmp("fault-io");
        let mut cfg = config(&dir, 1);
        // Fail the very first journal payload write (the request record).
        cfg.fault_io = Some(mmp_vfs::FailPlan::parse("enospc:1:write").unwrap());
        let server = Server::start(cfg).unwrap();
        let line = server.handle_request(&submit_line("j1", ""));
        assert!(line.contains("internal"), "{line}");
        // One-shot plan: the fault cleared, the resubmission succeeds.
        let line = server.handle_request(&submit_line("j1", ""));
        assert!(line.contains(r#""ok":true"#), "{line}");
        let done = poll_done(&server, "j1");
        assert_eq!(map_get(&done, "state"), Some(&Value::Str("done".into())));
        server.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_cache_skips_training_without_changing_the_answer() {
        let dir = tmp("cache");
        let server = Server::start(config(&dir, 1)).unwrap();
        server.handle_request(&submit_line("a", ""));
        let a = poll_done(&server, "a");
        server.handle_request(&submit_line("b", ""));
        let b = poll_done(&server, "b");
        let sa = map_get(&a, "summary").unwrap();
        let sb = map_get(&b, "summary").unwrap();
        assert_eq!(map_get(sa, "policy_reused"), Some(&Value::Bool(false)));
        assert_eq!(map_get(sb, "policy_reused"), Some(&Value::Bool(true)));
        assert_eq!(report_hpwl_bits(&a), report_hpwl_bits(&b));
        assert_eq!(macro_bits(&a), macro_bits(&b));
        // The reused run skipped training from the donor's marker.
        let events = map_get(sb, "recovery_events").unwrap();
        assert!(
            matches!(events, Value::Seq(e) if e.iter().any(|x| x == &Value::Str("train-done".into()))),
            "{b:?}"
        );
        server.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
