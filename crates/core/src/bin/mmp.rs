//! `mmp` — command-line front end for the macro placer.
//!
//! ```text
//! mmp generate --circuit ibm01 --scale 0.002 --out ibm01.bks
//! mmp generate --spec 12,2,24,400,650 --hierarchy --seed 42 --out d.bks
//! mmp stats    --in d.bks
//! mmp place    --in d.bks --zeta 8 --episodes 100 --explorations 200 \
//!              --out placed.bks --svg placed.svg
//! mmp svg      --in placed.bks --out view.svg
//! ```

use mmp_core::{
    DesignStats, MacroPlacer, PlaceError, PlacerConfig, RunBudget, RunReport, SwapRefineConfig,
    SyntheticSpec,
};
use mmp_netlist::{bookshelf, bookshelf_aux, svg, Placement};
use mmp_obs::{JsonlSink, Obs, StderrSink};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// CLI failure, mapped to a distinct exit code in `main`:
///
/// | code  | meaning                                         |
/// |-------|-------------------------------------------------|
/// | 2     | usage error (bad subcommand, flags, arguments)  |
/// | 1     | I/O or parse error (files, bookshelf, svg)      |
/// | 10–16 | stage-typed `PlaceError` (`exit_code()`); 16 is |
/// |       | checkpoint persistence/resume trouble           |
enum CliError {
    /// Wrong invocation: prints the usage text, exits 2.
    Usage(String),
    /// File / parse / write trouble: exits 1.
    Io(String),
    /// The placer itself failed: exits with the stage's code (10–16).
    Place(PlaceError),
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n\
         \x20 mmp generate (--circuit <ibmNN|CirN> | --spec M,P,IO,CELLS,NETS) \\\n\
         \x20              [--scale F] [--seed N] [--hierarchy] --out FILE\n\
         \x20 mmp stats    --in FILE\n\
         \x20 mmp place    --in FILE [--zeta N] [--episodes N] [--explorations N] \\\n\
         \x20              [--seed N] [--ensemble N] [--workers N] [--budget-ms N] \\\n\
         \x20              [--refine] [--refine-moves N] [--refine-seed N] \\\n\
         \x20              [--refine-budget-ms N] \\\n\
         \x20              [--checkpoint-dir DIR] [--resume] [--fault-io SPEC] \\\n\
         \x20              [--trace stderr|FILE] [--report-json FILE] \\\n\
         \x20              [--out FILE] [--svg FILE]\n\
         \x20 mmp svg      --in FILE --out FILE [--labels]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> (BTreeMap<String, String>, Vec<String>) {
    let mut flags = BTreeMap::new();
    let mut bare = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_owned(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_owned(), String::from("true"));
                i += 1;
            }
        } else {
            bare.push(args[i].clone());
            i += 1;
        }
    }
    (flags, bare)
}

fn load(path: &str) -> Result<(mmp_core::Design, Option<Placement>), String> {
    if path.ends_with(".aux") {
        let (design, placement) =
            bookshelf_aux::read_aux(Path::new(path), 4.0).map_err(|e| e.to_string())?;
        return Ok((design, Some(placement)));
    }
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    bookshelf::read(path, BufReader::new(file)).map_err(|e| e.to_string())
}

fn store(design: &mmp_core::Design, placement: &Placement, path: &str) -> Result<(), String> {
    if path.ends_with(".aux") {
        bookshelf_aux::write_aux(design, placement, Path::new(path)).map_err(|e| e.to_string())?;
        return Ok(());
    }
    let file = File::create(path).map_err(|e| e.to_string())?;
    bookshelf::write(design, Some(placement), BufWriter::new(file)).map_err(|e| e.to_string())
}

fn find_spec(name: &str) -> Option<SyntheticSpec> {
    mmp_core::iccad04_suite()
        .into_iter()
        .chain(mmp_core::industrial_suite())
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    let (flags, _) = parse_flags(&args[1..]);
    let get = |k: &str| flags.get(k).cloned();
    let get_usize = |k: &str, d: usize| -> Result<usize, CliError> {
        match flags.get(k) {
            None => Ok(d),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --{k}: {v}"))),
        }
    };
    let need = |k: &str, msg: &str| -> Result<String, CliError> {
        get(k).ok_or_else(|| CliError::Usage(msg.into()))
    };
    let io = CliError::Io;

    match cmd.as_str() {
        "generate" => {
            let out_path = need("out", "generate needs --out")?;
            let scale: f64 = get("scale")
                .map(|v| {
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --scale: {v}")))
                })
                .transpose()?
                .unwrap_or(1.0);
            let seed = get_usize("seed", 42)? as u64;
            let spec = if let Some(name) = get("circuit") {
                let mut s = find_spec(&name)
                    .ok_or_else(|| CliError::Usage(format!("unknown circuit {name}")))?;
                s.seed = seed;
                if scale < 1.0 {
                    s = s.scaled(scale);
                }
                s
            } else if let Some(spec_str) = get("spec") {
                let parts: Vec<usize> = spec_str
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse()
                            .map_err(|_| CliError::Usage(format!("bad --spec: {spec_str}")))
                    })
                    .collect::<Result<_, _>>()?;
                if parts.len() != 5 {
                    return Err(CliError::Usage("--spec wants M,P,IO,CELLS,NETS".into()));
                }
                SyntheticSpec::small(
                    "custom",
                    parts[0],
                    parts[1],
                    parts[2],
                    parts[3],
                    parts[4],
                    flags.contains_key("hierarchy"),
                    seed,
                )
            } else {
                return Err(CliError::Usage("generate needs --circuit or --spec".into()));
            };
            let design = spec.generate();
            let file = File::create(&out_path).map_err(|e| io(e.to_string()))?;
            bookshelf::write(&design, None, BufWriter::new(file)).map_err(|e| io(e.to_string()))?;
            println!("{}", DesignStats::of(&design));
            println!("wrote {out_path}");
            Ok(())
        }
        "stats" => {
            let in_path = need("in", "stats needs --in")?;
            let (design, placement) = load(&in_path).map_err(io)?;
            println!("{}", DesignStats::of(&design));
            if let Some(pl) = placement {
                println!("placement present: HPWL = {:.1}", pl.hpwl(&design));
                println!("macro overlap     = {:.3}", pl.macro_overlap_area(&design));
            }
            Ok(())
        }
        "place" => {
            let in_path = need("in", "place needs --in")?;
            let (design, _) = load(&in_path).map_err(io)?;
            let zeta = get_usize("zeta", 8)?;
            let mut cfg = PlacerConfig::bench(zeta);
            cfg.trainer.episodes = get_usize("episodes", cfg.trainer.episodes)?;
            cfg.mcts.explorations = get_usize("explorations", cfg.mcts.explorations)?;
            cfg.trainer.seed = get_usize("seed", 0)? as u64;
            cfg.ensemble_runs = get_usize("ensemble", 1)?;
            // Deterministic: any worker count reproduces the same placement.
            cfg.workers = get_usize("workers", 1)?;
            if let Some(ms) = flags.get("budget-ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --budget-ms: {ms}")))?;
                cfg.budget = RunBudget::with_total(Duration::from_millis(ms));
            }
            // Any refine flag opts into the in-flow swap-refinement stage.
            if flags.contains_key("refine")
                || flags.contains_key("refine-moves")
                || flags.contains_key("refine-seed")
                || flags.contains_key("refine-budget-ms")
            {
                let defaults = SwapRefineConfig::default();
                cfg.refine = Some(SwapRefineConfig {
                    moves: get_usize("refine-moves", defaults.moves)?,
                    seed: get_usize("refine-seed", defaults.seed as usize)? as u64,
                });
                if let Some(ms) = flags.get("refine-budget-ms") {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| CliError::Usage(format!("bad --refine-budget-ms: {ms}")))?;
                    cfg.budget.refine = Some(Duration::from_millis(ms));
                }
            }
            // Resolve the tracing toggle exactly once, here at the edge:
            // the library crates never read environment variables.
            let obs = match get("trace").as_deref() {
                Some("stderr") => Obs::new(Box::new(StderrSink)),
                Some("true") | Some("") => {
                    return Err(CliError::Usage(
                        "--trace wants stderr or a file path".into(),
                    ))
                }
                Some(path) => {
                    Obs::new(Box::new(JsonlSink::create(path).map_err(|e| {
                        io(format!("cannot create trace file {path}: {e}"))
                    })?))
                }
                // No trace, but a report still wants the metrics registry.
                None if flags.contains_key("report-json") => Obs::metrics_only(),
                None => Obs::off(),
            };
            let mut placer = MacroPlacer::new(cfg).with_obs(obs.clone());
            match (get("checkpoint-dir"), flags.contains_key("resume")) {
                (Some(dir), _) if dir == "true" || dir.is_empty() => {
                    return Err(CliError::Usage(
                        "--checkpoint-dir wants a directory path".into(),
                    ))
                }
                (Some(dir), resume) => {
                    placer = placer.with_checkpoints(if resume {
                        mmp_core::CheckpointPlan::resume(dir)
                    } else {
                        mmp_core::CheckpointPlan::new(dir)
                    });
                }
                (None, true) => {
                    return Err(CliError::Usage(
                        "--resume needs --checkpoint-dir to resume from".into(),
                    ))
                }
                (None, false) => {}
            }
            // Dev knob mirroring the fault_crash/fault_pool_panic family:
            // arm a deterministic disk fault (spec: FAULT:NTH[:KINDS[:PATH]],
            // e.g. `enospc:3`, `crash:2:rename`) on the checkpoint I/O path.
            if let Some(spec) = get("fault-io") {
                let plan = mmp_core::FailPlan::parse(&spec).map_err(CliError::Usage)?;
                placer = placer.with_vfs(mmp_core::Vfs::with_plan(plan));
            }
            let result = placer.place(&design).map_err(CliError::Place)?;
            if result.checkpoint.disabled {
                println!("warning: checkpointing was disabled mid-run (see degradation report)");
            }
            if !result.checkpoint.resumes.is_empty() {
                println!(
                    "resumed from checkpoint: {}",
                    result.checkpoint.resumes.join(", ")
                );
            }
            println!(
                "HPWL = {:.1}, overlap = {:.3}, mcts = {:?}",
                result.hpwl,
                result.placement.macro_overlap_area(&design),
                result.timings.mcts
            );
            if let Some(r) = &result.refine {
                println!(
                    "refined: HPWL {:.1} -> {:.1} ({}/{} proposals accepted: \
                     {} swap(s), {} relocation(s))",
                    r.hpwl_before, r.hpwl_after, r.accepted, r.proposed, r.swaps, r.relocations
                );
            }
            if !result.degradation.is_empty() {
                eprintln!("run degraded under its budget/faults:");
                for e in &result.degradation.events {
                    eprintln!("  {}: {}", e.stage, e.detail);
                }
            }
            if let Some(report_path) = get("report-json") {
                let report = RunReport::new(design.name(), &result, &obs.snapshot());
                let json = report
                    .to_json()
                    .map_err(|e| io(format!("cannot serialize run report: {e}")))?;
                // why: the run report is a plain output file, not a checkpoint:
                // the crash-safe envelope (and its clippy ban on bare
                // `fs::write`) is for state the flow must resume from.
                #[allow(clippy::disallowed_methods)]
                std::fs::write(&report_path, json + "\n")
                    .map_err(|e| io(format!("cannot write {report_path}: {e}")))?;
                println!("wrote {report_path}");
            }
            obs.flush();
            let placement = result.placement;
            if let Some(out_path) = get("out") {
                store(&design, &placement, &out_path).map_err(io)?;
                println!("wrote {out_path}");
            }
            if let Some(svg_path) = get("svg") {
                let file = File::create(&svg_path).map_err(|e| io(e.to_string()))?;
                svg::write(
                    &design,
                    &placement,
                    &svg::SvgOptions::default(),
                    BufWriter::new(file),
                )
                .map_err(|e| io(e.to_string()))?;
                println!("wrote {svg_path}");
            }
            Ok(())
        }
        "svg" => {
            let in_path = need("in", "svg needs --in")?;
            let out_path = need("out", "svg needs --out")?;
            let (design, placement) = load(&in_path).map_err(io)?;
            let placement = placement.unwrap_or_else(|| Placement::initial(&design));
            let opts = svg::SvgOptions {
                macro_labels: flags.contains_key("labels"),
                ..svg::SvgOptions::default()
            };
            let file = File::create(&out_path).map_err(|e| io(e.to_string()))?;
            svg::write(&design, &placement, &opts, BufWriter::new(file))
                .map_err(|e| io(e.to_string()))?;
            println!("wrote {out_path}");
            Ok(())
        }
        _ => Err(CliError::Usage(format!("unknown subcommand {cmd}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            usage()
        }
        Err(CliError::Io(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
        Err(CliError::Place(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
