//! Criterion bench for the Fig. 5 experiment's hot kernels: a greedy RL
//! rollout vs a full MCTS placement with the same agent.

use criterion::{criterion_group, criterion_main, Criterion};
use mmp_core::{SyntheticSpec, Trainer, TrainerConfig};
use mmp_mcts::{MctsConfig, MctsPlacer};

fn bench_rollouts(c: &mut Criterion) {
    let design = SyntheticSpec::small("f5", 8, 0, 12, 120, 200, false, 2).generate();
    let mut cfg = TrainerConfig::tiny(8);
    cfg.episodes = 6;
    cfg.calibration_episodes = 3;
    let trainer = Trainer::new(&design, cfg);
    let out = trainer.train();

    let mut group = c.benchmark_group("fig5_mcts_vs_rl");
    group.sample_size(10);
    group.bench_function("greedy_rl_rollout", |b| {
        b.iter(|| criterion::black_box(trainer.greedy_episode(&out.agent).1));
    });
    for gamma in [8usize, 32] {
        group.bench_function(format!("mcts_place/gamma_{gamma}"), |b| {
            b.iter(|| {
                let placer = MctsPlacer::new(MctsConfig {
                    explorations: gamma,
                    ..MctsConfig::default()
                });
                criterion::black_box(placer.place(&trainer, &out.agent, &out.scale).wirelength)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rollouts);
criterion_main!(benches);
