//! A lightweight item parser on top of [`crate::lexer`]: modules, `fn`
//! items, `impl`/`trait` blocks, and intra-workspace `use` declarations.
//!
//! This is deliberately *not* `syn`. The semantic rules (R8–R10) only
//! need to know **which function a token belongs to**, which type an
//! `impl` block targets, and what a local name probably resolves to —
//! all of which a brace-depth walk over the token stream recovers. The
//! parser is approximate by design: macro bodies are walked as ordinary
//! token soup, generics are skipped, and unresolvable names simply
//! produce no call edges. Over-approximation is acceptable (a spurious
//! edge inflates reachability, never hides a panic site); silent
//! under-approximation is what the fixtures guard against.

use crate::lexer::{Lexed, Tok, TokKind};

/// One `fn` item (free function, inherent/trait method, or trait default
/// method) with its position and body token range.
#[derive(Debug, Clone)]
pub struct Item {
    /// Bare function name (`serve`, `place`, ...).
    pub name: String,
    /// The `impl`/`trait` type the fn hangs off, if any (`Server`).
    pub self_ty: Option<String>,
    /// Fully qualified display name
    /// (`mmp_serve::daemon::Server::serve`). Approximate but stable: the
    /// crate segment comes from the directory name, the module segments
    /// from the file path plus inline `mod` nesting.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range `[start, end)` of the body, `None` for
    /// body-less trait method declarations.
    pub body: Option<(usize, usize)>,
    /// `true` when the item lives inside a `tests` module (unit-test
    /// code is exempt from the semantic rules).
    pub in_tests: bool,
}

/// One file after item parsing.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path (`/`-separated), as passed to `parse`.
    pub path: String,
    /// The owning crate's library name (`mmp_serve` for
    /// `crates/serve/...`); `file` when the path has no `crates/<dir>/`
    /// prefix (single-file fixtures).
    pub crate_name: String,
    /// `true` for binary roots (`main.rs`, anything under `src/bin/`):
    /// CLI edges are allowed to panic on broken invariants, so R8 skips
    /// them.
    pub is_bin: bool,
    pub items: Vec<Item>,
    /// `use` resolution: local alias → full path segments
    /// (`fingerprint` → `["mmp_core", "fingerprint"]`).
    pub uses: Vec<(String, Vec<String>)>,
    /// Token-index ranges `[start, end)` of `tests` module bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// Index of the innermost item whose body contains token `tok_idx`.
    pub fn enclosing_item(&self, tok_idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, item) in self.items.iter().enumerate() {
            if let Some((s, e)) = item.body {
                if s <= tok_idx && tok_idx < e {
                    let tighter = match best {
                        None => true,
                        Some(b) => {
                            let (bs, be) = self.items[b].body.unwrap_or((0, usize::MAX));
                            e - s < be - bs
                        }
                    };
                    if tighter {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// `true` when token `tok_idx` sits inside a `tests` module.
    pub fn in_tests(&self, tok_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| s <= tok_idx && tok_idx < e)
    }

    /// The full path a local alias resolves to, if a `use` imported it.
    pub fn resolve_use(&self, alias: &str) -> Option<&[String]> {
        self.uses
            .iter()
            .find(|(a, _)| a == alias)
            .map(|(_, p)| p.as_slice())
    }
}

/// What opened the brace scope we are inside.
#[derive(Debug)]
enum Scope {
    Mod { name: String, tests: bool },
    Impl { ty: String },
    Fn { item_idx: usize },
    Other,
}

/// Keywords that can directly precede `[`/`(` without forming an index
/// or a call (statement/expression keywords the lexer reports as plain
/// identifiers).
pub fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Derives the crate library name from a workspace-relative path:
/// `crates/serve/src/daemon.rs` → `mmp_serve`.
fn crate_name_of(path_rel: &str) -> String {
    let mut parts = path_rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(dir) = parts.next() {
            return format!("mmp_{}", dir.replace('-', "_"));
        }
    }
    "file".to_owned()
}

/// Module segments the file path itself contributes:
/// `crates/serve/src/daemon.rs` → `["daemon"]`, `lib.rs` → `[]`.
fn file_modules(path_rel: &str) -> Vec<String> {
    let after_src = match path_rel.find("/src/") {
        Some(i) => &path_rel[i + 5..],
        None => path_rel,
    };
    after_src
        .split('/')
        .map(|s| s.trim_end_matches(".rs"))
        .filter(|s| !s.is_empty() && *s != "lib" && *s != "main" && *s != "mod")
        .map(str::to_owned)
        .collect()
}

/// Parses one lexed file into its item table.
pub fn parse(path_rel: &str, lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.tokens;
    let crate_name = crate_name_of(path_rel);
    let is_bin = path_rel.ends_with("/main.rs")
        || path_rel.ends_with("main.rs") && !path_rel.contains('/')
        || path_rel.contains("/bin/");

    let mut out = ParsedFile {
        path: path_rel.to_owned(),
        crate_name: crate_name.clone(),
        is_bin,
        ..ParsedFile::default()
    };

    let mut scopes: Vec<Scope> = Vec::new();
    // (scope stack depth when the tests module opened, token index).
    let mut tests_open: Vec<(usize, usize)> = Vec::new();
    let base_mods = file_modules(path_rel);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "mod" => {
                    // `mod name { ... }` or `mod name;`. Anything else
                    // (`mod` as a path segment?) falls through harmlessly.
                    if let Some(name_tok) = toks.get(i + 1) {
                        if name_tok.kind == TokKind::Ident {
                            let name = name_tok.text.clone();
                            match next_significant(toks, i + 2) {
                                Some(j) if toks[j].is_punct('{') => {
                                    let parent_tests = in_tests_now(&scopes);
                                    let tests = parent_tests || name == "tests";
                                    if tests && !parent_tests {
                                        tests_open.push((scopes.len(), j + 1));
                                    }
                                    scopes.push(Scope::Mod { name, tests });
                                    i = j + 1;
                                    continue;
                                }
                                _ => {
                                    i += 2;
                                    continue;
                                }
                            }
                        }
                    }
                    i += 1;
                }
                "impl" | "trait" => {
                    // Scan the header to its `{` (headers never contain
                    // braces) and extract the subject type name.
                    let mut j = i + 1;
                    let mut angle = 0i32;
                    let mut after_for = false;
                    let mut ty: Option<String> = None;
                    let mut ty_after_for: Option<String> = None;
                    while let Some(h) = toks.get(j) {
                        match h.kind {
                            TokKind::Punct('{') => break,
                            TokKind::Punct(';') => break,
                            TokKind::Punct('<') => angle += 1,
                            TokKind::Punct('>') => angle -= 1,
                            TokKind::Ident if angle == 0 => {
                                if h.text == "for" {
                                    after_for = true;
                                } else if h.text == "where" {
                                    // Bounds in where clauses are not the
                                    // subject type.
                                } else if after_for {
                                    if ty_after_for.is_none() && h.text != "dyn" {
                                        ty_after_for = Some(h.text.clone());
                                    }
                                } else if ty.is_none() && h.text != "dyn" {
                                    ty = Some(h.text.clone());
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|h| h.is_punct('{')) {
                        let ty = ty_after_for.or(ty).unwrap_or_else(|| "_".to_owned());
                        scopes.push(Scope::Impl { ty });
                        i = j + 1;
                    } else {
                        i = j + 1; // `impl Foo;`-ish degenerate — skip.
                    }
                }
                "fn" => {
                    // `fn name(...)` — `fn(` is a function-pointer type.
                    let Some(name_tok) = toks.get(i + 1) else {
                        i += 1;
                        continue;
                    };
                    if name_tok.kind != TokKind::Ident {
                        i += 1;
                        continue;
                    }
                    let name = name_tok.text.clone();
                    // Signature runs to the body `{` or a trait-decl `;`.
                    // Parenthesised default args don't exist and headers
                    // carry no braces, so a flat scan suffices.
                    let mut j = i + 2;
                    while let Some(h) = toks.get(j) {
                        if h.is_punct('{') || h.is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    let self_ty = scopes.iter().rev().find_map(|s| match s {
                        Scope::Impl { ty } => Some(ty.clone()),
                        _ => None,
                    });
                    let mut segs: Vec<String> = Vec::new();
                    segs.push(crate_name.clone());
                    segs.extend(base_mods.iter().cloned());
                    for s in &scopes {
                        if let Scope::Mod { name, .. } = s {
                            segs.push(name.clone());
                        }
                    }
                    if let Some(ty) = &self_ty {
                        segs.push(ty.clone());
                    }
                    segs.push(name.clone());
                    let item = Item {
                        name,
                        self_ty,
                        qual: segs.join("::"),
                        line: t.line,
                        body: None,
                        in_tests: in_tests_now(&scopes),
                    };
                    let item_idx = out.items.len();
                    out.items.push(item);
                    if toks.get(j).is_some_and(|h| h.is_punct('{')) {
                        out.items[item_idx].body = Some((j + 1, j + 1));
                        scopes.push(Scope::Fn { item_idx });
                        i = j + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "use" => {
                    // `use a::b::{c, d as e};` — record alias → full path.
                    let mut j = i + 1;
                    while let Some(h) = toks.get(j) {
                        if h.is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    parse_use_tree(&toks[i + 1..j], &mut Vec::new(), &mut out.uses);
                    i = j + 1;
                }
                _ => i += 1,
            },
            TokKind::Punct('{') => {
                scopes.push(Scope::Other);
                i += 1;
            }
            TokKind::Punct('}') => {
                match scopes.pop() {
                    Some(Scope::Fn { item_idx }) => {
                        if let Some((s, _)) = out.items[item_idx].body {
                            out.items[item_idx].body = Some((s, i));
                        }
                    }
                    Some(Scope::Mod { tests: true, .. }) => {
                        if let Some(&(depth, start)) = tests_open.last() {
                            if depth == scopes.len() {
                                tests_open.pop();
                                out.test_ranges.push((start, i));
                            }
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Unterminated scopes (truncated input): close at end of stream so
    // ranges stay well-formed.
    while let Some(s) = scopes.pop() {
        match s {
            Scope::Fn { item_idx } => {
                if let Some((start, _)) = out.items[item_idx].body {
                    out.items[item_idx].body = Some((start, toks.len()));
                }
            }
            Scope::Mod { tests: true, .. } => {
                if let Some((_, start)) = tests_open.pop() {
                    out.test_ranges.push((start, toks.len()));
                }
            }
            _ => {}
        }
    }
    out
}

fn in_tests_now(scopes: &[Scope]) -> bool {
    scopes
        .iter()
        .any(|s| matches!(s, Scope::Mod { tests: true, .. }))
}

fn next_significant(toks: &[Tok], from: usize) -> Option<usize> {
    (from < toks.len()).then_some(from)
}

/// Recursive descent over one `use` tree (the tokens between `use` and
/// `;`). `prefix` carries the segments accumulated so far.
fn parse_use_tree(toks: &[Tok], prefix: &mut Vec<String>, out: &mut Vec<(String, Vec<String>)>) {
    let mut i = 0usize;
    let start_len = prefix.len();
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident if t.text == "as" => {
                // `path as alias` — the alias is the local name.
                if let Some(a) = toks.get(i + 1) {
                    if a.kind == TokKind::Ident && !prefix.is_empty() {
                        out.push((a.text.clone(), prefix.clone()));
                        prefix.truncate(start_len);
                        // Consume up to the next `,` at this level.
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            TokKind::Ident => {
                prefix.push(t.text.clone());
                i += 1;
            }
            TokKind::Punct(':') => i += 1,
            TokKind::Punct('*') => {
                // Glob imports resolve nothing by name; drop them.
                prefix.truncate(start_len);
                i += 1;
            }
            TokKind::Punct('{') => {
                // Group: recurse over each comma-separated subtree.
                let mut depth = 1usize;
                let mut j = i + 1;
                let group_start = j;
                while j < toks.len() && depth > 0 {
                    match toks[j].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let group = &toks[group_start..j.saturating_sub(1)];
                for sub in split_top_level_commas(group) {
                    let mut p = prefix.clone();
                    parse_use_tree(sub, &mut p, out);
                }
                prefix.truncate(start_len);
                i = j;
            }
            TokKind::Punct(',') => {
                flush_leaf(prefix, start_len, out);
                i += 1;
            }
            _ => i += 1,
        }
    }
    flush_leaf(prefix, start_len, out);
}

/// Emits `prefix` as a leaf import (alias = last segment) if it grew.
fn flush_leaf(prefix: &mut Vec<String>, start_len: usize, out: &mut Vec<(String, Vec<String>)>) {
    if prefix.len() > start_len {
        if let Some(last) = prefix.last() {
            if last != "self" {
                out.push((last.clone(), prefix.clone()));
            } else {
                // `use a::b::{self}` imports `b` itself.
                let trimmed: Vec<String> = prefix[..prefix.len() - 1].to_vec();
                if let Some(name) = trimmed.last() {
                    out.push((name.clone(), trimmed.clone()));
                }
            }
        }
    }
    prefix.truncate(start_len);
}

fn split_top_level_commas(toks: &[Tok]) -> Vec<&[Tok]> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth = depth.saturating_sub(1),
            TokKind::Punct(',') if depth == 0 => {
                parts.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        parts.push(&toks[start..]);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse("crates/serve/src/daemon.rs", &lex(src))
    }

    #[test]
    fn free_and_impl_fns_get_quals() {
        let p = parsed(
            "fn helper() {}\n\
             impl Server {\n    pub fn serve(&self) { helper(); }\n}\n\
             impl Default for ServeConfig {\n    fn default() -> Self { todo!() }\n}\n",
        );
        let quals: Vec<&str> = p.items.iter().map(|i| i.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "mmp_serve::daemon::helper",
                "mmp_serve::daemon::Server::serve",
                "mmp_serve::daemon::ServeConfig::default",
            ]
        );
        assert_eq!(p.items[1].self_ty.as_deref(), Some("Server"));
    }

    #[test]
    fn generics_do_not_confuse_impl_subjects() {
        let p = parsed("impl<'a, T: Clone> Wrapper<'a, T> {\n    fn get(&self) {}\n}\n");
        assert_eq!(p.items[0].self_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn bodies_cover_their_tokens_and_nest() {
        let src = "fn outer() {\n    let x = inner();\n    fn inner() -> u32 { 7 }\n}\n";
        let p = parsed(src);
        let lexed = lex(src);
        let outer = &p.items[0];
        let inner = &p.items[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.name, "inner");
        let seven = lexed
            .tokens
            .iter()
            .position(|t| t.kind == TokKind::Num)
            .unwrap();
        // `7` is in both bodies; the innermost wins.
        assert_eq!(p.enclosing_item(seven), Some(1));
    }

    #[test]
    fn tests_modules_are_ranged() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lib(); }\n}\n";
        let p = parsed(src);
        assert!(!p.items[0].in_tests);
        assert!(p.items[1].in_tests);
        assert_eq!(p.test_ranges.len(), 1);
    }

    #[test]
    fn use_trees_resolve_aliases() {
        let p = parsed(
            "use mmp_core::{fingerprint, MacroPlacer as Placer};\n\
             use crate::journal::Journal;\nuse std::io::Write as _;\n",
        );
        assert_eq!(
            p.resolve_use("fingerprint"),
            Some(&["mmp_core".to_owned(), "fingerprint".to_owned()][..])
        );
        assert_eq!(
            p.resolve_use("Placer"),
            Some(&["mmp_core".to_owned(), "MacroPlacer".to_owned()][..])
        );
        assert_eq!(
            p.resolve_use("Journal"),
            Some(
                &[
                    "crate".to_owned(),
                    "journal".to_owned(),
                    "Journal".to_owned()
                ][..]
            )
        );
    }

    #[test]
    fn trait_default_methods_and_decls() {
        let p = parsed(
            "trait Sink {\n    fn flush(&self);\n    fn write_all(&self) { self.flush(); }\n}\n",
        );
        assert_eq!(p.items.len(), 2);
        assert!(p.items[0].body.is_none());
        assert!(p.items[1].body.is_some());
        assert_eq!(p.items[1].qual, "mmp_serve::daemon::Sink::write_all");
    }

    #[test]
    fn bin_paths_are_marked() {
        assert!(parse("crates/serve/src/bin/mmpd.rs", &lex("fn main() {}")).is_bin);
        assert!(parse("crates/core/src/main.rs", &lex("fn main() {}")).is_bin);
        assert!(!parsed("fn f() {}").is_bin);
    }
}
