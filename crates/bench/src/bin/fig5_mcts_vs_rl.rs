//! Fig. 5 — MCTS post-optimization vs plain RL at every training
//! checkpoint, on ibm01-like and ibm06-like circuits.
//!
//! ```sh
//! cargo run --release -p mmp-bench --bin fig5_mcts_vs_rl
//! ```
//!
//! Paper expectation: the MCTS curve (red dashed in the paper) sits above
//! the RL curve (blue) at **every** checkpoint, and early-checkpoint MCTS
//! already approaches the final RL reward.

use mmp_bench::{header, iccad_scale, scaled_count};
use mmp_core::{iccad04_suite, Trainer, TrainerConfig};
use mmp_mcts::{MctsConfig, MctsPlacer};

fn main() {
    header(
        "Fig. 5 — rewards of MCTS at training checkpoints vs RL",
        "per checkpoint: greedy-RL reward and MCTS reward with the same agent",
    );
    let suite = iccad04_suite();
    let episodes = scaled_count(210, 30);
    let checkpoint_every = (episodes / 6).max(5); // the paper samples every 35

    for circuit_idx in [0usize, 5] {
        // ibm01 and ibm06
        let spec = suite[circuit_idx].scaled(iccad_scale());
        let design = spec.generate();
        println!(
            "\n--- {} ({} macros, {} cells) ---",
            design.name(),
            design.movable_macros().len(),
            design.cells().len()
        );

        let mut cfg = TrainerConfig::tiny(8);
        cfg.prototype_placement = true;
        cfg.coarse_eval = false;
        cfg.episodes = episodes;
        cfg.calibration_episodes = (episodes / 6).max(5);
        cfg.update_every = 10;
        cfg.checkpoint_every = Some(checkpoint_every);
        let trainer = Trainer::new(&design, cfg);
        let outcome = trainer.train();

        let placer = MctsPlacer::new(MctsConfig {
            explorations: scaled_count(200, 16),
            ..MctsConfig::default()
        });
        println!("checkpoint |  RL reward | MCTS reward | MCTS wins");
        let mut mcts_wins = 0usize;
        let mut rows = 0usize;
        for (episode, agent) in &outcome.checkpoints {
            let (_, rl_w) = trainer.greedy_episode(agent);
            let rl_reward = outcome.scale.reward(rl_w);
            let result = placer.place(&trainer, agent, &outcome.scale);
            let win = result.reward >= rl_reward;
            if win {
                mcts_wins += 1;
            }
            rows += 1;
            println!(
                "{episode:>10} | {rl_reward:>10.3} | {:>11.3} | {}",
                result.reward,
                if win { "yes" } else { "no" }
            );
        }
        println!(
            "MCTS ≥ RL at {mcts_wins}/{rows} checkpoints \
             (paper: MCTS consistently outperforms RL at every stage)"
        );
    }
}
