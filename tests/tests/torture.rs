//! The crash-consistency torture harness: enumerate *every* write
//! boundary of (a) one full checkpointed flow run and (b) one daemon
//! job, then replay each run once per boundary with a disk fault armed
//! exactly there.
//!
//! The invariants (see `mmp_faults::torture`):
//!
//! * no panic, ever — a boundary fault yields a typed error or a
//!   completed placement;
//! * a crash boundary is survivable: resume (or the next daemon life)
//!   lands on the **bitwise** baseline — HPWL bits, macro coordinate
//!   bits, group assignment;
//! * a clean failure (disk full) degrades checkpointing and never the
//!   placement;
//! * the journal quarantines damage and sweeps orphans, never parses
//!   garbage.
//!
//! These sweeps are exhaustive, not sampled, so they run as their own CI
//! job (`torture`) on the smallest fixture that still exercises every
//! envelope kind.

use mmp_faults::torture::{torture_daemon, torture_flow};
use std::panic::catch_unwind;

#[test]
fn every_flow_write_boundary_survives_crash_and_disk_full() {
    let report = catch_unwind(|| torture_flow("flow")).expect("flow torture must never panic");
    assert!(
        report.boundaries > 20,
        "the fixture should expose a few dozen write boundaries, saw {}",
        report.boundaries
    );
    assert!(
        report.ok(),
        "flow torture violations at {} boundaries:\n{}",
        report.failures.len(),
        report.failures.join("\n")
    );
}

#[test]
fn every_daemon_job_write_boundary_survives_a_crash() {
    let report =
        catch_unwind(|| torture_daemon("daemon")).expect("daemon torture must never panic");
    assert!(
        report.boundaries > 20,
        "the daemon job should expose a few dozen write boundaries, saw {}",
        report.boundaries
    );
    assert!(
        report.ok(),
        "daemon torture violations at {} boundaries:\n{}",
        report.failures.len(),
        report.failures.join("\n")
    );
}
