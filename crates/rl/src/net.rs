//! The actor-critic network of Fig. 2 / Table I.
//!
//! A shared residual conv tower feeds two heads:
//!
//! * **policy** — 1×1 conv (2 maps) → FC → ζ² logits, masked by the
//!   availability map s_a and softmax-normalised. The paper "multiplies" the
//!   FC output by s_a before the softmax; we implement the mask as
//!   `logits + ln(s_a)`, which makes the final probabilities exactly
//!   proportional to `softmax(logits) · s_a` while keeping the softmax
//!   gradient standard.
//! * **value** — the tower output concatenated with s_p and a position
//!   embedding of t (a constant `t/total` plane), 1×1 conv → MLP
//!   (ζ² → ζ → ζ² → 1) per Table I.
//!
//! Channel width and tower depth are configurable: [`AgentConfig::paper`]
//! reproduces Table I exactly (128 channels, 10 ResBlocks);
//! [`AgentConfig::tiny`] runs the same code at laptop scale.
//!
//! Weights and workspace are split. Inference ([`PolicyValueNet::forward`],
//! [`PolicyValueNet::forward_batch`]) takes `&self` plus a caller-owned
//! [`InferenceCtx`] and accepts any batch size N ≥ 1, so one network can be
//! shared by many concurrent readers. Training
//! ([`PolicyValueNet::forward_train_batch`] +
//! [`PolicyValueNet::backward_batch`]) keeps the `&mut self` tape
//! discipline and processes whole transition minibatches per pass.

use mmp_nn::{softmax, BatchNorm2d, Conv2d, InferenceCtx, Layer, Linear, Param, Relu, Tensor};
use serde::{Deserialize, Serialize};

/// Network size parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Grid resolution ζ (the action space is ζ²).
    pub zeta: usize,
    /// Conv channel width F (Table I: 128).
    pub channels: usize,
    /// ResBlock count (Table I: 10).
    pub res_blocks: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl AgentConfig {
    /// The exact architecture of Table I: ζ = 16, 128 channels, 10
    /// ResBlocks.
    pub fn paper() -> Self {
        AgentConfig {
            zeta: 16,
            channels: 128,
            res_blocks: 10,
            seed: 0,
        }
    }

    /// A laptop-scale configuration sharing all code paths (16 channels,
    /// 2 ResBlocks) over a ζ×ζ grid.
    pub fn tiny(zeta: usize) -> Self {
        AgentConfig {
            zeta,
            channels: 16,
            res_blocks: 2,
            seed: 0,
        }
    }
}

/// One pre-activation-style residual block: conv-bn-relu-conv-bn + skip,
/// then relu (the ResBlock of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ResBlock {
    conv_a: Conv2d,
    bn_a: BatchNorm2d,
    relu_a: Relu,
    conv_b: Conv2d,
    bn_b: BatchNorm2d,
    relu_out: Relu,
}

impl ResBlock {
    fn new(channels: usize, seed: u64) -> Self {
        ResBlock {
            conv_a: Conv2d::new(channels, channels, 3, seed),
            bn_a: BatchNorm2d::new(channels),
            relu_a: Relu::new(),
            conv_b: Conv2d::new(channels, channels, 3, seed ^ 0xb10c),
            bn_b: BatchNorm2d::new(channels),
            relu_out: Relu::new(),
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = self.conv_a.forward(x, train);
        h = self.bn_a.forward(&h, train);
        h = self.relu_a.forward(&h, train);
        h = self.conv_b.forward(&h, train);
        h = self.bn_b.forward(&h, train);
        h.add_assign(x);
        self.relu_out.forward(&h, train)
    }

    fn infer(&self, x: &Tensor, ctx: &mut InferenceCtx) -> Tensor {
        let mut h = bn_consuming(&self.bn_a, self.conv_a.infer(x, ctx), ctx);
        relu_in_place(&mut h);
        // Recycle bn_a's plane before rebinding `h`: shadowing it would
        // silently drop the buffer and leak one allocation per block per
        // forward (caught by the no-alloc-after-warmup assertion).
        let conv_b_out = self.conv_b.infer(&h, ctx);
        ctx.recycle_tensor(h);
        let mut h = bn_consuming(&self.bn_b, conv_b_out, ctx);
        h.add_assign(x);
        relu_in_place(&mut h);
        h
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv_a.visit_params(f);
        self.bn_a.visit_params(f);
        self.conv_b.visit_params(f);
        self.bn_b.visit_params(f);
    }
}

/// Applies `bn` to `h`, recycling `h`'s storage into the pool.
fn bn_consuming(bn: &BatchNorm2d, h: Tensor, ctx: &mut InferenceCtx) -> Tensor {
    let out = bn.infer(&h, ctx);
    ctx.recycle_tensor(h);
    out
}

/// Smallest per-worker slice worth a thread in a parallel batched forward.
const PAR_MIN_CHUNK: usize = 4;

/// Elementwise ReLU without allocating (matches `Relu::infer` semantics).
fn relu_in_place(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        if v.is_nan() || *v <= 0.0 {
            *v = 0.0;
        }
    }
}

/// One forward result.
#[derive(Debug, Clone, PartialEq)]
pub struct NetOutput {
    /// Masked action distribution over the ζ² cells.
    pub probs: Vec<f32>,
    /// Predicted value v_θ of the state.
    pub value: f32,
}

/// A borrowed observation, the unit of (batched) evaluation.
#[derive(Debug, Clone, Copy)]
pub struct StateRef<'a> {
    /// Flat ζ×ζ occupancy map s_p.
    pub s_p: &'a [f32],
    /// Flat ζ×ζ availability map s_a.
    pub s_a: &'a [f32],
    /// Index of the macro group to place.
    pub t: usize,
    /// Episode length (total macro groups).
    pub total: usize,
}

#[derive(Debug, Clone)]
struct ForwardCache {
    /// Per-sample masked action distributions.
    probs: Vec<Vec<f32>>,
    /// Per-sample value predictions.
    values: Vec<f32>,
}

/// The shared-trunk policy/value network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyValueNet {
    config: AgentConfig,
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    blocks: Vec<ResBlock>,
    conv_p: Conv2d,
    bn_p: BatchNorm2d,
    relu_p: Relu,
    fc_p: Linear,
    conv_v: Conv2d,
    bn_v: BatchNorm2d,
    relu_v: Relu,
    lin1: Linear,
    relu_l1: Relu,
    lin2: Linear,
    relu_l2: Relu,
    lin3: Linear,
    #[serde(skip)]
    cache: Option<ForwardCache>,
}

impl PolicyValueNet {
    /// Builds the network (deterministic in `config.seed`).
    pub fn new(config: AgentConfig) -> Self {
        let f = config.channels;
        let z2 = config.zeta * config.zeta;
        let s = config.seed;
        PolicyValueNet {
            config,
            conv1: Conv2d::new(1, f, 3, s.wrapping_add(1)),
            bn1: BatchNorm2d::new(f),
            relu1: Relu::new(),
            blocks: (0..config.res_blocks)
                .map(|i| ResBlock::new(f, s.wrapping_add(100 + i as u64)))
                .collect(),
            conv_p: Conv2d::new(f, 2, 1, s.wrapping_add(2)),
            bn_p: BatchNorm2d::new(2),
            relu_p: Relu::new(),
            fc_p: Linear::new(2 * z2, z2, s.wrapping_add(3)),
            conv_v: Conv2d::new(f + 2, 1, 1, s.wrapping_add(4)),
            bn_v: BatchNorm2d::new(1),
            relu_v: Relu::new(),
            lin1: Linear::new(z2, config.zeta, s.wrapping_add(5)),
            relu_l1: Relu::new(),
            lin2: Linear::new(config.zeta, z2, s.wrapping_add(6)),
            relu_l2: Relu::new(),
            lin3: Linear::new(z2, 1, s.wrapping_add(7)),
            cache: None,
        }
    }

    /// The size configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    fn check_state(&self, s: &StateRef<'_>) {
        let z2 = self.config.zeta * self.config.zeta;
        assert_eq!(s.s_p.len(), z2, "s_p length mismatch");
        assert_eq!(s.s_a.len(), z2, "s_a length mismatch");
    }

    /// Evaluates the network on one state (inference mode: `&self` weights,
    /// scratch from `ctx`, running batch-norm statistics).
    ///
    /// # Panics
    ///
    /// Panics when `s_p`/`s_a` are not ζ² long.
    pub fn forward(
        &self,
        s_p: &[f32],
        s_a: &[f32],
        t: usize,
        total: usize,
        ctx: &mut InferenceCtx,
    ) -> NetOutput {
        // why: invariant, not input: forward_batch returns one output per state.
        #[allow(clippy::expect_used)]
        self.forward_batch(&[StateRef { s_p, s_a, t, total }], ctx)
            .pop()
            .expect("batch of one yields one output")
    }

    /// Evaluates the network on a batch of N states in one pass through the
    /// tower. Returns one [`NetOutput`] per state, in order. Equivalent to
    /// N single-state calls (inference batch-norm uses running statistics,
    /// so samples never interact).
    ///
    /// Large batches are split across the deterministic pool carried by
    /// `ctx` ([`InferenceCtx::exec`]) — the weights are shared `&self`,
    /// each worker reuses a persistent warm sub-context owned by `ctx` —
    /// so worker count and chunk size come from config, never the host,
    /// and the hot path stays allocation-free after warm-up. Per-state
    /// outputs are independent, so any partition is bitwise identical to
    /// the sequential pass.
    ///
    /// # Panics
    ///
    /// Panics when any state's maps are not ζ² long.
    pub fn forward_batch(&self, states: &[StateRef<'_>], ctx: &mut InferenceCtx) -> Vec<NetOutput> {
        let exec = ctx.exec();
        if exec.workers() > 1 && states.len() >= 2 * PAR_MIN_CHUNK {
            let chunk = states.len().div_ceil(exec.workers()).max(PAR_MIN_CHUNK);
            let parts: Vec<&[StateRef<'_>]> = states.chunks(chunk).collect();
            let mut worker_ctxs = ctx.take_worker_ctxs();
            let outs = exec.run_with_scratch(parts.len(), &mut worker_ctxs, |i, wctx| {
                self.forward_batch_seq(parts[i], wctx)
            });
            ctx.restore_worker_ctxs(worker_ctxs);
            return outs.into_iter().flatten().collect();
        }
        self.forward_batch_seq(states, ctx)
    }

    /// Single-threaded batched forward (the arithmetic behind
    /// [`PolicyValueNet::forward_batch`]).
    fn forward_batch_seq(&self, states: &[StateRef<'_>], ctx: &mut InferenceCtx) -> Vec<NetOutput> {
        if states.is_empty() {
            return Vec::new();
        }
        let z = self.config.zeta;
        let z2 = z * z;
        let n = states.len();
        for s in states {
            self.check_state(s);
        }

        // --- trunk -----------------------------------------------------
        let mut input = ctx.take_tensor(&[n, 1, z, z]);
        for (s, st) in states.iter().enumerate() {
            input.as_mut_slice()[s * z2..(s + 1) * z2].copy_from_slice(st.s_p);
        }
        let h = self.conv1.infer(&input, ctx);
        ctx.recycle_tensor(input);
        let mut h = bn_consuming(&self.bn1, h, ctx);
        relu_in_place(&mut h);
        for b in &self.blocks {
            let next = b.infer(&h, ctx);
            ctx.recycle_tensor(h);
            h = next;
        }
        let tower_out = h;

        // --- policy head -----------------------------------------------
        let p = self.conv_p.infer(&tower_out, ctx);
        let mut p = bn_consuming(&self.bn_p, p, ctx);
        relu_in_place(&mut p);
        p.reshape_in_place(&[n, 2 * z2]);
        let logits = self.fc_p.infer(&p, ctx);
        ctx.recycle_tensor(p);
        let probs: Vec<Vec<f32>> = states
            .iter()
            .enumerate()
            .map(|(s, st)| {
                let masked: Vec<f32> = logits.as_slice()[s * z2..(s + 1) * z2]
                    .iter()
                    .zip(st.s_a)
                    .map(|(&l, &a)| l + a.max(1e-30).ln())
                    .collect();
                softmax(&masked)
            })
            .collect();
        ctx.recycle_tensor(logits);

        // --- value head -------------------------------------------------
        let f = self.config.channels;
        let mut v_in = ctx.take_tensor(&[n, f + 2, z, z]);
        for (s, st) in states.iter().enumerate() {
            let base = s * (f + 2) * z2;
            v_in.as_mut_slice()[base..base + f * z2]
                .copy_from_slice(&tower_out.as_slice()[s * f * z2..(s + 1) * f * z2]);
            v_in.as_mut_slice()[base + f * z2..base + (f + 1) * z2].copy_from_slice(st.s_p);
            let embed = if st.total > 0 {
                st.t as f32 / st.total as f32
            } else {
                0.0
            };
            for vslot in &mut v_in.as_mut_slice()[base + (f + 1) * z2..base + (f + 2) * z2] {
                *vslot = embed;
            }
        }
        ctx.recycle_tensor(tower_out);
        let v = self.conv_v.infer(&v_in, ctx);
        ctx.recycle_tensor(v_in);
        let mut v = bn_consuming(&self.bn_v, v, ctx);
        relu_in_place(&mut v);
        v.reshape_in_place(&[n, z2]);
        let mut m = self.lin1.infer(&v, ctx);
        ctx.recycle_tensor(v);
        relu_in_place(&mut m);
        let m2 = self.lin2.infer(&m, ctx);
        ctx.recycle_tensor(m);
        let mut m2 = m2;
        relu_in_place(&mut m2);
        let values = self.lin3.infer(&m2, ctx);
        ctx.recycle_tensor(m2);

        let out = probs
            .into_iter()
            .zip(values.as_slice())
            .map(|(probs, &value)| NetOutput { probs, value })
            .collect();
        ctx.recycle_tensor(values);
        out
    }

    /// Training-mode forward for one transition (a minibatch of one); see
    /// [`PolicyValueNet::forward_train_batch`].
    pub fn forward_train(&mut self, s_p: &[f32], s_a: &[f32], t: usize, total: usize) -> NetOutput {
        // why: invariant, not input: forward_train_batch returns one output per
        // state.
        #[allow(clippy::expect_used)]
        self.forward_train_batch(&[StateRef { s_p, s_a, t, total }])
            .pop()
            .expect("batch of one yields one output")
    }

    /// Training-mode forward over a minibatch of transitions: batch-norm
    /// uses minibatch statistics (updating running stats once), and the
    /// tape caches the whole batch for one
    /// [`PolicyValueNet::backward_batch`] call.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or mismatched map lengths.
    pub fn forward_train_batch(&mut self, states: &[StateRef<'_>]) -> Vec<NetOutput> {
        assert!(!states.is_empty(), "training batch must be non-empty");
        let z = self.config.zeta;
        let z2 = z * z;
        let n = states.len();
        for s in states {
            self.check_state(s);
        }

        let mut input = Tensor::zeros(&[n, 1, z, z]);
        for (s, st) in states.iter().enumerate() {
            input.as_mut_slice()[s * z2..(s + 1) * z2].copy_from_slice(st.s_p);
        }
        let mut h = self.conv1.forward(&input, true);
        h = self.bn1.forward(&h, true);
        h = self.relu1.forward(&h, true);
        for b in &mut self.blocks {
            h = b.forward(&h, true);
        }
        let tower_out = h;

        // --- policy head ---------------------------------------------
        let mut p = self.conv_p.forward(&tower_out, true);
        p = self.bn_p.forward(&p, true);
        p = self.relu_p.forward(&p, true);
        let p_flat = p.reshaped(&[n, 2 * z2]);
        let logits = self.fc_p.forward(&p_flat, true);
        let probs: Vec<Vec<f32>> = states
            .iter()
            .enumerate()
            .map(|(s, st)| {
                let masked: Vec<f32> = logits.as_slice()[s * z2..(s + 1) * z2]
                    .iter()
                    .zip(st.s_a)
                    .map(|(&l, &a)| l + a.max(1e-30).ln())
                    .collect();
                softmax(&masked)
            })
            .collect();

        // --- value head -----------------------------------------------
        let f = self.config.channels;
        let mut v_in = Tensor::zeros(&[n, f + 2, z, z]);
        for (s, st) in states.iter().enumerate() {
            let base = s * (f + 2) * z2;
            v_in.as_mut_slice()[base..base + f * z2]
                .copy_from_slice(&tower_out.as_slice()[s * f * z2..(s + 1) * f * z2]);
            v_in.as_mut_slice()[base + f * z2..base + (f + 1) * z2].copy_from_slice(st.s_p);
            let embed = if st.total > 0 {
                st.t as f32 / st.total as f32
            } else {
                0.0
            };
            for vslot in &mut v_in.as_mut_slice()[base + (f + 1) * z2..base + (f + 2) * z2] {
                *vslot = embed;
            }
        }
        let mut v = self.conv_v.forward(&v_in, true);
        v = self.bn_v.forward(&v, true);
        v = self.relu_v.forward(&v, true);
        let v_flat = v.reshaped(&[n, z2]);
        let mut m = self.lin1.forward(&v_flat, true);
        m = self.relu_l1.forward(&m, true);
        m = self.lin2.forward(&m, true);
        m = self.relu_l2.forward(&m, true);
        let values: Vec<f32> = self.lin3.forward(&m, true).as_slice().to_vec();

        let outputs = probs
            .iter()
            .zip(&values)
            .map(|(p, &value)| NetOutput {
                probs: p.clone(),
                value,
            })
            .collect();
        self.cache = Some(ForwardCache { probs, values });
        outputs
    }

    /// Backpropagates the A2C losses of Eqs. 5–7 for the cached forward:
    /// policy loss −ln p(a)·A with A = `reward − v` (treated as a
    /// constant), value loss (reward − v)².
    ///
    /// Gradients accumulate; call an optimizer step plus
    /// [`PolicyValueNet::zero_grad`] per update (every 30 episodes in the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics without a preceding training-mode forward.
    pub fn backward(&mut self, action: usize, reward: f32) {
        self.backward_batch(&[(action, reward)], 0.0);
    }

    /// [`PolicyValueNet::backward`] with an entropy bonus −β·H(π) added to
    /// the loss (β = 0 reproduces the paper's plain A2C; positive β keeps
    /// the policy from collapsing early — an ablatable extension).
    ///
    /// # Panics
    ///
    /// Panics without a preceding training-mode forward.
    pub fn backward_with_entropy(&mut self, action: usize, reward: f32, beta: f32) {
        self.backward_batch(&[(action, reward)], beta);
    }

    /// Backpropagates the summed A2C losses of a whole minibatch in one
    /// pass, matching the preceding [`PolicyValueNet::forward_train_batch`]
    /// call. `targets[s]` is the `(action, reward)` pair of sample `s`.
    ///
    /// # Panics
    ///
    /// Panics without a preceding training-mode forward or when
    /// `targets.len()` differs from the cached batch size.
    pub fn backward_batch(&mut self, targets: &[(usize, f32)], beta: f32) {
        // why: documented panic: callers must pair backward with a training
        // forward; see the `# Panics` section.
        #[allow(clippy::expect_used)]
        let cache = self
            .cache
            .take()
            .expect("backward without training forward");
        assert_eq!(
            targets.len(),
            cache.values.len(),
            "targets must match the cached batch size"
        );
        let z = self.config.zeta;
        let z2 = z * z;
        let f = self.config.channels;
        let n = targets.len();

        // --- policy head gradient -------------------------------------
        // d(−ln p_a · A)/d logits_j = A · (p_j − 1[j = a]); the s_a mask is
        // an additive constant and vanishes from the gradient. The entropy
        // term −β·H adds β·p_j·(ln p_j + H).
        let mut dlogits = vec![0.0f32; n * z2];
        for (s, &(action, reward)) in targets.iter().enumerate() {
            let probs = &cache.probs[s];
            let advantage = reward - cache.values[s];
            let entropy: f32 = probs
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| -p * p.ln())
                .sum();
            for (j, d) in dlogits[s * z2..(s + 1) * z2].iter_mut().enumerate() {
                let p = probs[j];
                *d = advantage * (p - if j == action { 1.0 } else { 0.0 });
                if beta > 0.0 && p > 0.0 {
                    *d += beta * p * (p.ln() + entropy);
                }
            }
        }
        let g = self.fc_p.backward(&Tensor::from_vec(&[n, z2], dlogits));
        let g = g.reshaped(&[n, 2, z, z]);
        let g = self.relu_p.backward(&g);
        let g = self.bn_p.backward(&g);
        let mut tower_grad = self.conv_p.backward(&g);

        // --- value head gradient ---------------------------------------
        // d(R − v)²/dv = −2(R − v) = −2A.
        let dv: Vec<f32> = targets
            .iter()
            .enumerate()
            .map(|(s, &(_, reward))| -2.0 * (reward - cache.values[s]))
            .collect();
        let g = self.lin3.backward(&Tensor::from_vec(&[n, 1], dv));
        let g = self.relu_l2.backward(&g);
        let g = self.lin2.backward(&g);
        let g = self.relu_l1.backward(&g);
        let g = self.lin1.backward(&g);
        let g = g.reshaped(&[n, 1, z, z]);
        let g = self.relu_v.backward(&g);
        let g = self.bn_v.backward(&g);
        let g = self.conv_v.backward(&g);
        // Route only the tower channels of the concat input back.
        let mut v_tower_grad = Tensor::zeros(&[n, f, z, z]);
        for s in 0..n {
            let src = s * (f + 2) * z2;
            let dst = s * f * z2;
            v_tower_grad.as_mut_slice()[dst..dst + f * z2]
                .copy_from_slice(&g.as_slice()[src..src + f * z2]);
        }
        tower_grad.add_assign(&v_tower_grad);

        // --- trunk -------------------------------------------------------
        let mut g = tower_grad;
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        let g = self.relu1.backward(&g);
        let g = self.bn1.backward(&g);
        let _ = self.conv1.backward(&g);
    }

    /// Visits every trainable parameter (optimizer + checkpoint hook).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.conv_p.visit_params(f);
        self.bn_p.visit_params(f);
        self.fc_p.visit_params(f);
        self.conv_v.visit_params(f);
        self.bn_v.visit_params(f);
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
        self.lin3.visit_params(f);
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

impl ResBlock {
    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.relu_out.backward(grad);
        let mut gx = self.bn_b.backward(&g);
        gx = self.conv_b.backward(&gx);
        gx = self.relu_a.backward(&gx);
        gx = self.bn_a.backward(&gx);
        let mut gi = self.conv_a.backward(&gx);
        gi.add_assign(&g); // skip path
        gi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> PolicyValueNet {
        PolicyValueNet::new(AgentConfig {
            zeta: 4,
            channels: 4,
            res_blocks: 1,
            seed: 7,
        })
    }

    fn uniform_state(z2: usize) -> (Vec<f32>, Vec<f32>) {
        (vec![0.3; z2], vec![1.0; z2])
    }

    #[test]
    fn forward_produces_distribution() {
        let net = tiny_net();
        let mut ctx = InferenceCtx::new();
        let (s_p, s_a) = uniform_state(16);
        let out = net.forward(&s_p, &s_a, 0, 5, &mut ctx);
        let sum: f32 = out.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(out.probs.iter().all(|&p| p >= 0.0));
        assert!(out.value.is_finite());
    }

    #[test]
    fn mask_zeroes_unavailable_cells() {
        let net = tiny_net();
        let mut ctx = InferenceCtx::new();
        let s_p = vec![0.3; 16];
        let mut s_a = vec![1.0; 16];
        s_a[3] = 0.0;
        s_a[9] = 0.0;
        let out = net.forward(&s_p, &s_a, 0, 5, &mut ctx);
        assert!(out.probs[3] < 1e-12);
        assert!(out.probs[9] < 1e-12);
        let sum: f32 = out.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn availability_scales_probabilities() {
        // Identical logits: probs must be proportional to s_a.
        let net = tiny_net();
        let mut ctx = InferenceCtx::new();
        let s_p = vec![0.0; 16];
        let mut s_a = vec![0.5; 16];
        s_a[0] = 1.0;
        let out = net.forward(&s_p, &s_a, 0, 5, &mut ctx);
        // p_0 / p_j for equal logits should approach s_a ratio 2.0 —
        // logits are not exactly equal, so just check the direction
        // strongly holds on average.
        let rest_avg: f32 = out.probs[1..].iter().sum::<f32>() / 15.0;
        assert!(out.probs[0] > rest_avg, "{} vs {}", out.probs[0], rest_avg);
    }

    #[test]
    fn value_depends_on_position_embedding() {
        let net = tiny_net();
        let mut ctx = InferenceCtx::new();
        let (s_p, s_a) = uniform_state(16);
        let v0 = net.forward(&s_p, &s_a, 0, 10, &mut ctx).value;
        let v9 = net.forward(&s_p, &s_a, 9, 10, &mut ctx).value;
        assert_ne!(v0, v9, "t-embedding must reach the value head");
    }

    #[test]
    fn serde_round_trip_is_bitwise() {
        // The checkpoint subsystem persists the net as JSON; bitwise resume
        // requires the weights to survive exactly. PolicyValueNet has no
        // PartialEq (the `#[serde(skip)]` forward cache makes one
        // misleading), so compare the canonical JSON forms and the forward
        // outputs, both of which cover every serialized weight.
        let mut net = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        // A training pass populates the skipped forward cache; it must be
        // dropped on save, not corrupt the payload.
        let _ = net.forward_train(&s_p, &s_a, 1, 5);
        let json = serde_json::to_string(&net).expect("net serializes");
        let back: PolicyValueNet = serde_json::from_str(&json).expect("net deserializes");
        assert_eq!(
            serde_json::to_string(&back).expect("round-tripped net serializes"),
            json,
            "weights must survive serialize→deserialize bitwise"
        );
        // The restored net's cache rebuilds on first use: inference and
        // training outputs are bitwise identical to the original's.
        let mut ctx_a = InferenceCtx::new();
        let mut ctx_b = InferenceCtx::new();
        assert_eq!(
            net.forward(&s_p, &s_a, 2, 5, &mut ctx_a),
            back.forward(&s_p, &s_a, 2, 5, &mut ctx_b)
        );
        let mut back = back;
        assert_eq!(
            net.forward_train(&s_p, &s_a, 2, 5),
            back.forward_train(&s_p, &s_a, 2, 5)
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = tiny_net();
        let b = tiny_net();
        let mut ctx = InferenceCtx::new();
        let (s_p, s_a) = uniform_state(16);
        assert_eq!(
            a.forward(&s_p, &s_a, 1, 5, &mut ctx),
            b.forward(&s_p, &s_a, 1, 5, &mut ctx)
        );
    }

    #[test]
    fn batched_forward_matches_singles() {
        let net = tiny_net();
        let mut ctx = InferenceCtx::new();
        // Three distinct states.
        let states: Vec<(Vec<f32>, Vec<f32>, usize)> = (0..3)
            .map(|k| {
                let s_p: Vec<f32> = (0..16).map(|i| ((i + k) % 4) as f32 * 0.25).collect();
                let mut s_a = vec![1.0f32; 16];
                s_a[k] = 0.0;
                (s_p, s_a, k)
            })
            .collect();
        let refs: Vec<StateRef<'_>> = states
            .iter()
            .map(|(s_p, s_a, t)| StateRef {
                s_p,
                s_a,
                t: *t,
                total: 5,
            })
            .collect();
        let batched = net.forward_batch(&refs, &mut ctx);
        for (k, (s_p, s_a, t)) in states.iter().enumerate() {
            let single = net.forward(s_p, s_a, *t, 5, &mut ctx);
            // Per-state outputs are fully independent (inference BN uses
            // running stats), so batching must not change a single bit.
            assert_eq!(
                single.value.to_bits(),
                batched[k].value.to_bits(),
                "value {k}: {} vs {}",
                single.value,
                batched[k].value
            );
            for (a, b) in single.probs.iter().zip(&batched[k].probs) {
                assert_eq!(a.to_bits(), b.to_bits(), "probs {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn parallel_batch_is_bitwise_identical_and_alloc_free_after_warmup() {
        let net = tiny_net();
        // Large enough to trigger the parallel path (2·PAR_MIN_CHUNK).
        let states: Vec<(Vec<f32>, Vec<f32>, usize)> = (0..10)
            .map(|k| {
                let s_p: Vec<f32> = (0..16).map(|i| ((i + k) % 5) as f32 * 0.2).collect();
                let mut s_a = vec![1.0f32; 16];
                s_a[k] = 0.0;
                (s_p, s_a, k)
            })
            .collect();
        let refs: Vec<StateRef<'_>> = states
            .iter()
            .map(|(s_p, s_a, t)| StateRef {
                s_p,
                s_a,
                t: *t,
                total: 12,
            })
            .collect();
        let mut seq_ctx = InferenceCtx::new();
        let want = net.forward_batch(&refs, &mut seq_ctx);
        for workers in [2usize, 4] {
            let pool = mmp_pool::ThreadPool::try_new(workers).unwrap();
            let mut ctx = InferenceCtx::new().with_exec(pool);
            let got = net.forward_batch(&refs, &mut ctx);
            for (k, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "w={workers} value {k}"
                );
                for (x, y) in a.probs.iter().zip(&b.probs) {
                    assert_eq!(x.to_bits(), y.to_bits(), "w={workers} probs {k}");
                }
            }
            // The caller's ctx keeps the per-worker sub-contexts warm:
            // repeat calls must not heap-allocate a single buffer.
            let warm = ctx.fresh_allocations();
            assert!(warm > 0, "warm-up must have populated the pools");
            for _ in 0..3 {
                let again = net.forward_batch(&refs, &mut ctx);
                assert_eq!(again.len(), want.len());
                assert_eq!(
                    ctx.fresh_allocations(),
                    warm,
                    "w={workers}: parallel path allocated after warm-up"
                );
            }
        }
    }

    #[test]
    fn empty_batch_yields_no_outputs() {
        let net = tiny_net();
        let mut ctx = InferenceCtx::new();
        assert!(net.forward_batch(&[], &mut ctx).is_empty());
    }

    #[test]
    fn training_step_increases_chosen_action_probability() {
        // One-state bandit: positive advantage on action 5 must raise p[5].
        let mut net = tiny_net();
        let mut ctx = InferenceCtx::new();
        let (s_p, s_a) = uniform_state(16);
        let mut opt = mmp_nn::Sgd::new(0.005, 0.0);
        let before = net.forward(&s_p, &s_a, 0, 5, &mut ctx).probs[5];
        for _ in 0..25 {
            let out = net.forward_train(&s_p, &s_a, 0, 5);
            // reward chosen so the advantage is clearly positive
            net.backward(5, out.value + 1.0);
            use mmp_nn::Optimizer;
            opt.begin_step();
            net.visit_params(&mut |p| opt.update(p));
            net.zero_grad();
        }
        let after = net.forward(&s_p, &s_a, 0, 5, &mut ctx).probs[5];
        assert!(
            after > before,
            "p[5] should grow: before {before}, after {after}"
        );
    }

    #[test]
    fn value_regresses_toward_reward() {
        let mut net = tiny_net();
        let mut ctx = InferenceCtx::new();
        let (s_p, s_a) = uniform_state(16);
        let mut opt = mmp_nn::Adam::new(0.01);
        let target = 0.8f32;
        for _ in 0..60 {
            let out = net.forward_train(&s_p, &s_a, 2, 5);
            // Use a never-chosen action irrelevant for value learning.
            net.backward(0, target);
            use mmp_nn::Optimizer;
            opt.begin_step();
            net.visit_params(&mut |p| opt.update(p));
            net.zero_grad();
            let _ = out;
        }
        let v = net.forward(&s_p, &s_a, 2, 5, &mut ctx).value;
        assert!(
            (v - target).abs() < 0.3,
            "value {v} should approach {target}"
        );
    }

    #[test]
    fn batched_update_gradients_match_summed_singles() {
        // With batch-norm minibatch statistics the forward activations
        // differ between batched and looped updates, but the batched
        // gradient must still match the sum of single-sample gradients
        // computed at the *same* activations — verified here on a
        // one-sample batch, where the two paths coincide exactly.
        let mut a = tiny_net();
        let mut b = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        let _ = a.forward_train(&s_p, &s_a, 0, 5);
        a.backward(3, 0.7);
        let _ = b.forward_train_batch(&[StateRef {
            s_p: &s_p,
            s_a: &s_a,
            t: 0,
            total: 5,
        }]);
        b.backward_batch(&[(3, 0.7)], 0.0);
        let mut ga = Vec::new();
        a.visit_params(&mut |p| ga.extend_from_slice(p.grad.as_slice()));
        let mut gb = Vec::new();
        b.visit_params(&mut |p| gb.extend_from_slice(p.grad.as_slice()));
        assert_eq!(ga.len(), gb.len());
        for (x, y) in ga.iter().zip(&gb) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn batched_training_learns_the_bandit_too() {
        // The batched update path must be able to do what the looped path
        // does: raise the probability of a positively-advantaged action.
        let mut net = tiny_net();
        let mut ctx = InferenceCtx::new();
        let (s_p, s_a) = uniform_state(16);
        let mut opt = mmp_nn::Sgd::new(0.005, 0.0);
        let before = net.forward(&s_p, &s_a, 0, 5, &mut ctx).probs[5];
        let sref = StateRef {
            s_p: &s_p,
            s_a: &s_a,
            t: 0,
            total: 5,
        };
        for _ in 0..10 {
            let outs = net.forward_train_batch(&[sref, sref, sref]);
            let targets: Vec<(usize, f32)> = outs.iter().map(|o| (5, o.value + 1.0)).collect();
            net.backward_batch(&targets, 0.0);
            use mmp_nn::Optimizer;
            opt.begin_step();
            net.visit_params(&mut |p| opt.update(p));
            net.zero_grad();
        }
        let after = net.forward(&s_p, &s_a, 0, 5, &mut ctx).probs[5];
        assert!(
            after > before,
            "p[5] should grow: before {before}, after {after}"
        );
    }

    #[test]
    #[should_panic(expected = "targets must match")]
    fn target_count_mismatch_panics() {
        let mut net = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        let _ = net.forward_train(&s_p, &s_a, 0, 5);
        net.backward_batch(&[(0, 0.0), (1, 0.0)], 0.0);
    }

    #[test]
    fn paper_config_matches_table_i() {
        let cfg = AgentConfig::paper();
        assert_eq!((cfg.zeta, cfg.channels, cfg.res_blocks), (16, 128, 10));
        // The paper-scale network is constructible (forward is exercised at
        // tiny scale to keep tests fast).
        let net = PolicyValueNet::new(AgentConfig::tiny(16));
        assert_eq!(net.config().zeta, 16);
    }

    #[test]
    #[should_panic(expected = "backward without training forward")]
    fn backward_needs_training_forward() {
        let mut net = tiny_net();
        let mut ctx = InferenceCtx::new();
        let (s_p, s_a) = uniform_state(16);
        let _ = net.forward(&s_p, &s_a, 0, 5, &mut ctx);
        net.backward(0, 1.0);
    }

    #[test]
    fn entropy_bonus_keeps_the_policy_flatter() {
        // Controlled comparison at zero advantage (reward == value): the
        // only weight-gradient is the entropy term, so a larger beta must
        // end with a flatter (higher-entropy) policy. BatchNorm running
        // stats drift identically in both runs, so the comparison isolates
        // the entropy gradient.
        let entropy_of = |probs: &[f32]| -> f32 {
            probs
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| -p * p.ln())
                .sum()
        };
        let run = |beta: f32| -> f32 {
            use mmp_nn::Optimizer;
            let mut net = tiny_net();
            let mut ctx = InferenceCtx::new();
            let (s_p, s_a) = uniform_state(16);
            let mut opt = mmp_nn::Sgd::new(0.01, 0.0);
            for _ in 0..60 {
                let out = net.forward_train(&s_p, &s_a, 0, 5);
                net.backward_with_entropy(5, out.value, beta); // advantage 0
                opt.begin_step();
                net.visit_params(&mut |p| opt.update(p));
                net.zero_grad();
            }
            entropy_of(&net.forward(&s_p, &s_a, 0, 5, &mut ctx).probs)
        };
        let plain = run(0.0);
        let regularized = run(0.5);
        assert!(
            regularized > plain,
            "entropy bonus should flatten the policy: {regularized} vs {plain}"
        );
    }

    #[test]
    fn parameter_count_scales_with_config() {
        let mut small = PolicyValueNet::new(AgentConfig {
            zeta: 4,
            channels: 4,
            res_blocks: 1,
            seed: 0,
        });
        let mut big = PolicyValueNet::new(AgentConfig {
            zeta: 4,
            channels: 8,
            res_blocks: 2,
            seed: 0,
        });
        let count = |n: &mut PolicyValueNet| {
            let mut c = 0usize;
            n.visit_params(&mut |p| c += p.value.len());
            c
        };
        assert!(count(&mut big) > count(&mut small));
    }
}
