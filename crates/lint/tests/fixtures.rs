//! Fixture tests: for every rule R1–R10, one snippet that fires, one
//! that is clean, and one that is suppressed with a `why:` justification
//! (plus, for the semantic rules, baseline-grandfathering coverage).

use mmp_lint::{
    baseline, lint_source, Finding, LintConfig, ALLOW_WHY, CAST_TRUNCATION, FLOAT_REDUCTION,
    FS_ROUTE, HASH_ORDER, PANIC_PATH, PARALLELISM, PARTIAL_CMP, RNG_SOURCE, WALLCLOCK,
};

const DECISION: &str = "crates/mcts/src/fixture.rs";
const NON_DECISION: &str = "crates/geom/src/fixture.rs";

/// The rules that arrived with the item-graph engine; the R1–R7 helpers
/// below filter them out so a `.unwrap()` inside an R7 fixture doesn't
/// perturb that fixture's expected findings.
const SEMANTIC: &[&str] = &[PANIC_PATH, FLOAT_REDUCTION, CAST_TRUNCATION];

fn unsuppressed(path: &str, src: &str) -> Vec<(String, usize)> {
    lint_source(path, src, &LintConfig::default())
        .into_iter()
        .filter(|f| !f.suppressed && !SEMANTIC.contains(&f.rule.as_str()))
        .map(|f| (f.rule, f.line))
        .collect()
}

fn suppressed(path: &str, src: &str) -> Vec<(String, String)> {
    lint_source(path, src, &LintConfig::default())
        .into_iter()
        .filter(|f| f.suppressed && !SEMANTIC.contains(&f.rule.as_str()))
        .map(|f| (f.rule, f.why.unwrap_or_default()))
        .collect()
}

/// All findings of one semantic rule, suppressed or not.
fn rule_findings(path: &str, src: &str, rule: &str) -> Vec<Finding> {
    lint_source(path, src, &LintConfig::default())
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

/// `(kind, line)` of the unsuppressed findings of one semantic rule.
fn fired(path: &str, src: &str, rule: &str) -> Vec<(String, usize)> {
    rule_findings(path, src, rule)
        .into_iter()
        .filter(|f| !f.suppressed)
        .map(|f| (f.kind, f.line))
        .collect()
}

// --- R1: hash-order ------------------------------------------------------

#[test]
fn hash_order_fires_in_decision_crates() {
    let src = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert_eq!(unsuppressed(DECISION, src), vec![(HASH_ORDER.into(), 2)]);
    let set = "fn f() {\n    let s: HashSet<u32> = HashSet::new();\n}\n";
    assert_eq!(unsuppressed(DECISION, set), vec![(HASH_ORDER.into(), 2)]);
}

#[test]
fn hash_order_is_clean_for_btree_and_non_decision_crates() {
    let btree = "fn f() {\n    let m: BTreeMap<u32, u32> = BTreeMap::new();\n}\n";
    assert!(unsuppressed(DECISION, btree).is_empty());
    // The same HashMap is fine outside decision crates...
    let hash = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert!(unsuppressed(NON_DECISION, hash).is_empty());
    // ... and `use` declarations alone never fire.
    let use_only = "use std::collections::HashMap;\n";
    assert!(unsuppressed(DECISION, use_only).is_empty());
    // String literals and comments are not code.
    let quoted = "fn f() {\n    let s = \"HashMap\"; // HashMap in prose\n}\n";
    assert!(unsuppressed(DECISION, quoted).is_empty());
}

#[test]
fn hash_order_suppression_with_why_is_honoured() {
    let src = "fn f() {\n    // mmp-lint: allow(hash-order) why: lookup only, never iterated\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert!(unsuppressed(DECISION, src).is_empty());
    assert_eq!(
        suppressed(DECISION, src),
        vec![(HASH_ORDER.into(), "lookup only, never iterated".into())]
    );
}

// --- R2: partial-cmp -----------------------------------------------------

#[test]
fn partial_cmp_fires_everywhere() {
    let src = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, src),
        vec![(PARTIAL_CMP.into(), 2)]
    );
}

#[test]
fn total_cmp_is_clean() {
    let src = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert!(unsuppressed(NON_DECISION, src).is_empty());
}

#[test]
fn partial_cmp_suppression_with_why_is_honoured() {
    let src = "fn f(v: &mut [f64]) {\n    // mmp-lint: allow(partial-cmp) why: inputs are integers widened to f64, NaN impossible\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    assert!(unsuppressed(NON_DECISION, src).is_empty());
}

// --- R3: wallclock -------------------------------------------------------

#[test]
fn wallclock_fires_outside_sanctioned_modules() {
    let src =
        "fn f() {\n    let t = Instant::now();\n    let s = std::time::SystemTime::now();\n}\n";
    assert_eq!(
        unsuppressed(DECISION, src),
        vec![(WALLCLOCK.into(), 2), (WALLCLOCK.into(), 3)]
    );
}

#[test]
fn wallclock_is_clean_in_sanctioned_modules() {
    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    assert!(unsuppressed("crates/obs/src/lib.rs", src).is_empty());
    assert!(unsuppressed("crates/core/src/budget.rs", src).is_empty());
    assert!(unsuppressed("crates/bench/src/bin/ablations.rs", src).is_empty());
    // `Instant` in a type position is fine anywhere.
    let ty = "fn f(deadline: Option<Instant>) -> bool {\n    deadline.is_some()\n}\n";
    assert!(unsuppressed(DECISION, ty).is_empty());
}

#[test]
fn wallclock_suppression_with_why_is_honoured() {
    let src = "fn f() {\n    // mmp-lint: allow(wallclock) why: budget-deadline probe, degrades deterministically\n    let t = Instant::now();\n}\n";
    assert!(unsuppressed(DECISION, src).is_empty());
}

// --- R4: rng-source ------------------------------------------------------

#[test]
fn rng_source_fires_on_os_seeded_randomness() {
    let src = "fn f() {\n    let mut rng = thread_rng();\n    let x: f64 = rand::random();\n    let s = RandomState::new();\n}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, src),
        vec![
            (RNG_SOURCE.into(), 2),
            (RNG_SOURCE.into(), 3),
            (RNG_SOURCE.into(), 4)
        ]
    );
}

#[test]
fn seeded_rng_is_clean() {
    let src =
        "fn f() {\n    let mut rng = SmallRng::seed_from_u64(7);\n    let x: f64 = rng.gen();\n}\n";
    assert!(unsuppressed(NON_DECISION, src).is_empty());
}

#[test]
fn rng_source_suppression_with_why_is_honoured() {
    let src = "fn f() {\n    // mmp-lint: allow(rng-source) why: fixture exercising the OS entropy path itself\n    let mut rng = thread_rng();\n}\n";
    assert!(unsuppressed(NON_DECISION, src).is_empty());
}

// --- R5: allow-why -------------------------------------------------------

#[test]
fn allow_of_denied_lint_without_why_fires() {
    let src = "#[allow(clippy::unwrap_used)]\nfn f() {}\n";
    assert_eq!(unsuppressed(NON_DECISION, src), vec![(ALLOW_WHY.into(), 1)]);
    // Inner attributes are covered too.
    let inner = "#![allow(clippy::print_stdout)]\nfn f() {}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, inner),
        vec![(ALLOW_WHY.into(), 1)]
    );
}

#[test]
fn allow_with_adjacent_why_is_clean() {
    // Trailing on the attribute line.
    let trailing = "#[allow(clippy::unwrap_used)] // why: invariant, not input\nfn f() {}\n";
    assert!(unsuppressed(NON_DECISION, trailing).is_empty());
    // In the contiguous comment block directly above.
    let above = "// why: invariant, not input: the slice is non-empty by construction\n#[allow(clippy::expect_used)]\nfn f() {}\n";
    assert!(unsuppressed(NON_DECISION, above).is_empty());
    // Allows of lints that are not denied need no justification.
    let benign = "#[allow(clippy::too_many_arguments)]\nfn f() {}\n";
    assert!(unsuppressed(NON_DECISION, benign).is_empty());
}

#[test]
fn allow_why_directive_is_self_satisfying() {
    // A directive targeting allow-why is self-defeating by design: its own
    // `why:` text sits adjacent to the attribute, which already satisfies
    // R5, so the rule never fires and the directive is flagged as unused.
    // The justification requirement is met either way — there is no path
    // to an unjustified denied-lint allow.
    let src = "// mmp-lint: allow(allow-why) why: justification lives in the module docs\n#[allow(clippy::unwrap_used)]\nfn f() {}\n";
    let rules = unsuppressed(NON_DECISION, src);
    assert_eq!(rules, vec![("suppression".into(), 1)]);
}

// --- suppression meta rule -----------------------------------------------

#[test]
fn malformed_and_unused_suppressions_are_findings() {
    let missing_why = "// mmp-lint: allow(hash-order)\nfn f() {}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, missing_why),
        vec![("suppression".into(), 1)]
    );
    let unknown_rule = "// mmp-lint: allow(made-up) why: x\nfn f() {}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, unknown_rule),
        vec![("suppression".into(), 1)]
    );
    let unused = "// mmp-lint: allow(wallclock) why: nothing here uses the clock\nfn f() {}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, unused),
        vec![("suppression".into(), 1)]
    );
}

#[test]
fn suppressions_only_reach_their_own_and_next_line() {
    let too_far = "fn f() {\n    // mmp-lint: allow(wallclock) why: too far away\n\n    let t = Instant::now();\n}\n";
    let rules: Vec<_> = unsuppressed(DECISION, too_far);
    // The finding stays unsuppressed and the directive is flagged unused.
    assert!(rules.iter().any(|(r, _)| r == WALLCLOCK));
    assert!(rules.iter().any(|(r, _)| r == "suppression"));
}

// --- R6: parallelism -----------------------------------------------------

#[test]
fn available_parallelism_fires_outside_sanctioned_paths() {
    let src =
        "fn f() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
    assert_eq!(unsuppressed(DECISION, src), vec![(PARALLELISM.into(), 2)]);
    assert_eq!(
        unsuppressed(NON_DECISION, src),
        vec![(PARALLELISM.into(), 2)]
    );
}

#[test]
fn available_parallelism_is_clean_in_pool_and_bench() {
    let src =
        "fn f() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
    assert!(unsuppressed("crates/pool/src/lib.rs", src).is_empty());
    assert!(unsuppressed("crates/bench/src/bin/compute.rs", src).is_empty());
    // Prose mentions are not code.
    let quoted =
        "fn f() {\n    let s = \"available_parallelism\"; // available_parallelism in prose\n}\n";
    assert!(unsuppressed(DECISION, quoted).is_empty());
}

// --- R7: fs-route --------------------------------------------------------

const ROUTED: &str = "crates/ckpt/src/fixture.rs";

#[test]
fn fs_mutations_fire_in_routed_crates() {
    let src = "fn f(p: &Path) {\n    std::fs::write(p, b\"x\").unwrap();\n    fs::rename(p, p).unwrap();\n}\n";
    assert_eq!(
        unsuppressed(ROUTED, src),
        vec![(FS_ROUTE.into(), 2), (FS_ROUTE.into(), 3)]
    );
    // Writable handles opened around the chokepoint count too.
    let handle = "fn f(p: &Path) {\n    let _ = File::create(p);\n    let _ = OpenOptions::new().write(true).open(p);\n}\n";
    assert_eq!(
        unsuppressed("crates/serve/src/fixture.rs", handle),
        vec![(FS_ROUTE.into(), 2), (FS_ROUTE.into(), 3)]
    );
    // Importing a mutation helper is the same evasion as calling it.
    let import = "use std::fs::write;\n";
    assert_eq!(unsuppressed(ROUTED, import), vec![(FS_ROUTE.into(), 1)]);
}

#[test]
fn fs_reads_tests_and_unrouted_crates_are_clean() {
    // Reads never need the chokepoint.
    let reads =
        "fn f(p: &Path) -> Vec<u8> {\n    let _ = fs::metadata(p);\n    fs::read(p).unwrap()\n}\n";
    assert!(unsuppressed(ROUTED, reads).is_empty());
    // The same mutation is fine outside the routed crates...
    let write = "fn f(p: &Path) {\n    std::fs::write(p, b\"x\").unwrap();\n}\n";
    assert!(unsuppressed(NON_DECISION, write).is_empty());
    // ... and inside the trailing unit-test module, where tests tamper
    // with files on purpose to exercise recovery.
    let in_tests =
        "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(p: &Path) {\n        std::fs::write(p, b\"torn\").unwrap();\n    }\n}\n";
    assert!(unsuppressed(ROUTED, in_tests).is_empty());
}

#[test]
fn fs_route_suppression_with_why_is_honoured() {
    let src = "fn f(p: &Path) {\n    // mmp-lint: allow(fs-route) why: test-only tamper helper behind cfg(test)\n    std::fs::write(p, b\"x\").unwrap();\n}\n";
    assert!(unsuppressed(ROUTED, src).is_empty());
    assert_eq!(
        suppressed(ROUTED, src),
        vec![(
            FS_ROUTE.into(),
            "test-only tamper helper behind cfg(test)".into()
        )]
    );
}

#[test]
fn parallelism_suppression_with_why_is_honoured() {
    let src = "fn f() -> usize {\n    // mmp-lint: allow(parallelism) why: report-only, never partitions work\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
    assert!(unsuppressed(DECISION, src).is_empty());
    assert_eq!(
        suppressed(DECISION, src),
        vec![(
            PARALLELISM.into(),
            "report-only, never partitions work".into()
        )]
    );
}

// --- R8: panic-path ------------------------------------------------------

const SERVE: &str = "crates/serve/src/fixture.rs";

#[test]
fn panic_sites_fire_with_their_kinds() {
    let src = "fn f(v: &[u32], o: Option<u32>) -> u32 {\n\
               \x20   let a = o.unwrap();\n\
               \x20   let b = o.expect(\"set\");\n\
               \x20   assert!(a < 10);\n\
               \x20   if a > b { panic!(\"bad\") }\n\
               \x20   v[0]\n\
               }\n";
    assert_eq!(
        fired(SERVE, src, PANIC_PATH),
        vec![
            ("unwrap".into(), 2),
            ("expect".into(), 3),
            ("assert".into(), 4),
            ("panic".into(), 5),
            ("index".into(), 6),
        ]
    );
}

#[test]
fn panic_path_skips_tests_bins_and_unscoped_code() {
    let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    // Binary roots may panic: a CLI's broken invariant should abort.
    assert!(fired("crates/serve/src/bin/mmpd.rs", src, PANIC_PATH).is_empty());
    assert!(fired("crates/serve/src/main.rs", src, PANIC_PATH).is_empty());
    // Crates outside the library scope (the lint tool itself, bench).
    assert!(fired("crates/bench/src/report.rs", src, PANIC_PATH).is_empty());
    // Unit tests unwrap by design.
    let in_tests = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(o: Option<u32>) {\n        o.unwrap();\n        assert_eq!(1, 1);\n    }\n}\n";
    assert!(fired(SERVE, in_tests, PANIC_PATH).is_empty());
    // debug_assert! is compiled out of release builds; attribute and
    // macro brackets are not slice indexing; unwrap_or is total.
    let clean = "fn f(v: &[u32], o: Option<u32>) -> u32 {\n\
                 \x20   debug_assert!(!v.is_empty());\n\
                 \x20   let x = vec![1, 2];\n\
                 \x20   o.unwrap_or(0) + v.first().copied().unwrap_or_default() + x.len() as u32\n\
                 }\n#[derive(Clone)]\nstruct S;\n";
    assert!(fired(SERVE, clean, PANIC_PATH).is_empty());
}

#[test]
fn panic_path_reports_the_chain_from_daemon_serve() {
    // A pre-sweep shape of the daemon: serve -> handle_request -> a
    // helper that unwraps a malformed-input Option. The chain names
    // every hop so the report is actionable without opening the file.
    let src = "impl Daemon {\n\
               \x20   pub fn serve(&self) {\n\
               \x20       self.handle_request();\n\
               \x20   }\n\
               \x20   fn handle_request(&self) {\n\
               \x20       decode_header(b\"x\");\n\
               \x20   }\n\
               }\n\
               fn decode_header(b: &[u8]) -> u8 {\n\
               \x20   let first = b.first().copied();\n\
               \x20   first.unwrap()\n\
               }\n";
    let hits = rule_findings(SERVE, src, PANIC_PATH);
    let unwrap_site = hits
        .iter()
        .find(|f| f.kind == "unwrap")
        .expect("unwrap site found");
    assert_eq!(
        unwrap_site.call_chain,
        vec![
            "mmp_serve::fixture::Daemon::serve",
            "mmp_serve::fixture::Daemon::handle_request",
            "mmp_serve::fixture::decode_header",
        ],
        "shortest chain from the entrypoint, entrypoint first"
    );
    assert_eq!(unwrap_site.item, "mmp_serve::fixture::decode_header");
}

#[test]
fn unreachable_panic_sites_have_empty_chains() {
    let src = "fn helper(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let hits = rule_findings(SERVE, src, PANIC_PATH);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].call_chain.is_empty());
}

#[test]
fn panic_path_suppression_with_why_is_honoured() {
    let src = "fn f(v: &[u32]) -> u32 {\n    // mmp-lint: allow(panic-path) why: index bounded by the loop above\n    v[0]\n}\n";
    assert!(fired(SERVE, src, PANIC_PATH).is_empty());
    let hits = rule_findings(SERVE, src, PANIC_PATH);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].suppressed);
}

// --- R9: float-reduction -------------------------------------------------

#[test]
fn float_reductions_fire() {
    let src = "fn f(v: &[f64], w: &[f32]) -> f64 {\n\
               \x20   let a: f64 = v.iter().sum::<f64>();\n\
               \x20   let b = w.iter().copied().sum::<f32>();\n\
               \x20   let c = v.iter().fold(0.0, |acc, x| acc + x);\n\
               \x20   let d = v.iter().copied().reduce(|acc, x| acc + x);\n\
               \x20   a + f64::from(b) + c + d.unwrap_or(0.0)\n\
               }\n";
    assert_eq!(
        fired(DECISION, src, FLOAT_REDUCTION),
        vec![
            ("sum".into(), 2),
            ("sum".into(), 3),
            ("fold".into(), 4),
            ("reduce".into(), 5),
        ]
    );
}

#[test]
fn integer_and_order_insensitive_reductions_are_clean() {
    let src = "fn f(v: &[u64]) -> u64 {\n\
               \x20   let a: u64 = v.iter().sum::<u64>();\n\
               \x20   let b = v.iter().fold(0u64, |acc, x| acc + x);\n\
               \x20   let m = v.iter().fold(0u64, |acc, x| acc.max(*x));\n\
               \x20   a + b + m\n\
               }\n";
    assert!(fired(DECISION, src, FLOAT_REDUCTION).is_empty());
}

#[test]
fn pool_and_tests_are_sanctioned_for_float_reduction() {
    let src = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
    // The pool implements the fixed-chunk reductions themselves.
    assert!(fired("crates/pool/src/lib.rs", src, FLOAT_REDUCTION).is_empty());
    let in_tests = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(v: &[f64]) -> f64 {\n        v.iter().sum::<f64>()\n    }\n}\n";
    assert!(fired(DECISION, in_tests, FLOAT_REDUCTION).is_empty());
}

#[test]
fn float_reduction_suppression_with_why_is_honoured() {
    let src = "fn f(v: &[f64]) -> f64 {\n    // mmp-lint: allow(float-reduction) why: sequential by contract, feeds the solver\n    v.iter().sum::<f64>()\n}\n";
    assert!(fired(DECISION, src, FLOAT_REDUCTION).is_empty());
    let hits = rule_findings(DECISION, src, FLOAT_REDUCTION);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].suppressed);
}

// --- R10: cast-truncation ------------------------------------------------

#[test]
fn narrowing_casts_fire_in_scoped_crates() {
    let src = "fn f(x: usize, y: f64) -> u32 {\n\
               \x20   let a = x as u32;\n\
               \x20   let b = y as usize;\n\
               \x20   a + b as u32\n\
               }\n";
    assert_eq!(
        fired(NON_DECISION, src, CAST_TRUNCATION),
        vec![("u32".into(), 2), ("usize".into(), 3), ("u32".into(), 4),]
    );
    assert!(!fired("crates/netlist/src/fixture.rs", src, CAST_TRUNCATION).is_empty());
    assert!(!fired("crates/legal/src/fixture.rs", src, CAST_TRUNCATION).is_empty());
}

#[test]
fn benign_casts_and_unscoped_crates_are_clean() {
    // Widening to f64 never truncates an index; literal casts show
    // their value; unscoped crates are not the rule's business.
    let src = "fn f(x: u32) -> f64 {\n    let k = 7 as u32;\n    f64::from(x) + x as f64 + f64::from(k)\n}\n";
    assert!(fired(NON_DECISION, src, CAST_TRUNCATION).is_empty());
    let narrowing = "fn f(x: usize) -> u32 { x as u32 }\n";
    assert!(fired(DECISION, narrowing, CAST_TRUNCATION).is_empty());
}

#[test]
fn cast_truncation_suppression_with_why_is_honoured() {
    let src = "fn f(x: usize) -> u32 {\n    // mmp-lint: allow(cast-truncation) why: grid dims are u16-bounded at parse\n    x as u32\n}\n";
    assert!(fired(NON_DECISION, src, CAST_TRUNCATION).is_empty());
    let hits = rule_findings(NON_DECISION, src, CAST_TRUNCATION);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].suppressed);
}

// --- baseline grandfathering over real findings --------------------------

#[test]
fn baseline_grandfathers_old_sites_but_not_new_ones() {
    let old = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let base = baseline::compute(&lint_source(SERVE, old, &LintConfig::default()));

    // Same file later: the old site moved (different line) and a second
    // unwrap appeared in another fn. Only the second is new.
    let grown = "\nfn f(o: Option<u32>) -> u32 { o.unwrap() }\n\
                 fn g(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let mut findings = lint_source(SERVE, grown, &LintConfig::default());
    baseline::mark(&mut findings, &base);
    let news: Vec<_> = findings
        .iter()
        .filter(|f| !f.suppressed && !f.baselined)
        .collect();
    assert_eq!(news.len(), 1);
    assert_eq!(news[0].item, "mmp_serve::fixture::g");

    // Fixing the extra site makes --deny-new clean again even though
    // the surviving site sits on a different line than when baselined.
    let mut shrunk = lint_source(
        SERVE,
        "\n\nfn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
        &LintConfig::default(),
    );
    baseline::mark(&mut shrunk, &base);
    assert!(shrunk.iter().all(|f| f.suppressed || f.baselined));
}
