//! Coordinate assignments and HPWL scoring.

use crate::design::Design;
use crate::ids::{CellId, MacroId, NodeRef};
use crate::orientation::Orientation;
use mmp_geom::{BoundingBox, Point, Rect};
use serde::{Deserialize, Serialize};

/// A full coordinate assignment for a design: one **center** position per
/// macro and per cell. Pads are fixed in the [`Design`] itself.
///
/// Positions of preplaced macros are kept in sync with their fixed centers
/// by [`Placement::initial`] and must not be moved (the setters debug-assert
/// this).
///
/// # Example
///
/// ```
/// use mmp_netlist::{DesignBuilder, NodeRef, Placement};
/// use mmp_geom::{Point, Rect};
///
/// # fn main() -> Result<(), mmp_netlist::BuildDesignError> {
/// let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 10.0, 10.0));
/// let m = b.add_macro("m", 2.0, 2.0, "");
/// let p = b.add_pad("p", Point::new(0.0, 0.0));
/// b.add_net("n", [(m.into(), Point::ORIGIN), (p.into(), Point::ORIGIN)], 1.0)?;
/// let d = b.build()?;
/// let mut pl = Placement::initial(&d);
/// pl.set_macro_center(m, Point::new(3.0, 4.0));
/// assert_eq!(pl.hpwl(&d), 7.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    macro_centers: Vec<Point>,
    cell_centers: Vec<Point>,
    /// One orientation per macro (default N); extension over the paper,
    /// see [`crate::orientation`].
    #[serde(default)]
    macro_orientations: Vec<Orientation>,
}

impl Placement {
    /// The canonical starting placement: preplaced macros at their fixed
    /// centers, everything else at the region center.
    pub fn initial(design: &Design) -> Self {
        let c = design.region().center();
        let macro_centers = design
            .macros()
            .iter()
            .map(|m| m.fixed_center.unwrap_or(c))
            .collect();
        let cell_centers = vec![c; design.cells().len()];
        Placement {
            macro_orientations: vec![Orientation::N; design.macros().len()],
            macro_centers,
            cell_centers,
        }
    }

    /// Orientation of macro `id` (N unless set).
    #[inline]
    pub fn macro_orientation(&self, id: MacroId) -> Orientation {
        self.macro_orientations
            .get(id.index())
            .copied()
            .unwrap_or_default()
    }

    /// Sets the orientation of macro `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[inline]
    pub fn set_macro_orientation(&mut self, id: MacroId, orientation: Orientation) {
        self.macro_orientations[id.index()] = orientation;
    }

    /// Center of macro `id`.
    #[inline]
    pub fn macro_center(&self, id: MacroId) -> Point {
        self.macro_centers[id.index()]
    }

    /// Center of cell `id`.
    #[inline]
    pub fn cell_center(&self, id: CellId) -> Point {
        self.cell_centers[id.index()]
    }

    /// Moves macro `id` so its center is `p`.
    #[inline]
    pub fn set_macro_center(&mut self, id: MacroId, p: Point) {
        self.macro_centers[id.index()] = p;
    }

    /// Moves cell `id` so its center is `p`.
    #[inline]
    pub fn set_cell_center(&mut self, id: CellId, p: Point) {
        self.cell_centers[id.index()] = p;
    }

    /// Number of macro positions stored.
    #[inline]
    pub fn macro_count(&self) -> usize {
        self.macro_centers.len()
    }

    /// Number of cell positions stored.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cell_centers.len()
    }

    /// Outline rectangle of macro `id` under this placement.
    pub fn macro_rect(&self, design: &Design, id: MacroId) -> Rect {
        let m = design.macro_(id);
        Rect::centered_at(self.macro_center(id), m.width, m.height)
    }

    /// Absolute position of a pin under this placement. Macro pin offsets
    /// are transformed by the macro's orientation.
    pub fn pin_position(&self, design: &Design, node: NodeRef, offset: Point) -> Point {
        match node {
            NodeRef::Macro(id) => self.macro_center(id) + self.macro_orientation(id).apply(offset),
            NodeRef::Cell(id) => self.cell_center(id) + offset,
            NodeRef::Pad(id) => design.pad(id).position,
        }
    }

    /// HPWL of one net under this placement.
    pub fn net_hpwl(&self, design: &Design, net: crate::ids::NetId) -> f64 {
        let mut bb = BoundingBox::empty();
        for pin in &design.net(net).pins {
            bb.extend(self.pin_position(design, pin.node, pin.offset));
        }
        bb.half_perimeter()
    }

    /// Total (unweighted) HPWL over all nets — the W of Eq. 9 and the metric
    /// of Tables II and III.
    pub fn hpwl(&self, design: &Design) -> f64 {
        (0..design.nets().len())
            .map(|i| self.net_hpwl(design, crate::ids::NetId::from_index(i)))
            .sum()
    }

    /// Weight-scaled HPWL, Σ λ_n · hpwl(n).
    pub fn weighted_hpwl(&self, design: &Design) -> f64 {
        (0..design.nets().len())
            .map(|i| {
                let id = crate::ids::NetId::from_index(i);
                design.net(id).weight * self.net_hpwl(design, id)
            })
            .sum()
    }

    /// Total pairwise overlap area between macro outlines (movable and
    /// preplaced). Zero certifies a legal macro placement.
    pub fn macro_overlap_area(&self, design: &Design) -> f64 {
        let rects: Vec<Rect> = (0..design.macros().len())
            .map(|i| self.macro_rect(design, MacroId::from_index(i)))
            .collect();
        let mut total = 0.0;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                total += rects[i].overlap_area(&rects[j]);
            }
        }
        total
    }

    /// `true` when every macro outline lies inside the placement region.
    pub fn macros_inside_region(&self, design: &Design) -> bool {
        (0..design.macros().len()).all(|i| {
            design
                .region()
                .contains_rect(&self.macro_rect(design, MacroId::from_index(i)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignBuilder, NetId};

    fn two_macro_design() -> (Design, MacroId, MacroId) {
        let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m0 = b.add_macro("m0", 10.0, 10.0, "");
        let m1 = b.add_macro("m1", 10.0, 10.0, "");
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m0), Point::ORIGIN),
                (NodeRef::Macro(m1), Point::ORIGIN),
            ],
            2.0,
        )
        .unwrap();
        (b.build().unwrap(), m0, m1)
    }

    #[test]
    fn initial_placement_centers_everything() {
        let (d, m0, _) = two_macro_design();
        let pl = Placement::initial(&d);
        assert_eq!(pl.macro_center(m0), Point::new(50.0, 50.0));
        assert_eq!(pl.hpwl(&d), 0.0);
    }

    #[test]
    fn initial_respects_preplaced() {
        let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_preplaced_macro("m", 10.0, 10.0, "", Point::new(20.0, 30.0));
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        assert_eq!(pl.macro_center(m), Point::new(20.0, 30.0));
    }

    #[test]
    fn hpwl_tracks_moves_and_weights() {
        let (d, m0, m1) = two_macro_design();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m0, Point::new(0.0, 0.0));
        pl.set_macro_center(m1, Point::new(30.0, 40.0));
        assert_eq!(pl.hpwl(&d), 70.0);
        assert_eq!(pl.weighted_hpwl(&d), 140.0);
        assert_eq!(pl.net_hpwl(&d, NetId(0)), 70.0);
    }

    #[test]
    fn pin_offsets_shift_positions() {
        let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_macro("m", 10.0, 10.0, "");
        let p = b.add_pad("p", Point::new(0.0, 0.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::new(2.0, -3.0)),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m, Point::new(10.0, 10.0));
        // pin at (12, 7), pad at (0, 0) -> hpwl 19
        assert_eq!(pl.hpwl(&d), 19.0);
    }

    #[test]
    fn overlap_area_detects_collision() {
        let (d, m0, m1) = two_macro_design();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m0, Point::new(50.0, 50.0));
        pl.set_macro_center(m1, Point::new(55.0, 50.0));
        assert_eq!(pl.macro_overlap_area(&d), 50.0);
        pl.set_macro_center(m1, Point::new(65.0, 50.0));
        assert_eq!(pl.macro_overlap_area(&d), 0.0);
    }

    #[test]
    fn region_containment_check() {
        let (d, m0, _) = two_macro_design();
        let mut pl = Placement::initial(&d);
        assert!(pl.macros_inside_region(&d));
        pl.set_macro_center(m0, Point::new(1.0, 50.0)); // sticks out left
        assert!(!pl.macros_inside_region(&d));
    }

    #[test]
    fn orientation_transforms_macro_pins() {
        use crate::orientation::Orientation;
        let mut b = DesignBuilder::new("o", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_macro("m", 10.0, 10.0, "");
        let p = b.add_pad("p", Point::new(0.0, 0.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::new(4.0, 0.0)),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m, Point::new(50.0, 0.0));
        assert_eq!(pl.macro_orientation(m), Orientation::N);
        let north = pl.hpwl(&d); // pin at (54, 0) -> 54
        pl.set_macro_orientation(m, Orientation::FN);
        let flipped = pl.hpwl(&d); // pin at (46, 0) -> 46
        assert_eq!(north, 54.0);
        assert_eq!(flipped, 46.0);
        assert!(flipped < north, "flipping toward the pad shortens the net");
    }

    #[test]
    fn orientation_defaults_survive_equality() {
        let (d, _, _) = two_macro_design();
        let a = Placement::initial(&d);
        let b = Placement::initial(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn macro_rect_is_centered() {
        let (d, m0, _) = two_macro_design();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m0, Point::new(20.0, 20.0));
        assert_eq!(pl.macro_rect(&d, m0), Rect::new(15.0, 15.0, 10.0, 10.0));
    }
}
