//! Validated construction of [`Design`]s.

use crate::design::{Cell, Design, Macro, Net, Pad, Pin};
use crate::ids::{CellId, MacroId, NetId, NodeRef, PadId};
use mmp_geom::{Point, Rect};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Error produced when a design fails validation at build time.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildDesignError {
    /// The placement region has zero area.
    EmptyRegion,
    /// A net references a node id that was never added.
    DanglingPin {
        /// Name of the offending net.
        net: String,
        /// The unresolved reference.
        node: NodeRef,
    },
    /// A net has no pins at all.
    EmptyNet {
        /// Name of the offending net.
        net: String,
    },
    /// Two nodes of the same kind share a name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A node has a non-positive outline.
    InvalidOutline {
        /// Name of the offending node.
        name: String,
    },
    /// A preplaced macro's outline leaves the placement region.
    PreplacedOutsideRegion {
        /// Name of the offending macro.
        name: String,
    },
    /// A net weight is not finite-positive.
    InvalidNetWeight {
        /// Name of the offending net.
        net: String,
    },
}

impl fmt::Display for BuildDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildDesignError::EmptyRegion => write!(f, "placement region has zero area"),
            BuildDesignError::DanglingPin { net, node } => {
                write!(f, "net {net} references unknown node {node}")
            }
            BuildDesignError::EmptyNet { net } => write!(f, "net {net} has no pins"),
            BuildDesignError::DuplicateName { name } => {
                write!(f, "duplicate instance name {name}")
            }
            BuildDesignError::InvalidOutline { name } => {
                write!(f, "node {name} has a non-positive outline")
            }
            BuildDesignError::PreplacedOutsideRegion { name } => {
                write!(f, "preplaced macro {name} leaves the placement region")
            }
            BuildDesignError::InvalidNetWeight { net } => {
                write!(f, "net {net} has a non-positive or non-finite weight")
            }
        }
    }
}

impl Error for BuildDesignError {}

/// Incrementally builds a [`Design`], validating invariants at
/// [`DesignBuilder::build`].
///
/// # Example
///
/// ```
/// use mmp_netlist::{DesignBuilder, NodeRef};
/// use mmp_geom::{Point, Rect};
///
/// # fn main() -> Result<(), mmp_netlist::BuildDesignError> {
/// let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 10.0, 10.0));
/// let m = b.add_macro("m", 2.0, 2.0, "");
/// let p = b.add_pad("p", Point::new(0.0, 5.0));
/// b.add_net("n", [(m.into(), Point::ORIGIN), (p.into(), Point::ORIGIN)], 1.0)?;
/// let design = b.build()?;
/// assert_eq!(design.nets().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DesignBuilder {
    name: String,
    region: Rect,
    macros: Vec<Macro>,
    cells: Vec<Cell>,
    pads: Vec<Pad>,
    nets: Vec<Net>,
}

impl DesignBuilder {
    /// Starts a builder for a design named `name` over `region`.
    pub fn new(name: impl Into<String>, region: Rect) -> Self {
        DesignBuilder {
            name: name.into(),
            region,
            macros: Vec::new(),
            cells: Vec::new(),
            pads: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Adds a movable macro; returns its id.
    pub fn add_macro(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        hierarchy: impl Into<String>,
    ) -> MacroId {
        let id = MacroId::from_index(self.macros.len());
        self.macros.push(Macro {
            name: name.into(),
            width,
            height,
            hierarchy: hierarchy.into(),
            fixed_center: None,
        });
        id
    }

    /// Adds a preplaced (fixed) macro centred at `center`; returns its id.
    pub fn add_preplaced_macro(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        hierarchy: impl Into<String>,
        center: Point,
    ) -> MacroId {
        let id = MacroId::from_index(self.macros.len());
        self.macros.push(Macro {
            name: name.into(),
            width,
            height,
            hierarchy: hierarchy.into(),
            fixed_center: Some(center),
        });
        id
    }

    /// Adds a standard cell; returns its id.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        hierarchy: impl Into<String>,
    ) -> CellId {
        let id = CellId::from_index(self.cells.len());
        self.cells.push(Cell {
            name: name.into(),
            width,
            height,
            hierarchy: hierarchy.into(),
        });
        id
    }

    /// Adds a fixed I/O pad; returns its id.
    pub fn add_pad(&mut self, name: impl Into<String>, position: Point) -> PadId {
        let id = PadId::from_index(self.pads.len());
        self.pads.push(Pad {
            name: name.into(),
            position,
        });
        id
    }

    /// Adds a net over `(node, pin-offset)` pairs with weight `weight`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildDesignError::EmptyNet`] for a pin-less net,
    /// [`BuildDesignError::DanglingPin`] when a referenced node does not
    /// exist yet, and [`BuildDesignError::InvalidNetWeight`] for a
    /// non-positive or non-finite weight.
    pub fn add_net<I>(
        &mut self,
        name: impl Into<String>,
        pins: I,
        weight: f64,
    ) -> Result<NetId, BuildDesignError>
    where
        I: IntoIterator<Item = (NodeRef, Point)>,
    {
        let name = name.into();
        if !(weight > 0.0 && weight.is_finite()) {
            return Err(BuildDesignError::InvalidNetWeight { net: name });
        }
        let pins: Vec<Pin> = pins
            .into_iter()
            .map(|(node, offset)| Pin { node, offset })
            .collect();
        if pins.is_empty() {
            return Err(BuildDesignError::EmptyNet { net: name });
        }
        for pin in &pins {
            let ok = match pin.node {
                NodeRef::Macro(id) => id.index() < self.macros.len(),
                NodeRef::Cell(id) => id.index() < self.cells.len(),
                NodeRef::Pad(id) => id.index() < self.pads.len(),
            };
            if !ok {
                return Err(BuildDesignError::DanglingPin {
                    net: name,
                    node: pin.node,
                });
            }
        }
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net { name, pins, weight });
        Ok(id)
    }

    /// Numbers of (macros, cells, pads, nets) added so far.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (
            self.macros.len(),
            self.cells.len(),
            self.pads.len(),
            self.nets.len(),
        )
    }

    /// Validates and produces the immutable [`Design`].
    ///
    /// # Errors
    ///
    /// See [`BuildDesignError`]: empty region, duplicate names, non-positive
    /// outlines, preplaced macros escaping the region.
    pub fn build(self) -> Result<Design, BuildDesignError> {
        if self.region.is_empty() {
            return Err(BuildDesignError::EmptyRegion);
        }
        let mut seen = BTreeSet::new();
        for name in self
            .macros
            .iter()
            .map(|m| &m.name)
            .chain(self.cells.iter().map(|c| &c.name))
            .chain(self.pads.iter().map(|p| &p.name))
        {
            if !seen.insert(name.clone()) {
                return Err(BuildDesignError::DuplicateName { name: name.clone() });
            }
        }
        for m in &self.macros {
            if !(m.width > 0.0 && m.height > 0.0) {
                return Err(BuildDesignError::InvalidOutline {
                    name: m.name.clone(),
                });
            }
            if let Some(c) = m.fixed_center {
                let outline = Rect::centered_at(c, m.width, m.height);
                if !self.region.contains_rect(&outline) {
                    return Err(BuildDesignError::PreplacedOutsideRegion {
                        name: m.name.clone(),
                    });
                }
            }
        }
        for c in &self.cells {
            if !(c.width > 0.0 && c.height > 0.0) {
                return Err(BuildDesignError::InvalidOutline {
                    name: c.name.clone(),
                });
            }
        }

        let mut macro_nets = vec![Vec::new(); self.macros.len()];
        let mut cell_nets = vec![Vec::new(); self.cells.len()];
        for (i, net) in self.nets.iter().enumerate() {
            let nid = NetId::from_index(i);
            for pin in &net.pins {
                match pin.node {
                    NodeRef::Macro(id) => {
                        let list: &mut Vec<NetId> = &mut macro_nets[id.index()];
                        if list.last() != Some(&nid) {
                            list.push(nid);
                        }
                    }
                    NodeRef::Cell(id) => {
                        let list: &mut Vec<NetId> = &mut cell_nets[id.index()];
                        if list.last() != Some(&nid) {
                            list.push(nid);
                        }
                    }
                    NodeRef::Pad(_) => {}
                }
            }
        }

        Ok(Design {
            name: self.name,
            region: self.region,
            macros: self.macros,
            cells: self.cells,
            pads: self.pads,
            nets: self.nets,
            macro_nets,
            cell_nets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn empty_region_is_rejected() {
        let b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 0.0, 10.0));
        assert_eq!(b.build(), Err(BuildDesignError::EmptyRegion));
    }

    #[test]
    fn dangling_pin_is_rejected() {
        let mut b = DesignBuilder::new("d", region());
        let err = b
            .add_net("n", [(NodeRef::Macro(MacroId(0)), Point::ORIGIN)], 1.0)
            .unwrap_err();
        assert!(matches!(err, BuildDesignError::DanglingPin { .. }));
    }

    #[test]
    fn empty_net_is_rejected() {
        let mut b = DesignBuilder::new("d", region());
        let err = b.add_net("n", std::iter::empty(), 1.0).unwrap_err();
        assert_eq!(err, BuildDesignError::EmptyNet { net: "n".into() });
    }

    #[test]
    fn bad_weight_is_rejected() {
        let mut b = DesignBuilder::new("d", region());
        let m = b.add_macro("m", 1.0, 1.0, "");
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = b
                .add_net("n", [(NodeRef::Macro(m), Point::ORIGIN)], w)
                .unwrap_err();
            assert!(matches!(err, BuildDesignError::InvalidNetWeight { .. }));
        }
    }

    #[test]
    fn duplicate_names_are_rejected_across_kinds() {
        let mut b = DesignBuilder::new("d", region());
        b.add_macro("x", 1.0, 1.0, "");
        b.add_cell("x", 1.0, 1.0, "");
        let err = b.build().unwrap_err();
        assert_eq!(err, BuildDesignError::DuplicateName { name: "x".into() });
    }

    #[test]
    fn non_positive_outline_is_rejected() {
        let mut b = DesignBuilder::new("d", region());
        b.add_macro("m", 0.0, 5.0, "");
        assert!(matches!(
            b.build().unwrap_err(),
            BuildDesignError::InvalidOutline { .. }
        ));
    }

    #[test]
    fn preplaced_macro_must_fit_region() {
        let mut b = DesignBuilder::new("d", region());
        b.add_preplaced_macro("m", 10.0, 10.0, "", Point::new(99.0, 50.0));
        assert!(matches!(
            b.build().unwrap_err(),
            BuildDesignError::PreplacedOutsideRegion { .. }
        ));
    }

    #[test]
    fn duplicate_pins_on_same_net_are_deduped_in_incidence() {
        let mut b = DesignBuilder::new("d", region());
        let m = b.add_macro("m", 1.0, 1.0, "");
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::new(0.0, 0.0)),
                (NodeRef::Macro(m), Point::new(0.5, 0.0)),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        // Two pins, one incidence entry.
        assert_eq!(d.net(NetId(0)).degree(), 2);
        assert_eq!(d.nets_of_macro(m).len(), 1);
    }

    #[test]
    fn counts_track_additions() {
        let mut b = DesignBuilder::new("d", region());
        b.add_macro("m", 1.0, 1.0, "");
        b.add_cell("c", 1.0, 1.0, "");
        b.add_pad("p", Point::ORIGIN);
        assert_eq!(b.counts(), (1, 1, 1, 0));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = BuildDesignError::DuplicateName { name: "foo".into() };
        let msg = e.to_string();
        assert!(msg.contains("foo"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }
}
