//! The inference workspace: preallocated scratch buffers shared across
//! forward passes.
//!
//! Training needs `&mut self` layers (the tape caches live inside them),
//! but inference does not: weights are immutable and every intermediate is
//! scratch. [`InferenceCtx`] makes that split explicit — layers expose
//! [`Layer::infer`](crate::Layer::infer) taking `&self` weights plus a
//! `&mut InferenceCtx`, and every im2col buffer, activation plane and head
//! output is drawn from (and returned to) the context's pool instead of
//! being freshly allocated. One network can then be shared by many readers
//! (MCTS workers, batched evaluators) that each own a cheap context.
//!
//! Beyond the buffer pool, the context carries the rest of the per-caller
//! compute state:
//!
//! * the [`KernelKind`] layers should dispatch their GEMMs through
//!   (the production tiled kernels, or the scalar [`reference`
//!   kernels](crate::matmul::reference) — bitwise identical, so the switch
//!   is purely a benchmarking instrument);
//! * the deterministic [`ThreadPool`] a batched forward may fan out over;
//! * persistent **per-worker sub-contexts** so the parallel path reuses
//!   warm buffers across calls instead of allocating fresh workspaces
//!   (tracked by [`InferenceCtx::fresh_allocations`], which tests pin to
//!   assert the hot path is allocation-free after warm-up).

use crate::tensor::Tensor;
use mmp_pool::ThreadPool;

/// Which GEMM implementation [`Layer::infer`](crate::Layer::infer) paths
/// dispatch through.
///
/// Both kinds obey the summation-order contract of
/// [`matmul`](crate::matmul) and therefore produce bitwise-identical
/// outputs; [`KernelKind::Reference`] exists so benchmarks can measure the
/// scalar baseline through an unmodified forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KernelKind {
    /// Packed register-tiled kernels (production default).
    #[default]
    Tiled,
    /// Scalar reference kernels (benchmark baseline).
    Reference,
}

/// A pool of reusable `f32` buffers keyed by capacity, plus the caller's
/// kernel selection and thread-pool handle.
///
/// `take` hands out a zeroed buffer of the requested length, reusing the
/// smallest pooled allocation that fits; `recycle` returns a buffer to the
/// pool. The pool is bounded so pathological shape sequences cannot hoard
/// memory.
///
/// # Example
///
/// ```
/// use mmp_nn::InferenceCtx;
///
/// let mut ctx = InferenceCtx::new();
/// let buf = ctx.take(128);
/// assert_eq!(buf.len(), 128);
/// assert!(buf.iter().all(|&v| v == 0.0));
/// ctx.recycle(buf);
/// // The next request reuses the same allocation.
/// let again = ctx.take(64);
/// assert!(again.capacity() >= 128);
/// ```
#[derive(Debug, Default)]
pub struct InferenceCtx {
    /// Recycled buffers, unordered; small (≤ [`InferenceCtx::MAX_POOLED`]).
    pool: Vec<Vec<f32>>,
    /// GEMM dispatch for layers running under this context.
    kernel: KernelKind,
    /// Deterministic executor for batched forwards (single-worker inline
    /// pool by default).
    exec: ThreadPool,
    /// Persistent per-worker sub-contexts for the parallel batched path;
    /// kept across calls so worker buffers stay warm.
    worker_ctxs: Vec<InferenceCtx>,
    /// Buffers handed out that no pooled allocation could satisfy. Stable
    /// after warm-up on a steady-shape workload.
    fresh_allocs: u64,
}

impl InferenceCtx {
    /// Upper bound on pooled buffers; excess recycles are dropped.
    const MAX_POOLED: usize = 32;

    /// An empty context (tiled kernels, inline single-worker executor).
    pub fn new() -> Self {
        InferenceCtx::default()
    }

    /// Selects the executor used by batched forwards.
    #[must_use]
    pub fn with_exec(mut self, exec: ThreadPool) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the GEMM kernels layers dispatch through.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// The executor for batched forwards.
    pub fn exec(&self) -> ThreadPool {
        self.exec
    }

    /// The selected GEMM kernel kind.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Number of buffers currently pooled (diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total buffer requests (across this context and its persistent
    /// worker sub-contexts) that missed the pool and heap-allocated. On a
    /// steady-shape workload this stops growing after the first call — the
    /// batch-equivalence tests assert exactly that.
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh_allocs
            + self
                .worker_ctxs
                .iter()
                .map(InferenceCtx::fresh_allocations)
                .sum::<u64>()
    }

    /// Hands out one persistent sub-context per executor worker,
    /// inheriting this context's kernel selection (workers themselves run
    /// inline). Call [`InferenceCtx::restore_worker_ctxs`] afterwards so
    /// their warm buffers survive to the next batch.
    pub fn take_worker_ctxs(&mut self) -> Vec<InferenceCtx> {
        let want = self.exec.workers();
        let mut ctxs = std::mem::take(&mut self.worker_ctxs);
        ctxs.truncate(want);
        while ctxs.len() < want {
            ctxs.push(InferenceCtx::new().with_kernel(self.kernel));
        }
        for ctx in &mut ctxs {
            ctx.kernel = self.kernel;
        }
        ctxs
    }

    /// Returns worker sub-contexts for reuse by the next batched call.
    pub fn restore_worker_ctxs(&mut self, ctxs: Vec<InferenceCtx>) {
        self.worker_ctxs = ctxs;
    }

    /// A zeroed buffer of exactly `len` elements, reusing a pooled
    /// allocation when one with sufficient capacity exists.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        // Pick the smallest pooled buffer that fits to keep big ones for
        // big requests.
        let mut best: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j| b.capacity() < self.pool[j].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.fresh_allocs += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.pool.len() < Self::MAX_POOLED {
            self.pool.push(buf);
        }
    }

    /// A zeroed tensor of the given shape backed by a pooled buffer.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        Tensor::from_vec(shape, self.take(len))
    }

    /// Returns a tensor's backing storage to the pool.
    pub fn recycle_tensor(&mut self, t: Tensor) {
        self.recycle(t.into_raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers() {
        let mut ctx = InferenceCtx::new();
        let mut buf = ctx.take(16);
        buf.iter_mut().for_each(|v| *v = 3.0);
        ctx.recycle(buf);
        let again = ctx.take(16);
        assert!(
            again.iter().all(|&v| v == 0.0),
            "recycled buffer not zeroed"
        );
    }

    #[test]
    fn pool_reuses_allocations() {
        let mut ctx = InferenceCtx::new();
        let buf = ctx.take(100);
        let ptr = buf.as_ptr();
        ctx.recycle(buf);
        assert_eq!(ctx.pooled(), 1);
        let again = ctx.take(50);
        assert_eq!(again.as_ptr(), ptr, "pooled allocation should be reused");
        assert_eq!(ctx.pooled(), 0);
    }

    #[test]
    fn smallest_sufficient_buffer_is_picked() {
        let mut ctx = InferenceCtx::new();
        let big = ctx.take(1000);
        let small = ctx.take(10);
        ctx.recycle(big);
        ctx.recycle(small);
        let got = ctx.take(8);
        assert!(got.capacity() < 1000, "should prefer the small buffer");
    }

    #[test]
    fn pool_is_bounded() {
        let mut ctx = InferenceCtx::new();
        for _ in 0..100 {
            ctx.recycle(vec![0.0; 4]);
        }
        assert!(ctx.pooled() <= InferenceCtx::MAX_POOLED);
    }

    #[test]
    fn tensor_roundtrip() {
        let mut ctx = InferenceCtx::new();
        let t = ctx.take_tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        ctx.recycle_tensor(t);
        assert_eq!(ctx.pooled(), 1);
    }

    #[test]
    fn fresh_allocations_stop_after_warmup() {
        let mut ctx = InferenceCtx::new();
        let b1 = ctx.take(64);
        let b2 = ctx.take(128);
        assert_eq!(ctx.fresh_allocations(), 2);
        ctx.recycle(b1);
        ctx.recycle(b2);
        // Same shapes again: everything comes from the pool.
        let b1 = ctx.take(64);
        let b2 = ctx.take(128);
        assert_eq!(ctx.fresh_allocations(), 2, "warm take must not allocate");
        ctx.recycle(b1);
        ctx.recycle(b2);
    }

    #[test]
    fn worker_ctxs_persist_and_inherit_kernel() {
        let pool = mmp_pool::ThreadPool::try_new(3).unwrap();
        let mut ctx = InferenceCtx::new()
            .with_exec(pool)
            .with_kernel(KernelKind::Reference);
        let mut workers = ctx.take_worker_ctxs();
        assert_eq!(workers.len(), 3);
        assert!(workers.iter().all(|w| w.kernel() == KernelKind::Reference));
        // Warm one worker, hand them back, take again: warm buffer (and
        // its fresh-allocation count) must survive.
        let buf = workers[1].take(256);
        workers[1].recycle(buf);
        ctx.restore_worker_ctxs(workers);
        assert_eq!(ctx.fresh_allocations(), 1);
        let mut workers = ctx.take_worker_ctxs();
        let again = workers[1].take(200);
        assert_eq!(
            ctx.fresh_allocations() + workers.iter().map(|w| w.fresh_allocations()).sum::<u64>(),
            1,
            "warm worker buffer must be reused"
        );
        workers[1].recycle(again);
        ctx.restore_worker_ctxs(workers);
    }

    #[test]
    fn default_exec_is_inline_single_worker() {
        let ctx = InferenceCtx::new();
        assert_eq!(ctx.exec().workers(), 1);
        assert_eq!(ctx.kernel(), KernelKind::Tiled);
    }
}
