//! The ratchet: `lint.baseline.json` grandfathers pre-existing findings
//! so `--deny-new` can fail on regressions without demanding the whole
//! backlog be fixed first.
//!
//! # Key scheme
//!
//! Entries are keyed `(rule, path, item, kind)` with a **count** — no
//! line numbers, so reformatting or editing elsewhere in a file never
//! churns the baseline. The count ratchets: if a function holds 3
//! baselined `index` sites and someone adds a 4th, exactly one finding
//! is new. The trade-off is positional blindness *within* one
//! `(rule, path, item, kind)` bucket — deleting site A and adding site B
//! in the same function cancels out — which is acceptable: the bucket's
//! total never grows.
//!
//! # Regeneration policy
//!
//! `mmp-lint check --update-baseline` rewrites the file. Running it is
//! acceptable in a PR only when the diff **shrinks** entries (you fixed
//! or properly why-noted sites) or when a PR deliberately introduces a
//! new rule; a baseline diff that grows a count is a regression and
//! belongs in the code, not the baseline. CI runs `--deny-new`, so a
//! stale (too-small) baseline fails loudly and an inflated one shows up
//! in review as a grown count.
//!
//! The file format is versioned, sorted, and hand-rolled (the lint
//! library is deliberately dependency-free):
//!
//! ```text
//! {"version":1,"entries":[
//!   {"rule":"panic-path","path":"crates/nn/src/linear.rs",
//!    "item":"mmp_nn::linear::Linear::forward","kind":"expect","count":2},
//!   ...]}
//! ```

use crate::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Grandfather key: everything stable about a finding except position.
pub type Key = (String, String, String, String);

/// A parsed (or freshly computed) baseline.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Key → grandfathered count. `BTreeMap` keeps serialization sorted
    /// and therefore diff-stable.
    pub entries: BTreeMap<Key, usize>,
}

fn key_of(f: &Finding) -> Key {
    (
        f.rule.clone(),
        f.path.clone(),
        f.item.clone(),
        f.kind.clone(),
    )
}

/// Computes the baseline that grandfathers every *unsuppressed* finding
/// in `findings` (suppressed sites already carry a why-note and need no
/// grandfathering).
pub fn compute(findings: &[Finding]) -> Baseline {
    let mut b = Baseline::default();
    for f in findings.iter().filter(|f| !f.suppressed) {
        *b.entries.entry(key_of(f)).or_insert(0) += 1;
    }
    b
}

/// Marks findings covered by `base` as `baselined`, in appearance
/// order: the first `count` unsuppressed findings of each key are
/// grandfathered, any beyond that stay new. Suppressed findings never
/// consume a slot.
pub fn mark(findings: &mut [Finding], base: &Baseline) {
    let mut used: BTreeMap<Key, usize> = BTreeMap::new();
    for f in findings.iter_mut() {
        if f.suppressed {
            continue;
        }
        let key = key_of(f);
        let allowed = base.entries.get(&key).copied().unwrap_or(0);
        let slot = used.entry(key).or_insert(0);
        if *slot < allowed {
            *slot += 1;
            f.baselined = true;
        }
    }
}

/// Serializes to the committed file format (one entry per line, sorted,
/// trailing newline — the shape `git diff` reviews best).
pub fn to_json(base: &Baseline) -> String {
    let mut out = String::from("{\"version\":1,\"entries\":[\n");
    for (i, ((rule, path, item, kind), count)) in base.entries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\"rule\":{},\"path\":{},\"item\":{},\"kind\":{},\"count\":{}}}",
            crate::json_str(rule),
            crate::json_str(path),
            crate::json_str(item),
            crate::json_str(kind),
            count
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Parses a baseline file.
///
/// # Errors
///
/// Returns a human-readable message on malformed input — the CLI treats
/// that as fatal rather than silently linting against an empty baseline
/// (which would fail CI on every grandfathered finding at once).
pub fn parse(src: &str) -> Result<Baseline, String> {
    let mut p = Reader {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    p.expect(b'{')?;
    let mut version: Option<u64> = None;
    let mut base = Baseline::default();
    loop {
        p.ws();
        let field = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match field.as_str() {
            "version" => version = Some(p.number()?),
            "entries" => {
                p.expect(b'[')?;
                p.ws();
                if !p.eat(b']') {
                    loop {
                        let (key, count) = parse_entry(&mut p)?;
                        *base.entries.entry(key).or_insert(0) += count;
                        p.ws();
                        if p.eat(b']') {
                            break;
                        }
                        p.expect(b',')?;
                        p.ws();
                    }
                }
            }
            other => return Err(format!("unknown baseline field `{other}`")),
        }
        p.ws();
        if p.eat(b'}') {
            break;
        }
        p.expect(b',')?;
    }
    match version {
        Some(1) => Ok(base),
        Some(v) => Err(format!("unsupported baseline version {v} (expected 1)")),
        None => Err("baseline file is missing its version".to_owned()),
    }
}

fn parse_entry(p: &mut Reader) -> Result<(Key, usize), String> {
    p.ws();
    p.expect(b'{')?;
    let mut rule = None;
    let mut path = None;
    let mut item = None;
    let mut kind = None;
    let mut count = None;
    loop {
        p.ws();
        let field = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match field.as_str() {
            "rule" => rule = Some(p.string()?),
            "path" => path = Some(p.string()?),
            "item" => item = Some(p.string()?),
            "kind" => kind = Some(p.string()?),
            "count" => count = Some(p.number()? as usize),
            other => return Err(format!("unknown baseline entry field `{other}`")),
        }
        p.ws();
        if p.eat(b'}') {
            break;
        }
        p.expect(b',')?;
    }
    match (rule, path, item, kind, count) {
        (Some(r), Some(pa), Some(it), Some(k), Some(c)) => Ok(((r, pa, it, k), c)),
        _ => Err("baseline entry is missing a field (rule/path/item/kind/count)".to_owned()),
    }
}

/// Minimal JSON reader for exactly the subset [`to_json`] emits (plus
/// whitespace tolerance for hand edits). Not a general parser on
/// purpose: the lint library carries no dependencies, and the baseline
/// format is closed.
struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl Reader<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at byte {}: expected `{}`",
                self.i, c as char
            ))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!(
                "baseline parse error at byte {}: expected a number",
                self.i
            ));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "baseline number out of range".to_owned())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string in baseline".to_owned()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| "bad \\u escape in baseline".to_owned())?;
                            out.push(hex);
                            self.i += 4;
                        }
                        _ => return Err("bad escape in baseline string".to_owned()),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through byte-wise; the
                    // source is a &str so the bytes are valid.
                    let start = self.i;
                    while self
                        .b
                        .get(self.i)
                        .is_some_and(|c| *c != b'"' && *c != b'\\')
                    {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| "invalid utf-8 in baseline".to_owned())?,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, path: &str, item: &str, kind: &str) -> Finding {
        Finding {
            rule: rule.to_owned(),
            path: path.to_owned(),
            line: 1,
            col: 1,
            message: String::new(),
            item: item.to_owned(),
            kind: kind.to_owned(),
            call_chain: Vec::new(),
            suppressed: false,
            why: None,
            baselined: false,
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let findings = vec![
            finding("panic-path", "crates/nn/src/a.rs", "mmp_nn::a::f", "unwrap"),
            finding("panic-path", "crates/nn/src/a.rs", "mmp_nn::a::f", "unwrap"),
            finding(
                "cast-truncation",
                "crates/geom/src/g.rs",
                "mmp_geom::g::h",
                "u32",
            ),
        ];
        let base = compute(&findings);
        assert_eq!(parse(&to_json(&base)), Ok(base));
    }

    #[test]
    fn mark_grandfathers_counts_in_order() {
        let mut findings = vec![
            finding("panic-path", "a.rs", "f", "unwrap"),
            finding("panic-path", "a.rs", "f", "unwrap"),
            finding("panic-path", "a.rs", "f", "unwrap"),
        ];
        let base = compute(&findings[..2]);
        mark(&mut findings, &base);
        assert_eq!(
            findings.iter().map(|f| f.baselined).collect::<Vec<_>>(),
            vec![true, true, false]
        );
    }

    #[test]
    fn suppressed_findings_do_not_consume_slots() {
        let mut findings = vec![
            finding("panic-path", "a.rs", "f", "unwrap"),
            finding("panic-path", "a.rs", "f", "unwrap"),
        ];
        findings[0].suppressed = true;
        let base = Baseline {
            entries: [(
                (
                    "panic-path".to_owned(),
                    "a.rs".to_owned(),
                    "f".to_owned(),
                    "unwrap".to_owned(),
                ),
                1,
            )]
            .into_iter()
            .collect(),
        };
        mark(&mut findings, &base);
        assert!(!findings[0].baselined, "suppressed finding is not marked");
        assert!(findings[1].baselined, "the one slot covers the live site");
    }

    #[test]
    fn line_numbers_are_not_part_of_the_key() {
        let mut a = finding("panic-path", "a.rs", "f", "index");
        a.line = 10;
        let base = compute(&[a.clone()]);
        a.line = 99; // file reformatted
        let mut moved = vec![a];
        mark(&mut moved, &base);
        assert!(moved[0].baselined);
    }

    #[test]
    fn malformed_baselines_are_loud() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"version\":2,\"entries\":[]}").is_err());
        assert!(parse("{\"version\":1,\"entries\":[{\"rule\":\"x\"}]}").is_err());
    }
}
