//! Criterion bench for the ablation axes: grouped vs per-macro coarsening
//! cost, and coarse-proxy vs full-pipeline episode evaluation cost (the
//! trade the paper's grouping + value-network tricks are about).

use criterion::{criterion_group, criterion_main, Criterion};
use mmp_core::{ClusterParams, Coarsener, Grid, Placement, SyntheticSpec};
use mmp_rl::{CoarseEvaluator, FullEvaluator, PlacementEnv, WirelengthEvaluator};

fn bench_ablation_axes(c: &mut Criterion) {
    let design = SyntheticSpec::small("abl", 12, 0, 12, 200, 320, true, 4).generate();
    let grid = Grid::new(*design.region(), 8);
    let initial = Placement::initial(&design);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // Grouped vs ungrouped coarsening.
    group.bench_function("coarsen/grouped", |b| {
        b.iter(|| {
            let c2 =
                Coarsener::new(&ClusterParams::paper(grid.cell_area())).coarsen(&design, &initial);
            criterion::black_box(c2.macro_groups().len())
        });
    });
    group.bench_function("coarsen/per_macro", |b| {
        b.iter(|| {
            let mut params = ClusterParams::paper(grid.cell_area());
            params.nu = f64::INFINITY;
            let c2 = Coarsener::new(&params).coarsen(&design, &initial);
            criterion::black_box(c2.macro_groups().len())
        });
    });

    // Episode evaluation: coarse proxy vs full pipeline.
    let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area())).coarsen(&design, &initial);
    let mut env = PlacementEnv::new(&design, &coarse, grid.clone());
    let mut k = 0usize;
    while !env.is_terminal() {
        env.step((k * 13 + 5) % grid.cell_count());
        k += 1;
    }
    group.bench_function("episode_eval/coarse_proxy", |b| {
        let eval = CoarseEvaluator::new();
        b.iter(|| criterion::black_box(eval.wirelength(&env)));
    });
    group.bench_function("episode_eval/full_pipeline", |b| {
        let eval = FullEvaluator::fast();
        b.iter(|| criterion::black_box(eval.wirelength(&env)));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_axes);
criterion_main!(benches);
